//! The js-sim tree-walking evaluator and its [`FunctionRuntime`]
//! front-end.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use super::lexer::tokenize;
use super::parser::{count_nodes, parse, Expr, Stmt};
use super::{HEAP_BYTES, JS_ROM_BYTES, STATE_BYTES};
use crate::traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};

/// Cold-start cycles per source byte (tokenizer).
pub const LOAD_CYCLES_PER_BYTE: u64 = 400;

/// Cold-start cycles per AST node (parser) — RIOTjs parses faster than
/// MicroPython compiles (Table 2: 5 589 µs vs 21 907 µs).
pub const LOAD_CYCLES_PER_NODE: u64 = 300;

/// Execution cycles per visited AST node (tree-walk dispatch plus
/// dynamic-type checks).
pub const RUN_CYCLES_PER_NODE: u64 = 74;

/// Fixed per-invocation overhead.
pub const RUN_OVERHEAD_CYCLES: u64 = 3_000;

/// Node-visit ceiling (runaway protection).
pub const MAX_STEPS: u64 = 50_000_000;

/// Runtime values.
#[derive(Debug, Clone)]
pub enum Value {
    /// IEEE 754 double (the only JS number type).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<String>),
    /// Array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) => true,
            Value::Null | Value::Undefined => false,
        }
    }

    fn to_number(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(b) => *b as i64 as f64,
            Value::Null => 0.0,
            Value::Undefined => f64::NAN,
            Value::Str(s) => s.parse().unwrap_or(f64::NAN),
            Value::Array(_) => f64::NAN,
        }
    }

    /// JS `ToInt32`.
    fn to_i32(&self) -> i32 {
        let n = self.to_number();
        if !n.is_finite() {
            return 0;
        }
        (n as i64) as i32
    }

    /// JS `ToUint32`.
    fn to_u32(&self) -> u32 {
        self.to_i32() as u32
    }
}

/// Run-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsError {
    /// Unresolved name.
    Reference(String),
    /// Operation on an incompatible type.
    Type(String),
    /// Heap arena exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// Node-visit budget exhausted.
    StepLimit,
}

impl std::fmt::Display for JsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsError::Reference(n) => write!(f, "ReferenceError: {n} is not defined"),
            JsError::Type(m) => write!(f, "TypeError: {m}"),
            JsError::OutOfMemory { requested } => {
                write!(f, "out of memory: {requested} bytes requested")
            }
            JsError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for JsError {}

#[derive(Debug, Clone)]
struct FuncDef {
    params: Vec<String>,
    body: Vec<Stmt>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// The evaluator over a parsed program.
#[derive(Debug)]
pub struct Interp {
    program: Vec<Stmt>,
    globals: HashMap<String, Value>,
    functions: HashMap<String, Rc<FuncDef>>,
    steps: u64,
    run_start: u64,
    heap_used: usize,
    gc_runs: u64,
}

impl Interp {
    /// Creates an evaluator; function declarations are hoisted.
    pub fn new(program: Vec<Stmt>) -> Self {
        let mut functions = HashMap::new();
        for stmt in &program {
            if let Stmt::Function { name, params, body } = stmt {
                functions.insert(
                    name.clone(),
                    Rc::new(FuncDef {
                        params: params.clone(),
                        body: body.clone(),
                    }),
                );
            }
        }
        Interp {
            program,
            globals: HashMap::new(),
            functions,
            steps: 0,
            run_start: 0,
            heap_used: 0,
            gc_runs: 0,
        }
    }

    /// Sets a global (host data injection).
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.insert(name.to_owned(), value);
    }

    /// Reads a global.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Node visits so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Modeled collections so far.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    fn alloc(&mut self, bytes: usize) -> Result<(), JsError> {
        if bytes > HEAP_BYTES {
            return Err(JsError::OutOfMemory { requested: bytes });
        }
        if self.heap_used + bytes > HEAP_BYTES {
            self.gc_runs += 1;
            self.heap_used = 0;
        }
        self.heap_used += bytes;
        Ok(())
    }

    fn tick(&mut self) -> Result<(), JsError> {
        self.steps += 1;
        if self.steps - self.run_start > MAX_STEPS {
            return Err(JsError::StepLimit);
        }
        Ok(())
    }

    /// Runs the top-level program.
    ///
    /// # Errors
    ///
    /// Any [`JsError`].
    pub fn run(&mut self) -> Result<(), JsError> {
        // The step budget is per top-level invocation.
        self.run_start = self.steps;
        let program = std::mem::take(&mut self.program);
        let mut locals = Vec::new();
        for stmt in &program {
            if let Flow::Return(_) = self.exec(stmt, &mut locals)? {
                break;
            }
        }
        self.program = program;
        Ok(())
    }

    fn exec(
        &mut self,
        stmt: &Stmt,
        locals: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, JsError> {
        self.tick()?;
        match stmt {
            Stmt::Function { .. } => Ok(Flow::Normal), // hoisted
            Stmt::VarDecl { name, init } => {
                let v = match init {
                    Some(e) => self.eval(e, locals)?,
                    None => Value::Undefined,
                };
                match locals.last_mut() {
                    Some(scope) => {
                        scope.insert(name.clone(), v);
                    }
                    None => {
                        self.globals.insert(name.clone(), v);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, locals)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::While { cond, body } => loop {
                if !self.eval(cond, locals)?.truthy() {
                    return Ok(Flow::Normal);
                }
                match self.exec_suite(body, locals)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Continue | Flow::Normal => {}
                }
            },
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(init, locals)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval(cond, locals)?.truthy() {
                            return Ok(Flow::Normal);
                        }
                    }
                    match self.exec_suite(body, locals)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue | Flow::Normal => {}
                    }
                    if let Some(update) = update {
                        self.eval(update, locals)?;
                    }
                }
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, locals)?.truthy() {
                    self.exec_suite(then, locals)
                } else {
                    self.exec_suite(otherwise, locals)
                }
            }
        }
    }

    fn exec_suite(
        &mut self,
        stmts: &[Stmt],
        locals: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, JsError> {
        for s in stmts {
            match self.exec(s, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn lookup(&self, name: &str, locals: &[HashMap<String, Value>]) -> Result<Value, JsError> {
        for scope in locals.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(v.clone());
            }
        }
        self.globals
            .get(name)
            .cloned()
            .ok_or_else(|| JsError::Reference(name.to_owned()))
    }

    fn assign(&mut self, name: &str, value: Value, locals: &mut [HashMap<String, Value>]) {
        for scope in locals.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_owned(), value);
                return;
            }
        }
        // Implicit global, JS-style.
        self.globals.insert(name.to_owned(), value);
    }

    fn eval(
        &mut self,
        e: &Expr,
        locals: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, JsError> {
        self.tick()?;
        match e {
            Expr::Num(v) => Ok(Value::Num(*v)),
            Expr::Str(s) => {
                self.alloc(s.len())?;
                Ok(Value::Str(Rc::new(s.clone())))
            }
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Name(n) => self.lookup(n, locals),
            Expr::Array(items) => {
                self.alloc(16 + 8 * items.len())?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, locals)?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(out))))
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, locals)?;
                Ok(match *op {
                    "-" => Value::Num(-v.to_number()),
                    "~" => Value::Num(!v.to_i32() as f64),
                    _ => Value::Bool(!v.truthy()),
                })
            }
            Expr::Bin { op, lhs, rhs } => {
                if *op == "&&" {
                    let l = self.eval(lhs, locals)?;
                    return if l.truthy() {
                        self.eval(rhs, locals)
                    } else {
                        Ok(l)
                    };
                }
                if *op == "||" {
                    let l = self.eval(lhs, locals)?;
                    return if l.truthy() {
                        Ok(l)
                    } else {
                        self.eval(rhs, locals)
                    };
                }
                let a = self.eval(lhs, locals)?;
                let b = self.eval(rhs, locals)?;
                Ok(match *op {
                    "+" => Value::Num(a.to_number() + b.to_number()),
                    "-" => Value::Num(a.to_number() - b.to_number()),
                    "*" => Value::Num(a.to_number() * b.to_number()),
                    "/" => Value::Num(a.to_number() / b.to_number()),
                    "%" => Value::Num(a.to_number() % b.to_number()),
                    "&" => Value::Num((a.to_i32() & b.to_i32()) as f64),
                    "|" => Value::Num((a.to_i32() | b.to_i32()) as f64),
                    "^" => Value::Num((a.to_i32() ^ b.to_i32()) as f64),
                    "<<" => Value::Num((a.to_i32().wrapping_shl(b.to_u32() & 31)) as f64),
                    ">>" => Value::Num((a.to_i32().wrapping_shr(b.to_u32() & 31)) as f64),
                    ">>>" => Value::Num((a.to_u32().wrapping_shr(b.to_u32() & 31)) as f64),
                    "==" | "===" => Value::Bool(js_eq(&a, &b)),
                    "!=" | "!==" => Value::Bool(!js_eq(&a, &b)),
                    "<" => Value::Bool(a.to_number() < b.to_number()),
                    "<=" => Value::Bool(a.to_number() <= b.to_number()),
                    ">" => Value::Bool(a.to_number() > b.to_number()),
                    _ => Value::Bool(a.to_number() >= b.to_number()),
                })
            }
            Expr::Assign { target, value } => {
                let v = self.eval(value, locals)?;
                match &**target {
                    Expr::Name(n) => {
                        self.assign(n, v.clone(), locals);
                        Ok(v)
                    }
                    Expr::Index { obj, index } => {
                        let obj_v = self.eval(obj, locals)?;
                        let idx = self.eval(index, locals)?.to_number() as usize;
                        match obj_v {
                            Value::Array(arr) => {
                                let mut arr = arr.borrow_mut();
                                if idx >= arr.len() {
                                    let grow = idx + 1 - arr.len();
                                    self.alloc(8 * grow)?;
                                    arr.resize(idx + 1, Value::Undefined);
                                }
                                arr[idx] = v.clone();
                                Ok(v)
                            }
                            other => Err(JsError::Type(format!("{other:?} not indexable"))),
                        }
                    }
                    _ => Err(JsError::Type("unsupported assignment target".into())),
                }
            }
            Expr::Index { obj, index } => {
                let obj_v = self.eval(obj, locals)?;
                let idx = self.eval(index, locals)?.to_number();
                if idx < 0.0 || idx.fract() != 0.0 {
                    return Ok(Value::Undefined);
                }
                let idx = idx as usize;
                match obj_v {
                    Value::Array(arr) => {
                        Ok(arr.borrow().get(idx).cloned().unwrap_or(Value::Undefined))
                    }
                    Value::Str(s) => Ok(s
                        .as_bytes()
                        .get(idx)
                        .map(|b| {
                            let mut tmp = String::with_capacity(1);
                            tmp.push(*b as char);
                            Value::Str(Rc::new(tmp))
                        })
                        .unwrap_or(Value::Undefined)),
                    other => Err(JsError::Type(format!("{other:?} not indexable"))),
                }
            }
            Expr::Member { obj, name } => {
                let obj_v = self.eval(obj, locals)?;
                match (obj_v, name.as_str()) {
                    (Value::Array(a), "length") => Ok(Value::Num(a.borrow().len() as f64)),
                    (Value::Str(s), "length") => Ok(Value::Num(s.len() as f64)),
                    (_, other) => Err(JsError::Type(format!("unknown property `{other}`"))),
                }
            }
            Expr::Call { callee, args } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, locals)?);
                }
                let func = match self.functions.get(callee) {
                    Some(f) => f.clone(),
                    None => return Err(JsError::Reference(callee.clone())),
                };
                let mut scope = HashMap::new();
                for (i, p) in func.params.iter().enumerate() {
                    scope.insert(
                        p.clone(),
                        arg_vals.get(i).cloned().unwrap_or(Value::Undefined),
                    );
                }
                self.alloc(64)?; // activation record
                locals.push(scope);
                let flow = self.exec_suite(&func.body, locals);
                locals.pop();
                match flow? {
                    Flow::Return(v) => Ok(v),
                    _ => Ok(Value::Undefined),
                }
            }
        }
    }
}

fn js_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Null, Value::Null) | (Value::Undefined, Value::Undefined) => true,
        (Value::Null, Value::Undefined) | (Value::Undefined, Value::Null) => true,
        _ => a.to_number() == b.to_number(),
    }
}

/// The JavaScript source of the fletcher32 benchmark applet.
pub const FLETCHER_JS: &str = "\
// fletcher32 checksum over a byte array (js-sim applet)
function fletcher32(data, n) {
    var sum1 = 0xffff;
    var sum2 = 0xffff;
    var i = 0;
    while (i < n) {
        var w = data[i];
        if (i + 1 < n) { w = w + data[i + 1] * 256; }
        sum1 = sum1 + w;
        sum1 = (sum1 & 0xffff) + (sum1 >>> 16);
        sum2 = sum2 + sum1;
        sum2 = (sum2 & 0xffff) + (sum2 >>> 16);
        i = i + 2;
    }
    sum1 = (sum1 & 0xffff) + (sum1 >>> 16);
    sum2 = (sum2 & 0xffff) + (sum2 >>> 16);
    return sum2 * 65536 + sum1;
}
result = fletcher32(data, data.length);
";

/// The RIOTjs stand-in runtime.
#[derive(Debug, Default)]
pub struct JsRuntime {
    interp: Option<Interp>,
    node_count: usize,
}

impl JsRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        JsRuntime::default()
    }
}

impl FunctionRuntime for JsRuntime {
    fn name(&self) -> &'static str {
        "RIOTjs"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            rom_bytes: JS_ROM_BYTES,
            ram_bytes: HEAP_BYTES + STATE_BYTES,
        }
    }

    fn fletcher_applet(&self) -> Vec<u8> {
        FLETCHER_JS.as_bytes().to_vec()
    }

    fn load(&mut self, applet: &[u8]) -> Result<LoadCost, RuntimeError> {
        let source = std::str::from_utf8(applet)
            .map_err(|_| RuntimeError::new("js-sim", "source not utf-8"))?;
        let toks = tokenize(source).map_err(|e| RuntimeError::new("js-sim", e.to_string()))?;
        let stmts = parse(&toks).map_err(|e| RuntimeError::new("js-sim", e.to_string()))?;
        self.node_count = count_nodes(&stmts);
        let cycles = applet.len() as u64 * LOAD_CYCLES_PER_BYTE
            + self.node_count as u64 * LOAD_CYCLES_PER_NODE;
        self.interp = Some(Interp::new(stmts));
        Ok(LoadCost { cycles })
    }

    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError> {
        let interp = self
            .interp
            .as_mut()
            .ok_or_else(|| RuntimeError::new("js-sim", "no program"))?;
        let data: Vec<Value> = input.iter().map(|b| Value::Num(*b as f64)).collect();
        interp.set_global("data", Value::Array(Rc::new(RefCell::new(data))));
        let before = interp.steps();
        interp
            .run()
            .map_err(|e| RuntimeError::new("js-sim", e.to_string()))?;
        let steps = interp.steps() - before;
        let result = match interp.global("result") {
            Some(v) => v.to_number() as i64,
            None => 0,
        };
        Ok(RunOutcome {
            result,
            steps,
            cycles: RUN_OVERHEAD_CYCLES + steps * RUN_CYCLES_PER_NODE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{benchmark_input, fletcher32};

    fn run_and_get(src: &str, global: &str) -> Value {
        let toks = tokenize(src).unwrap();
        let mut interp = Interp::new(parse(&toks).unwrap());
        interp.run().unwrap();
        interp.global(global).cloned().unwrap()
    }

    fn num_of(v: Value) -> f64 {
        match v {
            Value::Num(n) => n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(num_of(run_and_get("x = 2 + 3 * 4;", "x")), 14.0);
        assert_eq!(num_of(run_and_get("x = 7 / 2;", "x")), 3.5);
        assert_eq!(num_of(run_and_get("x = 7 % 4;", "x")), 3.0);
    }

    #[test]
    fn bitwise_coerces_to_int32() {
        assert_eq!(num_of(run_and_get("x = 3.7 & 6;", "x")), 2.0);
        assert_eq!(num_of(run_and_get("x = -1 >>> 16;", "x")), 65535.0);
        assert_eq!(num_of(run_and_get("x = -8 >> 1;", "x")), -4.0);
        assert_eq!(num_of(run_and_get("x = 1 << 20;", "x")), 1048576.0);
    }

    #[test]
    fn while_and_for_loops() {
        let src = "\
var total = 0;
for (var i = 1; i <= 10; i = i + 1) { total = total + i; }
var j = 3;
while (j) { total = total + 100; j = j - 1; }";
        assert_eq!(num_of(run_and_get(src, "total")), 55.0 + 300.0);
    }

    #[test]
    fn break_continue() {
        let src = "\
var t = 0;
for (var i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 9) { break; }
    t = t + i;
}";
        assert_eq!(num_of(run_and_get(src, "t")), 25.0);
    }

    #[test]
    fn functions_and_recursion() {
        let src = "\
function fact(n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
var x = fact(6);";
        assert_eq!(num_of(run_and_get(src, "x")), 720.0);
    }

    #[test]
    fn function_locals_shadow_globals() {
        let src = "\
var x = 1;
function f(x) { x = 99; return x; }
var y = f(5);";
        assert_eq!(num_of(run_and_get(src, "x")), 1.0);
        assert_eq!(num_of(run_and_get(src, "y")), 99.0);
    }

    #[test]
    fn arrays_and_length() {
        let src = "\
var a = [1, 2, 3];
a[3] = 4;
var n = a.length;
var s = a[0] + a[3];";
        assert_eq!(num_of(run_and_get(src, "n")), 4.0);
        assert_eq!(num_of(run_and_get(src, "s")), 5.0);
    }

    #[test]
    fn out_of_range_read_is_undefined() {
        let src = "var a = [1]; var u = a[9]; var ok = u == null;";
        assert!(matches!(run_and_get(src, "u"), Value::Undefined));
    }

    #[test]
    fn short_circuit() {
        // Calling an undefined function would throw; && must skip it.
        let src = "var x = false && boom();";
        assert!(!run_and_get(src, "x").truthy());
        let src = "var y = 7 || boom();";
        assert_eq!(num_of(run_and_get(src, "y")), 7.0);
    }

    #[test]
    fn reference_error() {
        let toks = tokenize("x = nope;").unwrap();
        let mut interp = Interp::new(parse(&toks).unwrap());
        assert_eq!(interp.run(), Err(JsError::Reference("nope".into())));
    }

    #[test]
    fn runaway_loop_bounded() {
        let toks = tokenize("while (true) { }").unwrap();
        let mut interp = Interp::new(parse(&toks).unwrap());
        assert_eq!(interp.run(), Err(JsError::StepLimit));
    }

    #[test]
    fn fletcher_applet_matches_reference() {
        let mut rt = JsRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let input = benchmark_input();
        let out = rt.run(&input).unwrap();
        assert_eq!(out.result as u32, fletcher32(&input));
    }

    #[test]
    fn fletcher_timing_matches_paper_scale() {
        let mut rt = JsRuntime::new();
        let load = rt.load(&rt.fletcher_applet()).unwrap();
        let out = rt.run(&benchmark_input()).unwrap();
        let load_us = load.cycles as f64 / 64.0;
        let run_us = out.cycles as f64 / 64.0;
        // Paper Table 2: cold start 5 589 µs, run 14 726 µs.
        assert!((2_500.0..12_000.0).contains(&load_us), "load {load_us} µs");
        assert!((7_000.0..30_000.0).contains(&run_us), "run {run_us} µs");
    }
}
