//! Tokenizer for the JavaScript subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Num(f64),
    /// String literal (contents, quotes stripped).
    Str(String),
    /// Identifier.
    Name(String),
    /// Keyword.
    Kw(&'static str),
    /// Operator / punctuation.
    Op(&'static str),
    /// End of input.
    Eof,
}

/// A lexing/parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsSyntaxError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for JsSyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error: {}", self.msg)
    }
}

impl std::error::Error for JsSyntaxError {}

const KEYWORDS: &[&str] = &[
    "function", "var", "let", "while", "for", "if", "else", "return", "true", "false", "null",
    "break", "continue",
];

const OPS: &[&str] = &[
    "===", "!==", ">>>", "==", "!=", "<=", ">=", "<<", ">>", "&&", "||", "+", "-", "*", "/", "%",
    "&", "|", "^", "~", "!", "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";", ".",
];

/// Tokenizes JavaScript-subset source.
///
/// # Errors
///
/// [`JsSyntaxError`] on unexpected characters or unterminated strings.
pub fn tokenize(source: &str) -> Result<Vec<Tok>, JsSyntaxError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'x')
            {
                // Stop a trailing `.` that belongs to member access? The
                // subset only uses digits/hex/one decimal point.
                i += 1;
            }
            let body = &source[start..i];
            let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok().map(|v| v as f64)
            } else {
                body.parse::<f64>().ok()
            };
            match v {
                Some(v) => out.push(Tok::Num(v)),
                None => {
                    return Err(JsSyntaxError {
                        msg: format!("bad number `{body}`"),
                    })
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            let word = &source[start..i];
            match KEYWORDS.iter().find(|k| **k == word) {
                Some(k) => out.push(Tok::Kw(k)),
                None => out.push(Tok::Name(word.to_owned())),
            }
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = bytes[i];
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i] != quote {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(JsSyntaxError {
                    msg: "unterminated string".into(),
                });
            }
            out.push(Tok::Str(source[start..i].to_owned()));
            i += 1;
            continue;
        }
        for op in OPS {
            if source[i..].starts_with(op) {
                out.push(Tok::Op(op));
                i += op.len();
                continue 'outer;
            }
        }
        return Err(JsSyntaxError {
            msg: format!("unexpected character `{c}`"),
        });
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_names_keywords() {
        let toks = tokenize("var x = 0xffff; x = 1.5;").unwrap();
        assert_eq!(toks[0], Tok::Kw("var"));
        assert_eq!(toks[1], Tok::Name("x".into()));
        assert_eq!(toks[3], Tok::Num(65535.0));
        assert!(toks.contains(&Tok::Num(1.5)));
    }

    #[test]
    fn greedy_multi_char_operators() {
        let toks = tokenize("a >>> 2 === b && c !== d").unwrap();
        assert!(toks.contains(&Tok::Op(">>>")));
        assert!(toks.contains(&Tok::Op("===")));
        assert!(toks.contains(&Tok::Op("&&")));
        assert!(toks.contains(&Tok::Op("!==")));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("// line\nx /* block */ = 1;").unwrap();
        assert_eq!(toks[0], Tok::Name("x".into()));
    }

    #[test]
    fn strings_both_quotes() {
        let toks = tokenize("'ab' \"cd\"").unwrap();
        assert_eq!(toks[0], Tok::Str("ab".into()));
        assert_eq!(toks[1], Tok::Str("cd".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("'open").is_err());
    }
}
