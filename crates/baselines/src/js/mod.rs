//! js-sim: a RIOTjs stand-in (paper §6).
//!
//! A JavaScript-subset engine with the architecture that drives RIOTjs's
//! rows in Tables 1–2: source parsed to an AST at load time (cold
//! start), a tree-walking evaluator (per-node dispatch weight), dynamic
//! values on a fixed heap arena, and scope-chain name lookup.
//!
//! Supported subset: `function`, `var`/`let`, `while`, `for(;;)`,
//! `if`/`else`, `return`, `break`, `continue`, assignment (including
//! array elements), numbers (IEEE 754 doubles, with JS `ToInt32`
//! semantics for bitwise operators), booleans, `null`, strings, arrays,
//! `.length`, and short-circuit `&&`/`||`.

pub mod interp;
pub mod lexer;
pub mod parser;

pub use interp::JsRuntime;

/// Heap arena bytes (jerryscript-class default; Table 1 reports 18 KiB
/// RAM for RIOTjs).
pub const HEAP_BYTES: usize = 16 * 1024;

/// Interpreter bookkeeping RAM besides the arena (scope chain, call
/// stack reservations).
pub const STATE_BYTES: usize = 2 * 1024;

/// Engine flash footprint per the DESIGN.md flash model — calibrated to
/// Table 1's RIOTjs row (121 KiB): parser, evaluator, object model,
/// string machinery and builtin library.
pub const JS_ROM_BYTES: usize = 121 * 1024;
