//! Recursive-descent parser for the JavaScript subset.

use super::lexer::{JsSyntaxError, Tok};

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Name reference.
    Name(String),
    /// Array literal.
    Array(Vec<Expr>),
    /// Binary operation (including `&&`/`||`).
    Bin {
        /// Operator lexeme.
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation (`-`, `!`, `~`).
    Unary {
        /// Operator lexeme.
        op: &'static str,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Assignment (target must be name / index / member).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Value.
        value: Box<Expr>,
    },
    /// `obj[index]`.
    Index {
        /// Indexed expression.
        obj: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `obj.name` (only `.length` is meaningful at run time).
    Member {
        /// Object expression.
        obj: Box<Expr>,
        /// Property name.
        name: String,
    },
    /// Function call (callee is a name).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var`/`let` declaration.
    VarDecl {
        /// Variable name.
        name: String,
        /// Initialiser (optional).
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// Function declaration.
    Function {
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) body`.
    For {
        /// Initialiser statement.
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `if (cond) then else otherwise`.
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch.
        otherwise: Vec<Stmt>,
    },
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
}

/// Parses a token stream into statements.
///
/// # Errors
///
/// [`JsSyntaxError`] on malformed syntax.
pub fn parse(toks: &[Tok]) -> Result<Vec<Stmt>, JsSyntaxError> {
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while *p.peek() != Tok::Eof {
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        self.toks.get(self.pos).unwrap_or(&Tok::Eof)
    }

    fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsSyntaxError> {
        Err(JsSyntaxError {
            msg: format!("{} at token {}", msg.into(), self.pos),
        })
    }

    fn eat_op(&mut self, op: &str) -> Result<(), JsSyntaxError> {
        match self.next() {
            Tok::Op(o) if o == op => Ok(()),
            other => self.err(format!("expected `{op}`, got {other:?}")),
        }
    }

    fn eat_semi(&mut self) -> Result<(), JsSyntaxError> {
        // Semicolons are required in the subset (no ASI).
        self.eat_op(";")
    }

    fn block(&mut self) -> Result<Vec<Stmt>, JsSyntaxError> {
        self.eat_op("{")?;
        let mut out = Vec::new();
        while *self.peek() != Tok::Op("}") {
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            out.push(self.statement()?);
        }
        self.pos += 1;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt, JsSyntaxError> {
        match self.peek().clone() {
            Tok::Kw("var") | Tok::Kw("let") => {
                self.pos += 1;
                let name = match self.next() {
                    Tok::Name(n) => n,
                    other => return self.err(format!("expected name, got {other:?}")),
                };
                let init = if *self.peek() == Tok::Op("=") {
                    self.pos += 1;
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat_semi()?;
                Ok(Stmt::VarDecl { name, init })
            }
            Tok::Kw("function") => {
                self.pos += 1;
                let name = match self.next() {
                    Tok::Name(n) => n,
                    other => return self.err(format!("expected function name, got {other:?}")),
                };
                self.eat_op("(")?;
                let mut params = Vec::new();
                if *self.peek() != Tok::Op(")") {
                    loop {
                        match self.next() {
                            Tok::Name(p) => params.push(p),
                            other => return self.err(format!("expected param, got {other:?}")),
                        }
                        if *self.peek() == Tok::Op(",") {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.eat_op(")")?;
                let body = self.block()?;
                Ok(Stmt::Function { name, params, body })
            }
            Tok::Kw("while") => {
                self.pos += 1;
                self.eat_op("(")?;
                let cond = self.expr()?;
                self.eat_op(")")?;
                let body = self.body_or_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw("for") => {
                self.pos += 1;
                self.eat_op("(")?;
                let init = if *self.peek() == Tok::Op(";") {
                    self.pos += 1;
                    None
                } else {
                    Some(Box::new(self.statement()?)) // consumes its `;`
                };
                let cond = if *self.peek() == Tok::Op(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_op(";")?;
                let update = if *self.peek() == Tok::Op(")") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_op(")")?;
                let body = self.body_or_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            Tok::Kw("if") => {
                self.pos += 1;
                self.eat_op("(")?;
                let cond = self.expr()?;
                self.eat_op(")")?;
                let then = self.body_or_block()?;
                let otherwise = if *self.peek() == Tok::Kw("else") {
                    self.pos += 1;
                    if *self.peek() == Tok::Kw("if") {
                        vec![self.statement()?]
                    } else {
                        self.body_or_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                })
            }
            Tok::Kw("return") => {
                self.pos += 1;
                if *self.peek() == Tok::Op(";") {
                    self.pos += 1;
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.eat_semi()?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Kw("break") => {
                self.pos += 1;
                self.eat_semi()?;
                Ok(Stmt::Break)
            }
            Tok::Kw("continue") => {
                self.pos += 1;
                self.eat_semi()?;
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expr()?;
                self.eat_semi()?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn body_or_block(&mut self) -> Result<Vec<Stmt>, JsSyntaxError> {
        if *self.peek() == Tok::Op("{") {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    /// Assignment (right-associative), then `||`, `&&`, bitor, bitxor,
    /// bitand, equality, relational, shifts, additive, multiplicative,
    /// unary, postfix.
    fn expr(&mut self) -> Result<Expr, JsSyntaxError> {
        let lhs = self.or_expr()?;
        if *self.peek() == Tok::Op("=") {
            self.pos += 1;
            let value = self.expr()?;
            match lhs {
                Expr::Name(_) | Expr::Index { .. } | Expr::Member { .. } => {
                    return Ok(Expr::Assign {
                        target: Box::new(lhs),
                        value: Box::new(value),
                    });
                }
                _ => return self.err("invalid assignment target"),
            }
        }
        Ok(lhs)
    }

    fn bin_level<F>(&mut self, ops: &[&'static str], next: F) -> Result<Expr, JsSyntaxError>
    where
        F: Fn(&mut Self) -> Result<Expr, JsSyntaxError>,
    {
        let mut lhs = next(self)?;
        loop {
            let op = match self.peek() {
                Tok::Op(o) if ops.contains(o) => *o,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = next(self)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn or_expr(&mut self) -> Result<Expr, JsSyntaxError> {
        self.bin_level(&["||"], |p| {
            p.bin_level(&["&&"], |p| {
                p.bin_level(&["|"], |p| {
                    p.bin_level(&["^"], |p| {
                        p.bin_level(&["&"], |p| {
                            p.bin_level(&["==", "!=", "===", "!=="], |p| {
                                p.bin_level(&["<", "<=", ">", ">="], |p| {
                                    p.bin_level(&["<<", ">>", ">>>"], |p| {
                                        p.bin_level(&["+", "-"], |p| {
                                            p.bin_level(&["*", "/", "%"], Self::unary)
                                        })
                                    })
                                })
                            })
                        })
                    })
                })
            })
        })
    }

    fn unary(&mut self) -> Result<Expr, JsSyntaxError> {
        match self.peek() {
            Tok::Op(o @ ("-" | "!" | "~")) => {
                let op = *o;
                self.pos += 1;
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op,
                    operand: Box::new(operand),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, JsSyntaxError> {
        let mut e = self.atom()?;
        loop {
            match self.peek().clone() {
                Tok::Op("[") => {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.eat_op("]")?;
                    e = Expr::Index {
                        obj: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Tok::Op(".") => {
                    self.pos += 1;
                    match self.next() {
                        Tok::Name(n) => {
                            e = Expr::Member {
                                obj: Box::new(e),
                                name: n,
                            }
                        }
                        other => return self.err(format!("expected property, got {other:?}")),
                    }
                }
                Tok::Op("(") => {
                    let callee = match &e {
                        Expr::Name(n) => n.clone(),
                        _ => return self.err("only named functions are callable"),
                    };
                    self.pos += 1;
                    let mut args = Vec::new();
                    if *self.peek() != Tok::Op(")") {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Op(",") {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_op(")")?;
                    e = Expr::Call { callee, args };
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, JsSyntaxError> {
        match self.next() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Name(n) => Ok(Expr::Name(n)),
            Tok::Kw("true") => Ok(Expr::Bool(true)),
            Tok::Kw("false") => Ok(Expr::Bool(false)),
            Tok::Kw("null") => Ok(Expr::Null),
            Tok::Op("(") => {
                let e = self.expr()?;
                self.eat_op(")")?;
                Ok(e)
            }
            Tok::Op("[") => {
                let mut items = Vec::new();
                if *self.peek() != Tok::Op("]") {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == Tok::Op(",") {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.eat_op("]")?;
                Ok(Expr::Array(items))
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

/// Counts AST nodes (cold-start accounting).
pub fn count_nodes(stmts: &[Stmt]) -> usize {
    fn expr_nodes(e: &Expr) -> usize {
        1 + match e {
            Expr::Bin { lhs, rhs, .. } => expr_nodes(lhs) + expr_nodes(rhs),
            Expr::Unary { operand, .. } => expr_nodes(operand),
            Expr::Assign { target, value } => expr_nodes(target) + expr_nodes(value),
            Expr::Index { obj, index } => expr_nodes(obj) + expr_nodes(index),
            Expr::Member { obj, .. } => expr_nodes(obj),
            Expr::Call { args, .. } => args.iter().map(expr_nodes).sum(),
            Expr::Array(items) => items.iter().map(expr_nodes).sum(),
            _ => 0,
        }
    }
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::VarDecl { init, .. } => init.as_ref().map(expr_nodes).unwrap_or(0),
                Stmt::Expr(e) => expr_nodes(e),
                Stmt::Function { body, .. } => count_nodes(body),
                Stmt::While { cond, body } => expr_nodes(cond) + count_nodes(body),
                Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    init.as_ref()
                        .map(|s| count_nodes(std::slice::from_ref(s)))
                        .unwrap_or(0)
                        + cond.as_ref().map(expr_nodes).unwrap_or(0)
                        + update.as_ref().map(expr_nodes).unwrap_or(0)
                        + count_nodes(body)
                }
                Stmt::If {
                    cond,
                    then,
                    otherwise,
                } => expr_nodes(cond) + count_nodes(then) + count_nodes(otherwise),
                Stmt::Return(e) => e.as_ref().map(expr_nodes).unwrap_or(0),
                _ => 0,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::js::lexer::tokenize;

    fn parse_src(src: &str) -> Vec<Stmt> {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn var_and_assignment() {
        let stmts = parse_src("var x = 1; x = x + 2;");
        assert!(matches!(&stmts[0], Stmt::VarDecl { name, .. } if name == "x"));
        assert!(matches!(&stmts[1], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn function_and_call() {
        let stmts = parse_src("function f(a, b) { return a + b; } var y = f(1, 2);");
        assert!(matches!(&stmts[0], Stmt::Function { params, .. } if params.len() == 2));
    }

    #[test]
    fn while_and_for() {
        let stmts =
            parse_src("while (x) { x = x - 1; } for (var i = 0; i < 3; i = i + 1) { f(); }");
        assert!(matches!(&stmts[0], Stmt::While { .. }));
        match &stmts[1] {
            Stmt::For {
                init, cond, update, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(update.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else_if_chain() {
        let stmts = parse_src("if (a) { f(); } else if (b) { g(); } else { h(); }");
        match &stmts[0] {
            Stmt::If { otherwise, .. } => {
                assert!(matches!(&otherwise[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn member_and_index() {
        let stmts = parse_src("var n = data.length; var v = data[i + 1];");
        assert!(matches!(
            &stmts[0],
            Stmt::VarDecl { init: Some(Expr::Member { name, .. }), .. } if name == "length"
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::VarDecl {
                init: Some(Expr::Index { .. }),
                ..
            }
        ));
    }

    #[test]
    fn precedence_shift_vs_add() {
        // (a & 0xffff) + (a >>> 16): `+` must be the root.
        let stmts = parse_src("x = (a & 0xffff) + (a >>> 16);");
        match &stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => {
                assert!(matches!(&**value, Expr::Bin { op: "+", .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_assignment_target_rejected() {
        assert!(parse(&tokenize("1 = x;").unwrap()).is_err());
    }

    #[test]
    fn node_count_positive() {
        let stmts = parse_src("function f(a) { return a * 2; } var x = f(21);");
        assert!(count_nodes(&stmts) > 5);
    }
}
