//! # fc-baselines — candidate virtualization runtimes (paper §6)
//!
//! The paper's first evaluation compares ultra-lightweight
//! virtualization candidates for Femto-Containers: native C, eBPF
//! (rBPF), WebAssembly (WASM3), Python (MicroPython) and JavaScript
//! (RIOTjs). This crate implements each candidate from scratch behind
//! one [`traits::FunctionRuntime`] interface so Tables 1 and 2 can be
//! regenerated:
//!
//! * [`native`] — the checksum compiled into the firmware (plus the
//!   shared fletcher32 reference and benchmark input);
//! * [`rbpf_rt`] — the Femto-Container VM from `fc-rbpf`;
//! * [`wasm`] — a WebAssembly MVP-subset binary engine (64 KiB page);
//! * [`upy`] — a Python-subset lexer → parser → bytecode VM with a
//!   fixed heap arena;
//! * [`js`] — a JavaScript-subset tree-walking evaluator.
//!
//! Flash footprints follow the structural model in DESIGN.md §3; RAM
//! footprints are the buffers each engine genuinely reserves; cold-start
//! and run cycles are derived from each engine's real dynamic work
//! counts via calibrated per-engine constants (also DESIGN.md §3).

#![warn(missing_docs)]

pub mod js;
pub mod native;
pub mod rbpf_rt;
pub mod traits;
pub mod upy;
pub mod wasm;

pub use js::JsRuntime;
pub use native::{benchmark_input, fletcher32, NativeRuntime};
pub use rbpf_rt::RbpfRuntime;
pub use traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};
pub use upy::UpyRuntime;
pub use wasm::WasmRuntime;

/// All five candidate runtimes, in the paper's table order.
pub fn all_runtimes() -> Vec<Box<dyn FunctionRuntime>> {
    vec![
        Box::new(NativeRuntime::new()),
        Box::new(WasmRuntime::new()),
        Box::new(RbpfRuntime::new()),
        Box::new(JsRuntime::new()),
        Box::new(UpyRuntime::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline result of §6: every candidate computes the same
    /// checksum, and the paper's ordering holds — rBPF is the smallest
    /// by an order of magnitude, scripts are the slowest by far.
    #[test]
    fn all_runtimes_agree_on_the_checksum() {
        let input = benchmark_input();
        let expected = fletcher32(&input) as i64;
        for mut rt in all_runtimes() {
            let applet = rt.fletcher_applet();
            rt.load(&applet)
                .unwrap_or_else(|e| panic!("{} load: {e}", rt.name()));
            let out = rt
                .run(&input)
                .unwrap_or_else(|e| panic!("{} run: {e}", rt.name()));
            assert_eq!(out.result, expected, "{} result", rt.name());
        }
    }

    #[test]
    fn table1_ordering_holds() {
        let rom = |rt: &dyn FunctionRuntime| rt.footprint().rom_bytes;
        let rbpf = RbpfRuntime::new();
        let wasm = WasmRuntime::new();
        let upy = UpyRuntime::new();
        let js = JsRuntime::new();
        assert!(
            rom(&rbpf) * 10 < rom(&wasm),
            "rBPF is 10x smaller than WASM3"
        );
        assert!(rom(&wasm) < rom(&upy));
        assert!(rom(&upy) < rom(&js));
        assert!(rbpf.footprint().ram_bytes * 100 < wasm.footprint().ram_bytes);
    }

    #[test]
    fn table2_ordering_holds() {
        let input = benchmark_input();
        let mut results = Vec::new();
        for mut rt in all_runtimes() {
            let applet = rt.fletcher_applet();
            let load = rt.load(&applet).unwrap();
            let out = rt.run(&input).unwrap();
            results.push((rt.name(), load.cycles, out.cycles));
        }
        let get = |name: &str| {
            results
                .iter()
                .find(|(n, _, _)| *n == name)
                .copied()
                .expect("runtime present")
        };
        let (_, _, native_run) = get("Native C");
        let (_, wasm_load, wasm_run) = get("WASM3");
        let (_, rbpf_load, rbpf_run) = get("rBPF");
        let (_, js_load, js_run) = get("RIOTjs");
        let (_, upy_load, upy_run) = get("MicroPython");
        // Execution: native < wasm < rbpf < scripts.
        assert!(native_run * 10 < wasm_run);
        assert!(wasm_run < rbpf_run);
        assert!(rbpf_run * 4 < js_run);
        assert!(rbpf_run * 4 < upy_run);
        // Cold start: rbpf is orders of magnitude below everything else.
        assert!(rbpf_load * 1000 < wasm_load);
        assert!(rbpf_load * 1000 < upy_load);
        assert!(
            js_load < upy_load,
            "RIOTjs parses faster than MicroPython compiles"
        );
    }
}
