//! The native-code baseline and the benchmark workload definition.
//!
//! The paper's micro-benchmark hosts "logic performing a Fletcher32
//! checksum on a 360 B input string" (§6), reasoning that it "roughly
//! mimics the instruction complexity of intensive sensor data
//! (pre-)processing on-board".

use crate::traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};

/// Length in bytes of the paper's benchmark input.
pub const INPUT_LEN: usize = 360;

/// Reference Fletcher32 over 16-bit little-endian words, with the
/// textbook per-word modular reduction. Odd trailing bytes are
/// zero-padded (the benchmark input length is even).
pub fn fletcher32(data: &[u8]) -> u32 {
    let mut sum1: u32 = 0xffff;
    let mut sum2: u32 = 0xffff;
    let mut words = data.chunks(2).map(|c| {
        let lo = c[0] as u32;
        let hi = if c.len() > 1 { c[1] as u32 } else { 0 };
        lo | (hi << 8)
    });
    for w in words.by_ref() {
        sum1 += w;
        sum1 = (sum1 & 0xffff) + (sum1 >> 16);
        sum2 += sum1;
        sum2 = (sum2 & 0xffff) + (sum2 >> 16);
    }
    // Final fold.
    sum1 = (sum1 & 0xffff) + (sum1 >> 16);
    sum2 = (sum2 & 0xffff) + (sum2 >> 16);
    (sum2 << 16) | sum1
}

/// The deterministic 360-byte benchmark input: printable ASCII, matching
/// the paper's "input string" workload.
pub fn benchmark_input() -> Vec<u8> {
    (0..INPUT_LEN).map(|i| 0x20 + (i * 7 % 95) as u8).collect()
}

/// Per-word cycle cost of the native loop on Cortex-M4 (load, two adds
/// with folds, loop bookkeeping) — calibrated so the 360 B input costs
/// ≈27 µs at 64 MHz, the paper's Table 2 native figure.
pub const NATIVE_CYCLES_PER_WORD: u64 = 9;

/// Fixed call/setup overhead of the native implementation.
pub const NATIVE_OVERHEAD_CYCLES: u64 = 60;

/// The "Native C" row of Table 2: the checksum compiled straight into
/// the firmware. Load is free; code size is the measured flash of a
/// `-Os` Thumb-2 fletcher32 (74 B in the paper — we ship a descriptor of
/// the same size as the applet).
#[derive(Debug, Default)]
pub struct NativeRuntime {
    loaded: bool,
}

impl NativeRuntime {
    /// Creates the native baseline.
    pub fn new() -> Self {
        NativeRuntime { loaded: false }
    }
}

/// Size of the native fletcher32 machine code (paper Table 2: 74 B of
/// Thumb-2). The applet for the native "runtime" is the function's
/// descriptor, padded to this size to keep code-size reporting honest.
pub const NATIVE_CODE_SIZE: usize = 74;

impl FunctionRuntime for NativeRuntime {
    fn name(&self) -> &'static str {
        "Native C"
    }

    fn footprint(&self) -> Footprint {
        // The function is part of the firmware: its ROM is the code
        // itself; scratch RAM is a few registers' worth of spill.
        Footprint {
            rom_bytes: NATIVE_CODE_SIZE,
            ram_bytes: 16,
        }
    }

    fn fletcher_applet(&self) -> Vec<u8> {
        let mut v = b"fletcher32-native".to_vec();
        v.resize(NATIVE_CODE_SIZE, 0);
        v
    }

    fn load(&mut self, _applet: &[u8]) -> Result<LoadCost, RuntimeError> {
        self.loaded = true;
        Ok(LoadCost { cycles: 0 })
    }

    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError> {
        if !self.loaded {
            return Err(RuntimeError::new("native", "no applet loaded"));
        }
        let result = fletcher32(input) as i64;
        let words = input.len().div_ceil(2) as u64;
        Ok(RunOutcome {
            result,
            steps: words,
            cycles: NATIVE_OVERHEAD_CYCLES + words * NATIVE_CYCLES_PER_WORD,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fletcher32_known_vectors() {
        // Classic vectors (per-word folded variant matches the standard
        // results for short ASCII inputs).
        assert_eq!(fletcher32(b"abcde"), 0xF04FC729);
        assert_eq!(fletcher32(b"abcdef"), 0x56502D2A);
        assert_eq!(fletcher32(b"abcdefgh"), 0xEBE19591);
    }

    #[test]
    fn benchmark_input_is_360_printable_bytes() {
        let input = benchmark_input();
        assert_eq!(input.len(), INPUT_LEN);
        assert!(input.iter().all(|b| (0x20..0x7f).contains(b)));
    }

    #[test]
    fn native_runtime_computes_checksum() {
        let mut rt = NativeRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let input = benchmark_input();
        let out = rt.run(&input).unwrap();
        assert_eq!(out.result, fletcher32(&input) as i64);
    }

    #[test]
    fn native_time_matches_paper_scale() {
        let mut rt = NativeRuntime::new();
        rt.load(&[]).unwrap();
        let out = rt.run(&benchmark_input()).unwrap();
        let us = out.cycles as f64 / 64.0;
        // Paper: 27 µs.
        assert!((20.0..40.0).contains(&us), "{us} µs");
    }

    #[test]
    fn run_without_load_errors() {
        let mut rt = NativeRuntime::new();
        assert!(rt.run(b"x").is_err());
    }
}
