//! The rBPF candidate runtime: the Femto-Container VM behind the common
//! [`FunctionRuntime`] interface, for the §6 comparison.

use std::collections::HashSet;

use fc_rbpf::helpers::HelperRegistry;
use fc_rbpf::interp::Interpreter;
use fc_rbpf::mem::{MemoryMap, Perm, CTX_VADDR, STACK_SIZE};
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rbpf::verifier::{verify, VerifiedProgram};
use fc_rbpf::vm::ExecConfig;
use fc_rtos::platform::{cycle_model, Engine, Platform};

use crate::traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};

/// Engine flash per the DESIGN.md flash model — Table 1's rBPF row
/// (4.4 KiB: interpreter, verifier and loader glue).
pub const RBPF_ROM_BYTES: usize = 4506;

/// Per-instance RAM: the 512 B stack, the register file and
/// housekeeping (Table 1 reports 0.6 KiB).
pub const RBPF_RAM_BYTES: usize = STACK_SIZE + 11 * 8 + 24;

/// Cold-start cycles: header parse and region setup only — pre-flight
/// verification runs once at install time, not per load, which is how
/// the paper's Table 2 arrives at ~1 µs for rBPF.
pub const SETUP_CYCLES: u64 = 64;

/// The eBPF assembly of the fletcher32 applet. The context struct is
/// `{ len: u32, pad: u32, data: [u8] }`.
pub const FLETCHER_BPF_ASM: &str = "\
; fletcher32 over the context buffer (rbpf applet)
    ldxw r2, [r1]        ; byte count
    mov r3, r1
    add r3, 8            ; data pointer
    mov r4, 0xffff       ; sum1
    mov r5, 0xffff       ; sum2
    mov r6, 0            ; i
loop:
    jge r6, r2, done
    mov r7, r3
    add r7, r6
    ldxh r0, [r7]        ; w
    add r4, r0
    mov r8, r4           ; fold sum1
    and r8, 0xffff
    rsh r4, 16
    add r4, r8
    add r5, r4
    mov r8, r5           ; fold sum2
    and r8, 0xffff
    rsh r5, 16
    add r5, r8
    add r6, 2
    ja loop
done:
    mov r8, r4           ; final folds
    and r8, 0xffff
    rsh r4, 16
    add r4, r8
    mov r8, r5
    and r8, 0xffff
    rsh r5, 16
    add r5, r8
    lsh r5, 16
    or r5, r4
    mov r0, r5
    exit
";

/// Builds the fletcher32 applet as a Femto-Container image.
pub fn fletcher_bpf_program() -> FcProgram {
    ProgramBuilder::new()
        .asm(FLETCHER_BPF_ASM)
        .expect("applet assembles")
        .build()
}

/// The rBPF runtime under the common interface.
#[derive(Debug, Default)]
pub struct RbpfRuntime {
    program: Option<VerifiedProgram>,
}

impl RbpfRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        RbpfRuntime::default()
    }
}

impl FunctionRuntime for RbpfRuntime {
    fn name(&self) -> &'static str {
        "rBPF"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            rom_bytes: RBPF_ROM_BYTES,
            ram_bytes: RBPF_RAM_BYTES,
        }
    }

    fn fletcher_applet(&self) -> Vec<u8> {
        fletcher_bpf_program().to_bytes()
    }

    fn load(&mut self, applet: &[u8]) -> Result<LoadCost, RuntimeError> {
        let image =
            FcProgram::from_bytes(applet).map_err(|e| RuntimeError::new("rbpf", e.to_string()))?;
        let program = verify(&image.text, &HashSet::new())
            .map_err(|e| RuntimeError::new("rbpf", e.to_string()))?;
        self.program = Some(program);
        Ok(LoadCost {
            cycles: SETUP_CYCLES,
        })
    }

    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError> {
        let program = self
            .program
            .as_ref()
            .ok_or_else(|| RuntimeError::new("rbpf", "no program"))?;
        let mut mem = MemoryMap::new();
        mem.add_stack(STACK_SIZE);
        let mut ctx = Vec::with_capacity(8 + input.len());
        ctx.extend_from_slice(&(input.len() as u32).to_le_bytes());
        ctx.extend_from_slice(&[0u8; 4]);
        ctx.extend_from_slice(input);
        mem.add_ctx(ctx, Perm::RO);
        let mut helpers = HelperRegistry::new();
        let out = Interpreter::new(program, ExecConfig::default())
            .run(&mut mem, &mut helpers, CTX_VADDR)
            .map_err(|e| RuntimeError::new("rbpf", e.to_string()))?;
        let model = cycle_model(Platform::CortexM4, Engine::Rbpf);
        Ok(RunOutcome {
            result: out.return_value as i64,
            steps: out.counts.total(),
            cycles: model.execution_cycles(&out.counts),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{benchmark_input, fletcher32};

    #[test]
    fn applet_verifies_and_matches_reference() {
        let mut rt = RbpfRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let input = benchmark_input();
        let out = rt.run(&input).unwrap();
        assert_eq!(out.result as u32, fletcher32(&input));
    }

    #[test]
    fn applet_matches_reference_on_varied_inputs() {
        let mut rt = RbpfRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        for n in [0usize, 2, 8, 64, 358] {
            let input: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            let out = rt.run(&input).unwrap();
            assert_eq!(out.result as u32, fletcher32(&input), "len {n}");
        }
    }

    #[test]
    fn code_size_matches_paper_scale() {
        // Paper Table 2: 456 B for the rBPF applet.
        let rt = RbpfRuntime::new();
        let size = rt.fletcher_applet().len();
        assert!((300..600).contains(&size), "{size} bytes");
    }

    #[test]
    fn run_time_matches_paper_scale() {
        let mut rt = RbpfRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let out = rt.run(&benchmark_input()).unwrap();
        let us = out.cycles as f64 / 64.0;
        // Paper Table 2: 2 133 µs.
        assert!((1_000.0..3_500.0).contains(&us), "{us} µs");
    }

    #[test]
    fn cold_start_is_microsecond_scale() {
        let mut rt = RbpfRuntime::new();
        let cost = rt.load(&rt.fletcher_applet()).unwrap();
        assert!(cost.cycles <= 128, "{} cycles", cost.cycles);
    }

    #[test]
    fn footprint_matches_table1() {
        let fp = RbpfRuntime::new().footprint();
        assert!(fp.rom_bytes < 5 * 1024);
        assert!(fp.ram_bytes < 1024);
    }
}
