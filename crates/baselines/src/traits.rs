//! The common interface over the candidate virtualization techniques the
//! paper benchmarks in §6: native C, eBPF (rBPF), WebAssembly (WASM3),
//! JavaScript (RIOTjs) and Python (MicroPython).

use std::error::Error;
use std::fmt;

/// Engine memory requirements (paper Table 1).
///
/// `rom_bytes` follows the flash model documented in DESIGN.md §3
/// (structural inventory × ISA density); `ram_bytes` is the sum of the
/// buffers the runtime actually reserves (heap arena, linear memory,
/// value stack, VM state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Flash required by the engine.
    pub rom_bytes: usize,
    /// RAM required by one engine instance.
    pub ram_bytes: usize,
}

/// Cost of loading an applet (paper Table 2, "cold start overhead").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCost {
    /// Simulated Cortex-M4 cycles for parse/validate/compile work.
    pub cycles: u64,
}

/// Outcome of running a loaded applet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// The applet's return value.
    pub result: i64,
    /// Abstract interpreter steps executed (for reporting).
    pub steps: u64,
    /// Simulated Cortex-M4 cycles for the execution.
    pub cycles: u64,
}

/// A runtime failure in a baseline engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Which engine failed.
    pub engine: &'static str,
    /// What went wrong.
    pub message: String,
}

impl RuntimeError {
    /// Creates an error.
    pub fn new(engine: &'static str, message: impl Into<String>) -> Self {
        RuntimeError {
            engine,
            message: message.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.engine, self.message)
    }
}

impl Error for RuntimeError {}

/// A hosted-function runtime candidate.
///
/// The lifecycle mirrors the paper's measurements: ship an applet
/// (`fletcher_applet` returns the exact bytes measured as "code size"),
/// load it once (cold start), run it per event.
pub trait FunctionRuntime {
    /// Engine name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Engine ROM/RAM requirements.
    fn footprint(&self) -> Footprint;

    /// The fletcher32 benchmark applet in this runtime's input format.
    fn fletcher_applet(&self) -> Vec<u8>;

    /// Parses/compiles an applet (cold start).
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on malformed input.
    fn load(&mut self, applet: &[u8]) -> Result<LoadCost, RuntimeError>;

    /// Runs the loaded applet over `input`, returning its result.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] when no applet is loaded or execution faults.
    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_error_display() {
        let e = RuntimeError::new("wasm-sim", "stack underflow");
        assert_eq!(e.to_string(), "wasm-sim: stack underflow");
    }
}
