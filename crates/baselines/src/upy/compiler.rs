//! Bytecode compiler for the Python subset (MicroPython compiles to
//! bytecode at load time; this is the cold-start work Table 2 measures).

use std::collections::HashMap;

use super::lexer::LexError;
use super::parser::{Expr, Stmt};

/// Binary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    FloorDiv,
    Mod,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Bytecode operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    Const(i64),
    /// Push `True`/`False`.
    Bool(bool),
    /// Push `None`.
    None,
    /// Push a local variable.
    LoadLocal(u16),
    /// Store into a local variable.
    StoreLocal(u16),
    /// Push a global by name-table index.
    LoadGlobal(u16),
    /// Store a global by name-table index.
    StoreGlobal(u16),
    /// Binary operation on the two top stack values.
    Bin(BinKind),
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise inversion.
    Inv,
    /// Unconditional jump to op index.
    Jump(u32),
    /// Pop; jump when falsy.
    PopJumpIfFalse(u32),
    /// `and`: jump keeping value when falsy, else pop.
    JumpIfFalseOrPop(u32),
    /// `or`: jump keeping value when truthy, else pop.
    JumpIfTrueOrPop(u32),
    /// Call the function named by name-table index with `argc` args.
    Call {
        /// Name-table index of the callee.
        name: u16,
        /// Argument count.
        argc: u8,
    },
    /// `obj[idx]` (pops idx, obj; pushes value).
    Subscr,
    /// `obj[idx] = value` (pops value, idx, obj).
    StoreSubscr,
    /// Build a list from the top `n` values.
    BuildList(u16),
    /// Return top of stack.
    Return,
    /// Drop top of stack.
    Pop,
}

/// One compiled function (or the module body, index 0).
#[derive(Debug, Clone, PartialEq)]
pub struct CodeObject {
    /// Number of parameters (leading locals).
    pub n_params: usize,
    /// Total local slots.
    pub n_locals: usize,
    /// The bytecode.
    pub ops: Vec<Op>,
}

/// A compiled program: module body plus functions, sharing a name table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Interned names (globals and callees).
    pub names: Vec<String>,
    /// Code objects; index 0 is the module body.
    pub codes: Vec<CodeObject>,
    /// name-table index → code index, for defined functions.
    pub functions: HashMap<u16, usize>,
}

impl Program {
    /// Total bytecode operations across all code objects (cold-start
    /// accounting).
    pub fn op_count(&self) -> usize {
        self.codes.iter().map(|c| c.ops.len()).sum()
    }
}

/// Compiles parsed statements into a [`Program`].
///
/// # Errors
///
/// [`LexError`] (reused diagnostics) on semantic errors such as `break`
/// outside a loop.
pub fn compile(module: &[Stmt]) -> Result<Program, LexError> {
    let mut program = Program::default();
    // Reserve index 0 for the module body.
    program.codes.push(CodeObject {
        n_params: 0,
        n_locals: 0,
        ops: Vec::new(),
    });
    let mut ctx = FnCtx::module();
    compile_suite(module, &mut program, &mut ctx)?;
    ctx.ops.push(Op::None);
    ctx.ops.push(Op::Return);
    program.codes[0] = CodeObject {
        n_params: 0,
        n_locals: 0,
        ops: ctx.ops,
    };
    Ok(program)
}

struct FnCtx {
    ops: Vec<Op>,
    locals: HashMap<String, u16>,
    is_module: bool,
    loop_stack: Vec<LoopCtx>,
}

struct LoopCtx {
    start: u32,
    breaks: Vec<usize>,
}

impl FnCtx {
    fn module() -> Self {
        FnCtx {
            ops: Vec::new(),
            locals: HashMap::new(),
            is_module: true,
            loop_stack: Vec::new(),
        }
    }

    fn function(params: &[String], body: &[Stmt]) -> Self {
        let mut locals = HashMap::new();
        for p in params {
            let idx = locals.len() as u16;
            locals.insert(p.clone(), idx);
        }
        collect_assigned(body, &mut locals);
        FnCtx {
            ops: Vec::new(),
            locals,
            is_module: false,
            loop_stack: Vec::new(),
        }
    }
}

/// Python scoping: any name assigned anywhere in a function body is a
/// local throughout that body.
fn collect_assigned(body: &[Stmt], locals: &mut HashMap<String, u16>) {
    for stmt in body {
        match stmt {
            Stmt::Assign {
                target: Expr::Name(n),
                ..
            } if !locals.contains_key(n) => {
                let idx = locals.len() as u16;
                locals.insert(n.clone(), idx);
            }
            Stmt::While { body, .. } => collect_assigned(body, locals),
            Stmt::If {
                then, otherwise, ..
            } => {
                collect_assigned(then, locals);
                collect_assigned(otherwise, locals);
            }
            _ => {}
        }
    }
}

fn intern(program: &mut Program, name: &str) -> u16 {
    if let Some(i) = program.names.iter().position(|n| n == name) {
        return i as u16;
    }
    program.names.push(name.to_owned());
    (program.names.len() - 1) as u16
}

fn compile_suite(stmts: &[Stmt], program: &mut Program, ctx: &mut FnCtx) -> Result<(), LexError> {
    for stmt in stmts {
        compile_stmt(stmt, program, ctx)?;
    }
    Ok(())
}

fn compile_stmt(stmt: &Stmt, program: &mut Program, ctx: &mut FnCtx) -> Result<(), LexError> {
    match stmt {
        Stmt::Pass => {}
        Stmt::Expr(e) => {
            compile_expr(e, program, ctx)?;
            ctx.ops.push(Op::Pop);
        }
        Stmt::Assign { target, value } => match target {
            Expr::Name(n) => {
                compile_expr(value, program, ctx)?;
                if !ctx.is_module && ctx.locals.contains_key(n) {
                    ctx.ops.push(Op::StoreLocal(ctx.locals[n]));
                } else {
                    let idx = intern(program, n);
                    ctx.ops.push(Op::StoreGlobal(idx));
                }
            }
            Expr::Subscript { obj, index } => {
                compile_expr(obj, program, ctx)?;
                compile_expr(index, program, ctx)?;
                compile_expr(value, program, ctx)?;
                ctx.ops.push(Op::StoreSubscr);
            }
            _ => {
                return Err(LexError {
                    line: 0,
                    msg: "invalid assignment target".into(),
                });
            }
        },
        Stmt::Return(e) => {
            match e {
                Some(e) => compile_expr(e, program, ctx)?,
                None => ctx.ops.push(Op::None),
            }
            ctx.ops.push(Op::Return);
        }
        Stmt::While { cond, body } => {
            let start = ctx.ops.len() as u32;
            compile_expr(cond, program, ctx)?;
            let exit_patch = ctx.ops.len();
            ctx.ops.push(Op::PopJumpIfFalse(0));
            ctx.loop_stack.push(LoopCtx {
                start,
                breaks: Vec::new(),
            });
            compile_suite(body, program, ctx)?;
            ctx.ops.push(Op::Jump(start));
            let end = ctx.ops.len() as u32;
            ctx.ops[exit_patch] = Op::PopJumpIfFalse(end);
            let loop_ctx = ctx.loop_stack.pop().expect("loop context");
            for b in loop_ctx.breaks {
                ctx.ops[b] = Op::Jump(end);
            }
        }
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            compile_expr(cond, program, ctx)?;
            let else_patch = ctx.ops.len();
            ctx.ops.push(Op::PopJumpIfFalse(0));
            compile_suite(then, program, ctx)?;
            if otherwise.is_empty() {
                let end = ctx.ops.len() as u32;
                ctx.ops[else_patch] = Op::PopJumpIfFalse(end);
            } else {
                let end_patch = ctx.ops.len();
                ctx.ops.push(Op::Jump(0));
                let else_start = ctx.ops.len() as u32;
                ctx.ops[else_patch] = Op::PopJumpIfFalse(else_start);
                compile_suite(otherwise, program, ctx)?;
                let end = ctx.ops.len() as u32;
                ctx.ops[end_patch] = Op::Jump(end);
            }
        }
        Stmt::Break => {
            let patch = ctx.ops.len();
            ctx.ops.push(Op::Jump(0));
            match ctx.loop_stack.last_mut() {
                Some(l) => l.breaks.push(patch),
                None => {
                    return Err(LexError {
                        line: 0,
                        msg: "break outside loop".into(),
                    })
                }
            }
        }
        Stmt::Continue => {
            let start = match ctx.loop_stack.last() {
                Some(l) => l.start,
                None => {
                    return Err(LexError {
                        line: 0,
                        msg: "continue outside loop".into(),
                    });
                }
            };
            ctx.ops.push(Op::Jump(start));
        }
        Stmt::Def { name, params, body } => {
            if !ctx.is_module {
                return Err(LexError {
                    line: 0,
                    msg: "nested def not supported".into(),
                });
            }
            let mut fctx = FnCtx::function(params, body);
            compile_suite(body, program, &mut fctx)?;
            fctx.ops.push(Op::None);
            fctx.ops.push(Op::Return);
            let code = CodeObject {
                n_params: params.len(),
                n_locals: fctx.locals.len(),
                ops: fctx.ops,
            };
            program.codes.push(code);
            let code_idx = program.codes.len() - 1;
            let name_idx = intern(program, name);
            program.functions.insert(name_idx, code_idx);
        }
    }
    Ok(())
}

fn compile_expr(e: &Expr, program: &mut Program, ctx: &mut FnCtx) -> Result<(), LexError> {
    match e {
        Expr::Int(v) => ctx.ops.push(Op::Const(*v)),
        Expr::Bool(b) => ctx.ops.push(Op::Bool(*b)),
        Expr::None => ctx.ops.push(Op::None),
        Expr::Name(n) => {
            if !ctx.is_module {
                if let Some(idx) = ctx.locals.get(n) {
                    ctx.ops.push(Op::LoadLocal(*idx));
                    return Ok(());
                }
            }
            let idx = intern(program, n);
            ctx.ops.push(Op::LoadGlobal(idx));
        }
        Expr::Unary { op, operand } => {
            compile_expr(operand, program, ctx)?;
            ctx.ops.push(match op.as_str() {
                "-" => Op::Neg,
                "~" => Op::Inv,
                _ => Op::Not,
            });
        }
        Expr::Bin { op, lhs, rhs } => match op.as_str() {
            "and" => {
                compile_expr(lhs, program, ctx)?;
                let patch = ctx.ops.len();
                ctx.ops.push(Op::JumpIfFalseOrPop(0));
                compile_expr(rhs, program, ctx)?;
                let end = ctx.ops.len() as u32;
                ctx.ops[patch] = Op::JumpIfFalseOrPop(end);
            }
            "or" => {
                compile_expr(lhs, program, ctx)?;
                let patch = ctx.ops.len();
                ctx.ops.push(Op::JumpIfTrueOrPop(0));
                compile_expr(rhs, program, ctx)?;
                let end = ctx.ops.len() as u32;
                ctx.ops[patch] = Op::JumpIfTrueOrPop(end);
            }
            other => {
                compile_expr(lhs, program, ctx)?;
                compile_expr(rhs, program, ctx)?;
                let kind = match other {
                    "+" => BinKind::Add,
                    "-" => BinKind::Sub,
                    "*" => BinKind::Mul,
                    "//" => BinKind::FloorDiv,
                    "%" => BinKind::Mod,
                    "<<" => BinKind::Shl,
                    ">>" => BinKind::Shr,
                    "&" => BinKind::BitAnd,
                    "|" => BinKind::BitOr,
                    "^" => BinKind::BitXor,
                    "==" => BinKind::Eq,
                    "!=" => BinKind::Ne,
                    "<" => BinKind::Lt,
                    "<=" => BinKind::Le,
                    ">" => BinKind::Gt,
                    ">=" => BinKind::Ge,
                    _ => {
                        return Err(LexError {
                            line: 0,
                            msg: format!("operator `{other}`"),
                        });
                    }
                };
                ctx.ops.push(Op::Bin(kind));
            }
        },
        Expr::Call { name, args } => {
            for a in args {
                compile_expr(a, program, ctx)?;
            }
            let idx = intern(program, name);
            ctx.ops.push(Op::Call {
                name: idx,
                argc: args.len() as u8,
            });
        }
        Expr::Subscript { obj, index } => {
            compile_expr(obj, program, ctx)?;
            compile_expr(index, program, ctx)?;
            ctx.ops.push(Op::Subscr);
        }
        Expr::List(items) => {
            for item in items {
                compile_expr(item, program, ctx)?;
            }
            ctx.ops.push(Op::BuildList(items.len() as u16));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upy::lexer::tokenize;
    use crate::upy::parser::parse;

    fn compile_src(src: &str) -> Program {
        compile(&parse(&tokenize(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn module_body_is_code_zero() {
        let p = compile_src("x = 1");
        assert_eq!(p.codes.len(), 1);
        assert!(p.codes[0].ops.contains(&Op::Const(1)));
    }

    #[test]
    fn function_gets_own_code_and_locals() {
        let p = compile_src("def f(a):\n    b = a + 1\n    return b");
        assert_eq!(p.codes.len(), 2);
        let f = &p.codes[1];
        assert_eq!(f.n_params, 1);
        assert_eq!(f.n_locals, 2);
        assert!(f.ops.contains(&Op::LoadLocal(0)));
        assert!(f.ops.contains(&Op::StoreLocal(1)));
    }

    #[test]
    fn while_compiles_to_backward_jump() {
        let p = compile_src("x = 3\nwhile x:\n    x = x - 1");
        let jumps: Vec<_> = p.codes[0]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Jump(_) | Op::PopJumpIfFalse(_)))
            .collect();
        assert_eq!(jumps.len(), 2);
    }

    #[test]
    fn break_patches_to_loop_end() {
        let p = compile_src("while 1:\n    break");
        let ops = &p.codes[0].ops;
        let end = ops.len() as u32 - 2; // before None, Return
        assert!(ops.contains(&Op::Jump(end)), "{ops:?}");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let stmts = parse(&tokenize("break").unwrap()).unwrap();
        assert!(compile(&stmts).is_err());
    }

    #[test]
    fn and_or_short_circuit_ops() {
        let p = compile_src("x = a and b\ny = a or b");
        let ops = &p.codes[0].ops;
        assert!(ops.iter().any(|o| matches!(o, Op::JumpIfFalseOrPop(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::JumpIfTrueOrPop(_))));
    }

    #[test]
    fn names_are_interned_once() {
        let p = compile_src("x = 1\ny = x\nz = x");
        assert_eq!(p.names.iter().filter(|n| *n == "x").count(), 1);
    }
}
