//! Indentation-aware tokenizer for the Python subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Name(String),
    /// Keyword.
    Kw(Kw),
    /// Operator / punctuation.
    Op(&'static str),
    /// Statement separator.
    Newline,
    /// Block open (indentation increased).
    Indent,
    /// Block close (indentation decreased).
    Dedent,
    /// End of input.
    Eof,
}

/// Keywords of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Def,
    While,
    If,
    Elif,
    Else,
    Return,
    Pass,
    Break,
    Continue,
    And,
    Or,
    Not,
    True,
    False,
    None,
}

/// A lexing failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "def" => Kw::Def,
        "while" => Kw::While,
        "if" => Kw::If,
        "elif" => Kw::Elif,
        "else" => Kw::Else,
        "return" => Kw::Return,
        "pass" => Kw::Pass,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "and" => Kw::And,
        "or" => Kw::Or,
        "not" => Kw::Not,
        "True" => Kw::True,
        "False" => Kw::False,
        "None" => Kw::None,
        _ => return None,
    })
}

/// Tokenizes source text, emitting `Indent`/`Dedent` pairs for blocks.
///
/// # Errors
///
/// [`LexError`] on bad characters, bad numbers or inconsistent
/// indentation.
pub fn tokenize(source: &str) -> Result<Vec<Tok>, LexError> {
    let mut toks = Vec::new();
    let mut indents: Vec<usize> = vec![0];

    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let without_comment = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        let indent = without_comment.len() - without_comment.trim_start_matches(' ').len();
        if without_comment.trim_start_matches(' ').starts_with('\t') {
            return Err(LexError {
                line: line_no,
                msg: "tabs not supported".into(),
            });
        }
        let current = *indents.last().expect("indent stack non-empty");
        if indent > current {
            indents.push(indent);
            toks.push(Tok::Indent);
        } else if indent < current {
            while *indents.last().expect("stack") > indent {
                indents.pop();
                toks.push(Tok::Dedent);
            }
            if *indents.last().expect("stack") != indent {
                return Err(LexError {
                    line: line_no,
                    msg: "inconsistent dedent".into(),
                });
            }
        }
        lex_line(without_comment.trim_start_matches(' '), line_no, &mut toks)?;
        toks.push(Tok::Newline);
    }
    while indents.len() > 1 {
        indents.pop();
        toks.push(Tok::Dedent);
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

fn lex_line(mut s: &str, line: usize, out: &mut Vec<Tok>) -> Result<(), LexError> {
    const OPS: &[&str] = &[
        "**", "//", "<<", ">>", "<=", ">=", "==", "!=", "+", "-", "*", "%", "&", "|", "^", "~",
        "<", ">", "=", "(", ")", "[", "]", ",", ":",
    ];
    'outer: while !s.is_empty() {
        let c = s.chars().next().expect("non-empty");
        if c == ' ' {
            s = &s[1..];
            continue;
        }
        if c.is_ascii_digit() {
            let end = s
                .find(|c: char| !c.is_ascii_alphanumeric())
                .unwrap_or(s.len());
            let body = &s[..end];
            let value =
                if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
                    i64::from_str_radix(hex, 16).ok()
                } else {
                    body.parse::<i64>().ok()
                };
            match value {
                Some(v) => out.push(Tok::Int(v)),
                None => {
                    return Err(LexError {
                        line,
                        msg: format!("bad number `{body}`"),
                    });
                }
            }
            s = &s[end..];
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let end = s
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(s.len());
            let word = &s[..end];
            match keyword(word) {
                Some(kw) => out.push(Tok::Kw(kw)),
                None => out.push(Tok::Name(word.to_owned())),
            }
            s = &s[end..];
            continue;
        }
        for op in OPS {
            if let Some(rest) = s.strip_prefix(op) {
                out.push(Tok::Op(op));
                s = rest;
                continue 'outer;
            }
        }
        return Err(LexError {
            line,
            msg: format!("unexpected character `{c}`"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_statement() {
        let toks = tokenize("x = 1 + 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Int(1),
                Tok::Op("+"),
                Tok::Int(2),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let src = "\
while x:
    x = x - 1
    if x:
        pass
y = 1";
        let toks = tokenize(src).unwrap();
        let indents = toks.iter().filter(|t| **t == Tok::Indent).count();
        let dedents = toks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn trailing_dedents_emitted() {
        let src = "if x:\n    pass";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[toks.len() - 2], Tok::Dedent);
    }

    #[test]
    fn hex_and_keywords() {
        let toks = tokenize("return 0xffff and True").unwrap();
        assert_eq!(toks[0], Tok::Kw(Kw::Return));
        assert_eq!(toks[1], Tok::Int(0xffff));
        assert_eq!(toks[2], Tok::Kw(Kw::And));
        assert_eq!(toks[3], Tok::Kw(Kw::True));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let toks = tokenize("# header\n\nx = 1  # trailing\n").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Tok::Newline).count(), 1);
    }

    #[test]
    fn multi_char_operators_lex_greedily() {
        let toks = tokenize("a >> 16 <= b // 2").unwrap();
        assert!(toks.contains(&Tok::Op(">>")));
        assert!(toks.contains(&Tok::Op("<=")));
        assert!(toks.contains(&Tok::Op("//")));
    }

    #[test]
    fn bad_character_rejected() {
        let e = tokenize("x = $").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn inconsistent_dedent_rejected() {
        let src = "if x:\n        pass\n    y = 1";
        assert!(tokenize(src).is_err());
    }
}
