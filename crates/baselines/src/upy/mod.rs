//! upy-sim: a MicroPython stand-in (paper §6).
//!
//! A Python-subset pipeline with the architectural properties that drive
//! MicroPython's row in Tables 1–2: source text must be tokenized,
//! parsed and compiled at load time (the dominant cold-start cost), the
//! VM dispatches heap-aware bytecode, and object allocation draws from a
//! fixed heap arena (8 KiB, matching the constrained-board default that
//! sets the RAM footprint).
//!
//! Supported subset: `def`, `while`, `if`/`elif`/`else`, `return`,
//! `pass`, `break`, `continue`, assignments, integer arithmetic and
//! bitwise operators, comparisons, `and`/`or`/`not`, lists, `bytes`
//! subscripting, `len()` and `print()`.

pub mod compiler;
pub mod lexer;
pub mod parser;
pub mod vm;

pub use vm::UpyRuntime;

/// Default heap arena in bytes (MicroPython's constrained-board scale;
/// Table 1 reports 8.2 KiB RAM for the MicroPython runtime).
pub const HEAP_BYTES: usize = 8 * 1024;

/// Engine flash footprint per the DESIGN.md flash model — calibrated to
/// Table 1's MicroPython row (101 KiB): tokenizer, compiler, VM, object
/// model and the builtin library core.
pub const UPY_ROM_BYTES: usize = 101 * 1024;
