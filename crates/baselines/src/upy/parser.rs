//! Recursive-descent parser for the Python subset.

use super::lexer::{Kw, LexError, Tok};

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    None,
    /// Name reference.
    Name(String),
    /// Binary operation.
    Bin {
        /// Operator lexeme (`+`, `<<`, `==`, `and`…).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation (`-`, `not`, `~`).
    Unary {
        /// Operator lexeme.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Subscript `obj[index]`.
    Subscript {
        /// The indexed expression.
        obj: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// List display `[a, b, …]`.
    List(Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr` or `obj[i] = expr`.
    Assign {
        /// Assignment target.
        target: Expr,
        /// Value.
        value: Expr,
    },
    /// Bare expression (evaluated, result dropped).
    Expr(Expr),
    /// `def name(params): suite`.
    Def {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `while cond: suite`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `if`/`elif`/`else` chain (elifs desugared into nested ifs).
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch.
        otherwise: Vec<Stmt>,
    },
    /// `return expr?`.
    Return(Option<Expr>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// Parses token stream into a statement list.
///
/// # Errors
///
/// [`LexError`] (reused for parse diagnostics) on malformed syntax.
pub fn parse(toks: &[Tok]) -> Result<Vec<Stmt>, LexError> {
    let mut p = Parser { toks, pos: 0 };
    let body = p.suite_until_eof()?;
    Ok(body)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        self.toks.get(self.pos).unwrap_or(&Tok::Eof)
    }

    fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LexError> {
        Err(LexError {
            line: 0,
            msg: format!("{} near token {}", msg.into(), self.pos),
        })
    }

    fn expect_op(&mut self, op: &str) -> Result<(), LexError> {
        match self.next() {
            Tok::Op(o) if o == op => Ok(()),
            other => self.err(format!("expected `{op}`, found {other:?}")),
        }
    }

    fn expect_newline(&mut self) -> Result<(), LexError> {
        match self.next() {
            Tok::Newline => Ok(()),
            other => self.err(format!("expected newline, found {other:?}")),
        }
    }

    fn suite_until_eof(&mut self) -> Result<Vec<Stmt>, LexError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::Eof {
            out.push(self.statement()?);
        }
        Ok(out)
    }

    /// An indented block: `: NEWLINE INDENT stmt+ DEDENT`.
    fn block(&mut self) -> Result<Vec<Stmt>, LexError> {
        self.expect_op(":")?;
        self.expect_newline()?;
        match self.next() {
            Tok::Indent => {}
            other => return self.err(format!("expected indented block, found {other:?}")),
        }
        let mut out = Vec::new();
        loop {
            out.push(self.statement()?);
            if *self.peek() == Tok::Dedent {
                self.pos += 1;
                return Ok(out);
            }
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
        }
    }

    fn statement(&mut self) -> Result<Stmt, LexError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Def) => {
                self.pos += 1;
                let name = match self.next() {
                    Tok::Name(n) => n,
                    other => return self.err(format!("expected function name, got {other:?}")),
                };
                self.expect_op("(")?;
                let mut params = Vec::new();
                if *self.peek() != Tok::Op(")") {
                    loop {
                        match self.next() {
                            Tok::Name(p) => params.push(p),
                            other => {
                                return self.err(format!("expected parameter, got {other:?}"));
                            }
                        }
                        if *self.peek() == Tok::Op(",") {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect_op(")")?;
                let body = self.block()?;
                Ok(Stmt::Def { name, params, body })
            }
            Tok::Kw(Kw::While) => {
                self.pos += 1;
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::If) => {
                self.pos += 1;
                self.if_chain()
            }
            Tok::Kw(Kw::Return) => {
                self.pos += 1;
                if *self.peek() == Tok::Newline {
                    self.pos += 1;
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_newline()?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Kw(Kw::Pass) => {
                self.pos += 1;
                self.expect_newline()?;
                Ok(Stmt::Pass)
            }
            Tok::Kw(Kw::Break) => {
                self.pos += 1;
                self.expect_newline()?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.pos += 1;
                self.expect_newline()?;
                Ok(Stmt::Continue)
            }
            _ => {
                let first = self.expr()?;
                if *self.peek() == Tok::Op("=") {
                    self.pos += 1;
                    let value = self.expr()?;
                    self.expect_newline()?;
                    match &first {
                        Expr::Name(_) | Expr::Subscript { .. } => Ok(Stmt::Assign {
                            target: first,
                            value,
                        }),
                        _ => self.err("invalid assignment target"),
                    }
                } else {
                    self.expect_newline()?;
                    Ok(Stmt::Expr(first))
                }
            }
        }
    }

    fn if_chain(&mut self) -> Result<Stmt, LexError> {
        let cond = self.expr()?;
        let then = self.block()?;
        let otherwise = match self.peek().clone() {
            Tok::Kw(Kw::Elif) => {
                self.pos += 1;
                vec![self.if_chain()?]
            }
            Tok::Kw(Kw::Else) => {
                self.pos += 1;
                self.block()?
            }
            _ => Vec::new(),
        };
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
        })
    }

    // Precedence climbing: or < and < not < comparison < | < ^ < & <
    // shifts < add/sub < mul/div/mod < unary < postfix.
    fn expr(&mut self) -> Result<Expr, LexError> {
        self.or_expr()
    }

    fn bin_level<F>(&mut self, ops: &[&str], next: F) -> Result<Expr, LexError>
    where
        F: Fn(&mut Self) -> Result<Expr, LexError>,
    {
        let mut lhs = next(self)?;
        loop {
            let op = match self.peek() {
                Tok::Op(o) if ops.contains(o) => o.to_string(),
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = next(self)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn or_expr(&mut self) -> Result<Expr, LexError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::Kw(Kw::Or) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: "or".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LexError> {
        let mut lhs = self.not_expr()?;
        while *self.peek() == Tok::Kw(Kw::And) {
            self.pos += 1;
            let rhs = self.not_expr()?;
            lhs = Expr::Bin {
                op: "and".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, LexError> {
        if *self.peek() == Tok::Kw(Kw::Not) {
            self.pos += 1;
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: "not".into(),
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, LexError> {
        self.bin_level(&["==", "!=", "<", "<=", ">", ">="], |p| {
            p.bin_level(&["|"], |p| {
                p.bin_level(&["^"], |p| {
                    p.bin_level(&["&"], |p| {
                        p.bin_level(&["<<", ">>"], |p| {
                            p.bin_level(&["+", "-"], |p| {
                                p.bin_level(&["*", "//", "%"], Self::unary)
                            })
                        })
                    })
                })
            })
        })
    }

    fn unary(&mut self) -> Result<Expr, LexError> {
        match self.peek() {
            Tok::Op("-") => {
                self.pos += 1;
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: "-".into(),
                    operand: Box::new(operand),
                })
            }
            Tok::Op("~") => {
                self.pos += 1;
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: "~".into(),
                    operand: Box::new(operand),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LexError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Op("[") => {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect_op("]")?;
                    e = Expr::Subscript {
                        obj: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Tok::Op("(") => {
                    let name = match &e {
                        Expr::Name(n) => n.clone(),
                        _ => return self.err("only simple names are callable"),
                    };
                    self.pos += 1;
                    let mut args = Vec::new();
                    if *self.peek() != Tok::Op(")") {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Op(",") {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_op(")")?;
                    e = Expr::Call { name, args };
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, LexError> {
        match self.next() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Name(n) => Ok(Expr::Name(n)),
            Tok::Kw(Kw::True) => Ok(Expr::Bool(true)),
            Tok::Kw(Kw::False) => Ok(Expr::Bool(false)),
            Tok::Kw(Kw::None) => Ok(Expr::None),
            Tok::Op("(") => {
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Tok::Op("[") => {
                let mut items = Vec::new();
                if *self.peek() != Tok::Op("]") {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == Tok::Op(",") {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect_op("]")?;
                Ok(Expr::List(items))
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upy::lexer::tokenize;

    fn parse_src(src: &str) -> Vec<Stmt> {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn assignment_and_precedence() {
        let stmts = parse_src("x = 1 + 2 * 3");
        match &stmts[0] {
            Stmt::Assign {
                value: Expr::Bin { op, rhs, .. },
                ..
            } => {
                assert_eq!(op, "+");
                assert!(matches!(**rhs, Expr::Bin { ref op, .. } if op == "*"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shift_binds_tighter_than_and_mask() {
        // (sum1 & 65535) + (sum1 >> 16) pattern must parse as written.
        let stmts = parse_src("s = (a & 65535) + (a >> 16)");
        match &stmts[0] {
            Stmt::Assign {
                value: Expr::Bin { op, .. },
                ..
            } => assert_eq!(op, "+"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_with_params_and_body() {
        let stmts = parse_src("def f(a, b):\n    return a + b");
        match &stmts[0] {
            Stmt::Def { name, params, body } => {
                assert_eq!(name, "f");
                assert_eq!(params, &["a", "b"]);
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_with_break_continue() {
        let stmts = parse_src("while x:\n    break\n    continue");
        match &stmts[0] {
            Stmt::While { body, .. } => {
                assert_eq!(body[0], Stmt::Break);
                assert_eq!(body[1], Stmt::Continue);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elif_else_desugars() {
        let stmts = parse_src("if a:\n    pass\nelif b:\n    pass\nelse:\n    pass");
        match &stmts[0] {
            Stmt::If { otherwise, .. } => {
                assert_eq!(otherwise.len(), 1);
                assert!(matches!(otherwise[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscript_call_and_list() {
        let stmts = parse_src("y = data[i + 1]\nz = len(data)\nw = [1, 2, 3]");
        assert!(matches!(
            &stmts[0],
            Stmt::Assign {
                value: Expr::Subscript { .. },
                ..
            }
        ));
        assert!(
            matches!(&stmts[1], Stmt::Assign { value: Expr::Call { name, .. }, .. } if name == "len")
        );
        assert!(
            matches!(&stmts[2], Stmt::Assign { value: Expr::List(items), .. } if items.len() == 3)
        );
    }

    #[test]
    fn subscript_assignment_target() {
        let stmts = parse_src("xs[0] = 5");
        assert!(matches!(
            &stmts[0],
            Stmt::Assign {
                target: Expr::Subscript { .. },
                ..
            }
        ));
    }

    #[test]
    fn bool_ops_and_not() {
        let stmts = parse_src("x = a and not b or c");
        match &stmts[0] {
            Stmt::Assign {
                value: Expr::Bin { op, .. },
                ..
            } => assert_eq!(op, "or"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_syntax_rejected() {
        assert!(parse(&tokenize("x = ").unwrap()).is_err());
        assert!(parse(&tokenize("def :").unwrap()).is_err());
        assert!(parse(&tokenize("1 + 2 = x").unwrap()).is_err());
    }
}
