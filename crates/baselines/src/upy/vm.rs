//! The upy-sim bytecode VM and its [`FunctionRuntime`] front-end.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use super::compiler::{compile, BinKind, Op, Program};
use super::lexer::tokenize;
use super::parser::parse;
use super::{HEAP_BYTES, UPY_ROM_BYTES};
use crate::traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};

/// Cold-start cycles per source byte (tokenize + parse on Cortex-M4).
pub const LOAD_CYCLES_PER_BYTE: u64 = 2_000;

/// Cold-start cycles per emitted bytecode op (compile pass).
pub const LOAD_CYCLES_PER_OP: u64 = 1_000;

/// Execution cycles per bytecode operation (dispatch, boxed objects,
/// refcounts — the interpreter weight behind MicroPython's ~600× native
/// slowdown in Table 2).
pub const RUN_CYCLES_PER_OP: u64 = 128;

/// Cycles charged per garbage collection of the heap arena.
pub const GC_CYCLES: u64 = 20_000;

/// Fixed per-invocation overhead.
pub const RUN_OVERHEAD_CYCLES: u64 = 3_000;

/// Execution step ceiling (runaway protection).
pub const MAX_STEPS: u64 = 50_000_000;

/// Runtime values.
#[derive(Debug, Clone)]
pub enum Value {
    /// Small integer (unboxed, like MicroPython's smallint).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// `None`.
    None,
    /// Immutable byte string.
    Bytes(Rc<Vec<u8>>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Bool(b) => *b,
            Value::None => false,
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
        }
    }

    fn as_int(&self) -> Result<i64, UpyError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(UpyError::Type(format!("expected int, got {other:?}"))),
        }
    }
}

/// Run-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpyError {
    /// Type mismatch.
    Type(String),
    /// Unknown global / function name.
    Name(String),
    /// Index out of range.
    Index(i64),
    /// Division or modulo by zero.
    ZeroDivision,
    /// Heap arena exhausted.
    MemoryError {
        /// Bytes requested.
        requested: usize,
    },
    /// Step budget exhausted.
    StepLimit,
    /// Wrong argument count.
    Arity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl std::fmt::Display for UpyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpyError::Type(m) => write!(f, "TypeError: {m}"),
            UpyError::Name(n) => write!(f, "NameError: {n}"),
            UpyError::Index(i) => write!(f, "IndexError: {i}"),
            UpyError::ZeroDivision => write!(f, "ZeroDivisionError"),
            UpyError::MemoryError { requested } => {
                write!(f, "MemoryError: {requested} bytes requested")
            }
            UpyError::StepLimit => write!(f, "step limit exceeded"),
            UpyError::Arity { expected, got } => {
                write!(f, "TypeError: expected {expected} args, got {got}")
            }
        }
    }
}

impl std::error::Error for UpyError {}

/// The VM executing a compiled [`Program`].
#[derive(Debug)]
pub struct Vm {
    program: Program,
    globals: HashMap<u16, Value>,
    heap_used: usize,
    gc_runs: u64,
    steps: u64,
    run_start: u64,
    printed: Vec<String>,
}

impl Vm {
    /// Creates a VM over a compiled program.
    pub fn new(program: Program) -> Self {
        Vm {
            program,
            globals: HashMap::new(),
            heap_used: 0,
            gc_runs: 0,
            steps: 0,
            run_start: 0,
            printed: Vec::new(),
        }
    }

    /// Sets a global by name (host data injection).
    pub fn set_global(&mut self, name: &str, value: Value) {
        let idx = self
            .program
            .names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u16)
            .unwrap_or_else(|| {
                self.program.names.push(name.to_owned());
                (self.program.names.len() - 1) as u16
            });
        self.globals.insert(idx, value);
    }

    /// Reads a global by name.
    pub fn global(&self, name: &str) -> Option<&Value> {
        let idx = self.program.names.iter().position(|n| n == name)? as u16;
        self.globals.get(&idx)
    }

    /// Output captured from `print`.
    pub fn printed(&self) -> &[String] {
        &self.printed
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Garbage collections triggered so far.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Charges a heap allocation against the arena, triggering a modeled
    /// collection when the arena fills.
    fn alloc(&mut self, bytes: usize) -> Result<(), UpyError> {
        if bytes > HEAP_BYTES {
            return Err(UpyError::MemoryError { requested: bytes });
        }
        if self.heap_used + bytes > HEAP_BYTES {
            // Model a mark-sweep pass reclaiming the arena.
            self.gc_runs += 1;
            self.heap_used = 0;
        }
        self.heap_used += bytes;
        Ok(())
    }

    /// Runs the module body.
    ///
    /// # Errors
    ///
    /// Any [`UpyError`].
    pub fn run_module(&mut self) -> Result<(), UpyError> {
        // The step budget is per top-level invocation.
        self.run_start = self.steps;
        self.run_code(0, Vec::new()).map(|_| ())
    }

    fn run_code(&mut self, code_idx: usize, args: Vec<Value>) -> Result<Value, UpyError> {
        let n_locals = self.program.codes[code_idx].n_locals;
        let n_params = self.program.codes[code_idx].n_params;
        if code_idx != 0 && args.len() != n_params {
            return Err(UpyError::Arity {
                expected: n_params,
                got: args.len(),
            });
        }
        let mut locals = vec![Value::None; n_locals.max(args.len())];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;

        loop {
            self.steps += 1;
            if self.steps - self.run_start > MAX_STEPS {
                return Err(UpyError::StepLimit);
            }
            let op = match self.program.codes[code_idx].ops.get(pc) {
                Some(op) => *op,
                None => return Ok(Value::None),
            };
            pc += 1;
            match op {
                Op::Const(v) => stack.push(Value::Int(v)),
                Op::Bool(b) => stack.push(Value::Bool(b)),
                Op::None => stack.push(Value::None),
                Op::LoadLocal(i) => stack.push(locals[i as usize].clone()),
                Op::StoreLocal(i) => {
                    let v = stack.pop().expect("compiler keeps stack balanced");
                    locals[i as usize] = v;
                }
                Op::LoadGlobal(i) => match self.globals.get(&i) {
                    Some(v) => stack.push(v.clone()),
                    None => {
                        let name = self.program.names[i as usize].clone();
                        return Err(UpyError::Name(name));
                    }
                },
                Op::StoreGlobal(i) => {
                    let v = stack.pop().expect("stack");
                    self.globals.insert(i, v);
                }
                Op::Bin(kind) => {
                    let rhs = stack.pop().expect("stack");
                    let lhs = stack.pop().expect("stack");
                    stack.push(bin_op(kind, &lhs, &rhs)?);
                }
                Op::Neg => {
                    let v = stack.pop().expect("stack").as_int()?;
                    stack.push(Value::Int(v.wrapping_neg()));
                }
                Op::Inv => {
                    let v = stack.pop().expect("stack").as_int()?;
                    stack.push(Value::Int(!v));
                }
                Op::Not => {
                    let v = stack.pop().expect("stack");
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Jump(t) => pc = t as usize,
                Op::PopJumpIfFalse(t) => {
                    let v = stack.pop().expect("stack");
                    if !v.truthy() {
                        pc = t as usize;
                    }
                }
                Op::JumpIfFalseOrPop(t) => {
                    let v = stack.last().expect("stack");
                    if !v.truthy() {
                        pc = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::JumpIfTrueOrPop(t) => {
                    let v = stack.last().expect("stack");
                    if v.truthy() {
                        pc = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::Call { name, argc } => {
                    let argc = argc as usize;
                    let args: Vec<Value> = stack.split_off(stack.len() - argc);
                    if let Some(code) = self.program.functions.get(&name).copied() {
                        let v = self.run_code(code, args)?;
                        stack.push(v);
                    } else {
                        let builtin = self.program.names[name as usize].clone();
                        stack.push(self.call_builtin(&builtin, args)?);
                    }
                }
                Op::Subscr => {
                    let idx = stack.pop().expect("stack").as_int()?;
                    let obj = stack.pop().expect("stack");
                    stack.push(subscript(&obj, idx)?);
                }
                Op::StoreSubscr => {
                    let value = stack.pop().expect("stack");
                    let idx = stack.pop().expect("stack").as_int()?;
                    let obj = stack.pop().expect("stack");
                    match obj {
                        Value::List(l) => {
                            let mut l = l.borrow_mut();
                            let i = normalize_index(idx, l.len())?;
                            l[i] = value;
                        }
                        other => {
                            return Err(UpyError::Type(format!("{other:?} not assignable")));
                        }
                    }
                }
                Op::BuildList(n) => {
                    let n = n as usize;
                    self.alloc(16 + 8 * n)?;
                    let items: Vec<Value> = stack.split_off(stack.len() - n);
                    stack.push(Value::List(Rc::new(RefCell::new(items))));
                }
                Op::Return => {
                    return Ok(stack.pop().unwrap_or(Value::None));
                }
                Op::Pop => {
                    stack.pop();
                }
            }
        }
    }

    fn call_builtin(&mut self, name: &str, args: Vec<Value>) -> Result<Value, UpyError> {
        match name {
            "len" => {
                if args.len() != 1 {
                    return Err(UpyError::Arity {
                        expected: 1,
                        got: args.len(),
                    });
                }
                match &args[0] {
                    Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
                    Value::List(l) => Ok(Value::Int(l.borrow().len() as i64)),
                    other => Err(UpyError::Type(format!("len() of {other:?}"))),
                }
            }
            "print" => {
                let line = args
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => i.to_string(),
                        Value::Bool(b) => {
                            if *b {
                                "True".into()
                            } else {
                                "False".into()
                            }
                        }
                        Value::None => "None".into(),
                        Value::Bytes(b) => format!("{b:?}"),
                        Value::List(_) => "[...]".into(),
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                self.alloc(line.len())?;
                self.printed.push(line);
                Ok(Value::None)
            }
            other => Err(UpyError::Name(other.to_owned())),
        }
    }
}

fn normalize_index(idx: i64, len: usize) -> Result<usize, UpyError> {
    let i = if idx < 0 { idx + len as i64 } else { idx };
    if i < 0 || i >= len as i64 {
        return Err(UpyError::Index(idx));
    }
    Ok(i as usize)
}

fn subscript(obj: &Value, idx: i64) -> Result<Value, UpyError> {
    match obj {
        Value::Bytes(b) => {
            let i = normalize_index(idx, b.len())?;
            Ok(Value::Int(b[i] as i64))
        }
        Value::List(l) => {
            let l = l.borrow();
            let i = normalize_index(idx, l.len())?;
            Ok(l[i].clone())
        }
        other => Err(UpyError::Type(format!("{other:?} not subscriptable"))),
    }
}

fn bin_op(kind: BinKind, lhs: &Value, rhs: &Value) -> Result<Value, UpyError> {
    let a = lhs.as_int()?;
    let b = rhs.as_int()?;
    Ok(match kind {
        BinKind::Add => Value::Int(a.wrapping_add(b)),
        BinKind::Sub => Value::Int(a.wrapping_sub(b)),
        BinKind::Mul => Value::Int(a.wrapping_mul(b)),
        BinKind::FloorDiv => {
            if b == 0 {
                return Err(UpyError::ZeroDivision);
            }
            Value::Int(a.div_euclid(b))
        }
        BinKind::Mod => {
            if b == 0 {
                return Err(UpyError::ZeroDivision);
            }
            Value::Int(a.rem_euclid(b))
        }
        BinKind::Shl => Value::Int(a.wrapping_shl(b as u32)),
        BinKind::Shr => Value::Int(a.wrapping_shr(b as u32)),
        BinKind::BitAnd => Value::Int(a & b),
        BinKind::BitOr => Value::Int(a | b),
        BinKind::BitXor => Value::Int(a ^ b),
        BinKind::Eq => Value::Bool(a == b),
        BinKind::Ne => Value::Bool(a != b),
        BinKind::Lt => Value::Bool(a < b),
        BinKind::Le => Value::Bool(a <= b),
        BinKind::Gt => Value::Bool(a > b),
        BinKind::Ge => Value::Bool(a >= b),
    })
}

/// The Python source of the fletcher32 benchmark applet.
pub const FLETCHER_PY: &str = "\
# fletcher32 checksum over a byte string (upy-sim applet)
def fletcher32(data):
    sum1 = 65535
    sum2 = 65535
    i = 0
    n = len(data)
    while i < n:
        w = data[i]
        if i + 1 < n:
            w = w + data[i + 1] * 256
        sum1 = sum1 + w
        sum1 = (sum1 & 65535) + (sum1 >> 16)
        sum2 = sum2 + sum1
        sum2 = (sum2 & 65535) + (sum2 >> 16)
        i = i + 2
    sum1 = (sum1 & 65535) + (sum1 >> 16)
    sum2 = (sum2 & 65535) + (sum2 >> 16)
    return (sum2 << 16) | sum1

result = fletcher32(data)
";

/// The MicroPython stand-in runtime.
#[derive(Debug, Default)]
pub struct UpyRuntime {
    vm: Option<Vm>,
}

impl UpyRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        UpyRuntime::default()
    }
}

impl FunctionRuntime for UpyRuntime {
    fn name(&self) -> &'static str {
        "MicroPython"
    }

    fn footprint(&self) -> Footprint {
        // Heap arena + interpreter state (stacks, globals table).
        Footprint {
            rom_bytes: UPY_ROM_BYTES,
            ram_bytes: HEAP_BYTES + 200,
        }
    }

    fn fletcher_applet(&self) -> Vec<u8> {
        FLETCHER_PY.as_bytes().to_vec()
    }

    fn load(&mut self, applet: &[u8]) -> Result<LoadCost, RuntimeError> {
        let source = std::str::from_utf8(applet)
            .map_err(|_| RuntimeError::new("upy-sim", "source not utf-8"))?;
        let toks = tokenize(source).map_err(|e| RuntimeError::new("upy-sim", e.to_string()))?;
        let stmts = parse(&toks).map_err(|e| RuntimeError::new("upy-sim", e.to_string()))?;
        let program = compile(&stmts).map_err(|e| RuntimeError::new("upy-sim", e.to_string()))?;
        let cycles = applet.len() as u64 * LOAD_CYCLES_PER_BYTE
            + program.op_count() as u64 * LOAD_CYCLES_PER_OP;
        self.vm = Some(Vm::new(program));
        Ok(LoadCost { cycles })
    }

    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError> {
        let vm = self
            .vm
            .as_mut()
            .ok_or_else(|| RuntimeError::new("upy-sim", "no program"))?;
        vm.set_global("data", Value::Bytes(Rc::new(input.to_vec())));
        let before = vm.steps();
        vm.run_module()
            .map_err(|e| RuntimeError::new("upy-sim", e.to_string()))?;
        let steps = vm.steps() - before;
        let result = match vm.global("result") {
            Some(Value::Int(i)) => *i,
            _ => 0,
        };
        let cycles = RUN_OVERHEAD_CYCLES + steps * RUN_CYCLES_PER_OP + vm.gc_runs() * GC_CYCLES;
        Ok(RunOutcome {
            result,
            steps,
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{benchmark_input, fletcher32};

    fn run_and_get(src: &str, global: &str) -> Value {
        let toks = tokenize(src).unwrap();
        let stmts = parse(&toks).unwrap();
        let mut vm = Vm::new(compile(&stmts).unwrap());
        vm.run_module().unwrap();
        vm.global(global).cloned().unwrap()
    }

    fn int_of(v: Value) -> i64 {
        match v {
            Value::Int(i) => i,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(int_of(run_and_get("x = 2 + 3 * 4", "x")), 14);
        assert_eq!(int_of(run_and_get("x = (2 + 3) * 4", "x")), 20);
        assert_eq!(int_of(run_and_get("x = 17 // 5", "x")), 3);
        assert_eq!(int_of(run_and_get("x = 17 % 5", "x")), 2);
        assert_eq!(int_of(run_and_get("x = 1 << 10", "x")), 1024);
        assert_eq!(int_of(run_and_get("x = -7", "x")), -7);
        assert_eq!(int_of(run_and_get("x = ~0", "x")), -1);
    }

    #[test]
    fn while_loop_accumulates() {
        let src = "\
total = 0
i = 1
while i <= 10:
    total = total + i
    i = i + 1";
        assert_eq!(int_of(run_and_get(src, "total")), 55);
    }

    #[test]
    fn break_and_continue() {
        let src = "\
total = 0
i = 0
while i < 100:
    i = i + 1
    if i % 2 == 0:
        continue
    if i > 9:
        break
    total = total + i";
        assert_eq!(int_of(run_and_get(src, "total")), 1 + 3 + 5 + 7 + 9);
    }

    #[test]
    fn functions_with_recursion() {
        let src = "\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

x = fib(10)";
        assert_eq!(int_of(run_and_get(src, "x")), 55);
    }

    #[test]
    fn locals_do_not_leak_to_globals() {
        let src = "\
def f():
    t = 99
    return t

x = f()";
        let toks = tokenize(src).unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        vm.run_module().unwrap();
        assert!(vm.global("t").is_none());
        assert_eq!(int_of(vm.global("x").cloned().unwrap()), 99);
    }

    #[test]
    fn short_circuit_semantics() {
        // Calling an undefined function would raise; `and` must skip it.
        let src = "x = 0 and undefined_fn()";
        assert_eq!(int_of(run_and_get(src, "x")), 0);
        let src = "x = 1 or undefined_fn()";
        assert_eq!(int_of(run_and_get(src, "x")), 1);
    }

    #[test]
    fn lists_and_subscripts() {
        let src = "\
xs = [10, 20, 30]
xs[1] = 21
y = xs[1] + xs[-1]
n = len(xs)";
        assert_eq!(int_of(run_and_get(src, "y")), 51);
        assert_eq!(int_of(run_and_get(src, "n")), 3);
    }

    #[test]
    fn index_out_of_range_raises() {
        let toks = tokenize("xs = [1]\ny = xs[5]").unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        assert_eq!(vm.run_module(), Err(UpyError::Index(5)));
    }

    #[test]
    fn zero_division_raises() {
        let toks = tokenize("x = 1 // 0").unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        assert_eq!(vm.run_module(), Err(UpyError::ZeroDivision));
    }

    #[test]
    fn undefined_name_raises() {
        let toks = tokenize("x = nope").unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        assert_eq!(vm.run_module(), Err(UpyError::Name("nope".into())));
    }

    #[test]
    fn infinite_loop_bounded() {
        let toks = tokenize("while True:\n    pass").unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        assert_eq!(vm.run_module(), Err(UpyError::StepLimit));
    }

    #[test]
    fn heap_pressure_triggers_gc() {
        let src = "\
i = 0
while i < 2000:
    xs = [1, 2, 3, 4, 5, 6, 7, 8]
    i = i + 1";
        let toks = tokenize(src).unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        vm.run_module().unwrap();
        assert!(vm.gc_runs() > 0);
    }

    #[test]
    fn print_captured() {
        let toks = tokenize("print(1, True, None)").unwrap();
        let mut vm = Vm::new(compile(&parse(&toks).unwrap()).unwrap());
        vm.run_module().unwrap();
        assert_eq!(vm.printed(), ["1 True None"]);
    }

    #[test]
    fn fletcher_applet_matches_reference() {
        let mut rt = UpyRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let input = benchmark_input();
        let out = rt.run(&input).unwrap();
        assert_eq!(out.result as u32 as i64, out.result & 0xffff_ffff);
        assert_eq!(out.result as u32, fletcher32(&input));
    }

    #[test]
    fn fletcher_timing_matches_paper_scale() {
        let mut rt = UpyRuntime::new();
        let load = rt.load(&rt.fletcher_applet()).unwrap();
        let out = rt.run(&benchmark_input()).unwrap();
        let load_us = load.cycles as f64 / 64.0;
        let run_us = out.cycles as f64 / 64.0;
        // Paper Table 2: cold start 21 907 µs, run 16 325 µs.
        assert!((10_000.0..40_000.0).contains(&load_us), "load {load_us} µs");
        assert!((8_000.0..33_000.0).contains(&run_us), "run {run_us} µs");
    }
}
