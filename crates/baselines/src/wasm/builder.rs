//! A WebAssembly binary-module builder: how this repository authors its
//! `.wasm` applets (the paper compiles C with LLVM's wasm backend; we
//! emit the binary directly, which doubles as test tooling for the
//! decoder).

use super::opcode as op;

fn uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let mut b = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        out.push(b);
        if v == 0 {
            break;
        }
    }
}

fn sleb(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        let sign = b & 0x40 != 0;
        if (v == 0 && !sign) || (v == -1 && sign) {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Builds one function body.
#[derive(Debug, Default)]
pub struct FuncBuilder {
    bytes: Vec<u8>,
}

impl FuncBuilder {
    /// Emits `i32.const`.
    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.bytes.push(op::I32_CONST);
        sleb(&mut self.bytes, v as i64);
        self
    }

    /// Emits `local.get`.
    pub fn local_get(&mut self, idx: u32) -> &mut Self {
        self.bytes.push(op::LOCAL_GET);
        uleb(&mut self.bytes, idx as u64);
        self
    }

    /// Emits `local.set`.
    pub fn local_set(&mut self, idx: u32) -> &mut Self {
        self.bytes.push(op::LOCAL_SET);
        uleb(&mut self.bytes, idx as u64);
        self
    }

    /// Emits `local.tee`.
    pub fn local_tee(&mut self, idx: u32) -> &mut Self {
        self.bytes.push(op::LOCAL_TEE);
        uleb(&mut self.bytes, idx as u64);
        self
    }

    /// Emits `block` (arity 0 or 1).
    pub fn block(&mut self, arity: u8) -> &mut Self {
        self.bytes.push(op::BLOCK);
        self.bytes
            .push(if arity == 0 { op::BT_EMPTY } else { op::VT_I32 });
        self
    }

    /// Emits `loop`.
    pub fn loop_(&mut self) -> &mut Self {
        self.bytes.push(op::LOOP);
        self.bytes.push(op::BT_EMPTY);
        self
    }

    /// Emits `if` (arity 0 or 1).
    pub fn if_(&mut self, arity: u8) -> &mut Self {
        self.bytes.push(op::IF);
        self.bytes
            .push(if arity == 0 { op::BT_EMPTY } else { op::VT_I32 });
        self
    }

    /// Emits `else`.
    pub fn else_(&mut self) -> &mut Self {
        self.bytes.push(op::ELSE);
        self
    }

    /// Emits `end`.
    pub fn end(&mut self) -> &mut Self {
        self.bytes.push(op::END);
        self
    }

    /// Emits `unreachable`.
    pub fn unreachable(&mut self) -> &mut Self {
        self.bytes.push(op::UNREACHABLE);
        self
    }

    /// Emits `br`.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.bytes.push(op::BR);
        uleb(&mut self.bytes, depth as u64);
        self
    }

    /// Emits `br_if`.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.bytes.push(op::BR_IF);
        uleb(&mut self.bytes, depth as u64);
        self
    }

    /// Emits `return`.
    pub fn ret(&mut self) -> &mut Self {
        self.bytes.push(op::RETURN);
        self
    }

    /// Emits `call`.
    pub fn call(&mut self, func: u32) -> &mut Self {
        self.bytes.push(op::CALL);
        uleb(&mut self.bytes, func as u64);
        self
    }

    /// Emits `drop`.
    pub fn drop_(&mut self) -> &mut Self {
        self.bytes.push(op::DROP);
        self
    }

    /// Emits `select`.
    pub fn select(&mut self) -> &mut Self {
        self.bytes.push(op::SELECT);
        self
    }

    /// Emits an `i32` load of the given width (1, 2 or 4 bytes).
    pub fn load(&mut self, width: u8, offset: u32) -> &mut Self {
        self.bytes.push(match width {
            1 => op::I32_LOAD8_U,
            2 => op::I32_LOAD16_U,
            _ => op::I32_LOAD,
        });
        uleb(&mut self.bytes, 0); // alignment hint
        uleb(&mut self.bytes, offset as u64);
        self
    }

    /// Emits an `i32` store of the given width.
    pub fn store(&mut self, width: u8, offset: u32) -> &mut Self {
        self.bytes.push(match width {
            1 => op::I32_STORE8,
            2 => op::I32_STORE16,
            _ => op::I32_STORE,
        });
        uleb(&mut self.bytes, 0);
        uleb(&mut self.bytes, offset as u64);
        self
    }

    /// Emits `memory.size`.
    pub fn memory_size(&mut self) -> &mut Self {
        self.bytes.push(op::MEMORY_SIZE);
        self.bytes.push(0);
        self
    }

    /// Emits a binary arithmetic opcode (e.g. [`op::I32_ADD`]).
    pub fn bin(&mut self, opcode: u8) -> &mut Self {
        self.bytes.push(opcode);
        self
    }

    /// Emits a comparison opcode (e.g. [`op::I32_LT_U`]).
    pub fn cmp(&mut self, opcode: u8) -> &mut Self {
        self.bytes.push(opcode);
        self
    }

    /// Emits `i32.eqz`.
    pub fn eqz(&mut self) -> &mut Self {
        self.bytes.push(op::I32_EQZ);
        self
    }
}

struct FuncDecl {
    name: Option<String>,
    n_params: u32,
    n_locals: u32,
    returns: bool,
    body: Vec<u8>,
}

/// Builds a complete binary module.
///
/// # Examples
///
/// ```
/// use fc_baselines::wasm::ModuleBuilder;
/// let bytes = ModuleBuilder::new()
///     .memory(1)
///     .function("f", 0, 0, true, |f| {
///         f.i32_const(7);
///         f.end();
///     })
///     .build();
/// assert_eq!(&bytes[..4], b"\0asm");
/// ```
#[derive(Default)]
pub struct ModuleBuilder {
    functions: Vec<FuncDecl>,
    memory_pages: Option<u32>,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> Self {
        ModuleBuilder::default()
    }

    /// Declares a linear memory with `pages` initial 64 KiB pages.
    pub fn memory(mut self, pages: u32) -> Self {
        self.memory_pages = Some(pages);
        self
    }

    /// Adds an exported function (pass an empty name to keep it
    /// internal).
    pub fn function<F>(
        mut self,
        name: &str,
        n_params: u32,
        n_locals: u32,
        returns: bool,
        build: F,
    ) -> Self
    where
        F: FnOnce(&mut FuncBuilder),
    {
        let mut fb = FuncBuilder::default();
        build(&mut fb);
        self.functions.push(FuncDecl {
            name: if name.is_empty() {
                None
            } else {
                Some(name.to_owned())
            },
            n_params,
            n_locals,
            returns,
            body: fb.bytes,
        });
        self
    }

    /// Serialises the module.
    pub fn build(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"\0asm");
        out.extend_from_slice(&[1, 0, 0, 0]);

        let section = |out: &mut Vec<u8>, id: u8, content: Vec<u8>| {
            out.push(id);
            uleb(out, content.len() as u64);
            out.extend_from_slice(&content);
        };

        // Type section: one type per function (no dedup; fine for applets).
        let mut types = Vec::new();
        uleb(&mut types, self.functions.len() as u64);
        for f in &self.functions {
            types.push(op::FUNC_TYPE);
            uleb(&mut types, f.n_params as u64);
            types.extend(std::iter::repeat_n(op::VT_I32, f.n_params as usize));
            uleb(&mut types, f.returns as u64);
            if f.returns {
                types.push(op::VT_I32);
            }
        }
        section(&mut out, 1, types);

        let mut funcs = Vec::new();
        uleb(&mut funcs, self.functions.len() as u64);
        for (i, _) in self.functions.iter().enumerate() {
            uleb(&mut funcs, i as u64);
        }
        section(&mut out, 3, funcs);

        if let Some(pages) = self.memory_pages {
            let mut mem = Vec::new();
            uleb(&mut mem, 1);
            mem.push(0); // min only
            uleb(&mut mem, pages as u64);
            section(&mut out, 5, mem);
        }

        let exported: Vec<_> = self
            .functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.name.as_ref().map(|n| (i, n.clone())))
            .collect();
        if !exported.is_empty() {
            let mut exp = Vec::new();
            uleb(&mut exp, exported.len() as u64);
            for (i, name) in exported {
                uleb(&mut exp, name.len() as u64);
                exp.extend_from_slice(name.as_bytes());
                exp.push(0); // func export
                uleb(&mut exp, i as u64);
            }
            section(&mut out, 7, exp);
        }

        let mut code = Vec::new();
        uleb(&mut code, self.functions.len() as u64);
        for f in &self.functions {
            let mut body = Vec::new();
            if f.n_locals > 0 {
                uleb(&mut body, 1);
                uleb(&mut body, f.n_locals as u64);
                body.push(op::VT_I32);
            } else {
                uleb(&mut body, 0);
            }
            body.extend_from_slice(&f.body);
            uleb(&mut code, body.len() as u64);
            code.extend_from_slice(&body);
        }
        section(&mut out, 10, code);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leb_encodings() {
        let mut v = Vec::new();
        uleb(&mut v, 624485);
        assert_eq!(v, vec![0xe5, 0x8e, 0x26]);
        let mut v = Vec::new();
        sleb(&mut v, -123456);
        assert_eq!(v, vec![0xc0, 0xbb, 0x78]);
        let mut v = Vec::new();
        sleb(&mut v, 64);
        assert_eq!(v, vec![0xc0, 0x00]);
    }

    #[test]
    fn module_has_magic_and_sections() {
        let bytes = ModuleBuilder::new()
            .memory(1)
            .function("main", 0, 0, false, |f| {
                f.end();
            })
            .build();
        assert_eq!(&bytes[..8], b"\0asm\x01\0\0\0");
        // Sections 1, 3, 5, 7, 10 appear in order.
        let ids: Vec<u8> = {
            let mut ids = Vec::new();
            let mut i = 8;
            while i < bytes.len() {
                ids.push(bytes[i]);
                let mut size = 0u64;
                let mut shift = 0;
                i += 1;
                loop {
                    let b = bytes[i];
                    i += 1;
                    size |= ((b & 0x7f) as u64) << shift;
                    shift += 7;
                    if b & 0x80 == 0 {
                        break;
                    }
                }
                i += size as usize;
            }
            ids
        };
        assert_eq!(ids, vec![1, 3, 5, 7, 10]);
    }
}
