//! The wasm-sim stack interpreter and its [`FunctionRuntime`] front-end.

use super::module::{decode, Function, Instr, Module};
use super::opcode as op;
use super::PAGE_SIZE;
use crate::traits::{Footprint, FunctionRuntime, LoadCost, RunOutcome, RuntimeError};

/// Engine flash footprint on Cortex-M4 per the DESIGN.md flash model —
/// calibrated to Table 1's WASM3 row (64 KiB): decoder, validator,
/// threaded-code transcoder and ~190 opcode handlers.
pub const WASM_ROM_BYTES: usize = 64 * 1024;

/// Operand-stack reservation per instance.
pub const VALUE_STACK_BYTES: usize = 16 * 1024;

/// Call-frame reservation per instance.
pub const FRAME_BYTES: usize = 2 * 1024;

/// Module-representation overhead per instance.
pub const MODULE_REPR_BYTES: usize = 3 * 1024;

/// Cold-start cycle cost per module byte (LEB decode, section walk).
pub const LOAD_CYCLES_PER_BYTE: u64 = 5_000;

/// Cold-start cycle cost per decoded instruction (WASM3-style
/// transcoding to threaded code dominates loading).
pub const LOAD_CYCLES_PER_INSTR: u64 = 5_000;

/// Execution cycle cost per interpreted operation on Cortex-M4
/// (threaded-code dispatch is cheap and operands are 32-bit — the reason
/// WASM3 runs ~2× faster than rBPF in Table 2).
pub const RUN_CYCLES_PER_OP: u64 = 11;

/// Fixed per-invocation overhead (argument marshalling, frame set-up).
pub const RUN_OVERHEAD_CYCLES: u64 = 2_000;

/// Execution step ceiling (runaway protection).
pub const MAX_STEPS: u64 = 50_000_000;

const MAX_CALL_DEPTH: usize = 64;

/// Run-time traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` executed.
    Unreachable,
    /// Out-of-bounds memory access.
    MemoryOutOfBounds {
        /// Effective address.
        addr: u64,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// Operand stack underflow (validation subset is dynamic).
    StackUnderflow,
    /// Bad local index.
    BadLocal(u32),
    /// Bad function index.
    BadFunction(u32),
    /// Call stack exhausted.
    CallDepthExceeded,
    /// Step budget exhausted.
    StepLimit,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds { addr } => write!(f, "memory access at {addr} out of bounds"),
            Trap::DivisionByZero => write!(f, "integer division by zero"),
            Trap::StackUnderflow => write!(f, "operand stack underflow"),
            Trap::BadLocal(i) => write!(f, "local index {i} out of range"),
            Trap::BadFunction(i) => write!(f, "function index {i} out of range"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// An instantiated module: code plus linear memory.
#[derive(Debug)]
pub struct Instance {
    module: Module,
    memory: Vec<u8>,
    steps: u64,
    call_start: u64,
}

struct Ctrl {
    /// Jump target on `br`: for loops the instruction after the opener;
    /// for blocks/ifs the instruction after the `End`.
    br_target: usize,
    /// Whether `br` re-enters (loop) or exits (block/if).
    is_loop: bool,
    /// Value-stack height at entry.
    height: usize,
    /// Result values carried over an exiting branch.
    arity: u8,
}

impl Instance {
    /// Instantiates a decoded module.
    pub fn new(module: Module) -> Self {
        let memory = vec![0u8; module.memory_pages as usize * PAGE_SIZE];
        Instance {
            module,
            memory,
            steps: 0,
            call_start: 0,
        }
    }

    /// Read access to linear memory.
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    /// Write access to linear memory (host data injection).
    pub fn memory_mut(&mut self) -> &mut [u8] {
        &mut self.memory
    }

    /// Steps executed so far (cumulative across calls).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Finds an exported function index by name.
    pub fn export(&self, name: &str) -> Option<u32> {
        self.module
            .exports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| *i)
    }

    /// Calls a function by index.
    ///
    /// # Errors
    ///
    /// Any [`Trap`].
    pub fn call(&mut self, func: u32, args: &[u32]) -> Result<Option<u32>, Trap> {
        // The step budget is per top-level invocation.
        self.call_start = self.steps;
        self.call_depth(func, args, 0)
    }

    fn call_depth(&mut self, func: u32, args: &[u32], depth: usize) -> Result<Option<u32>, Trap> {
        if depth > MAX_CALL_DEPTH {
            return Err(Trap::CallDepthExceeded);
        }
        let f: &Function = self
            .module
            .functions
            .get(func as usize)
            .ok_or(Trap::BadFunction(func))?;
        let n_params = f.n_params as usize;
        let n_locals = f.n_locals as usize;
        let returns = f.returns;
        let body: *const [Instr] = f.body.as_slice();
        // SAFETY-free alternative: clone the body reference by indexing
        // through self each step. To keep borrowck happy without unsafe,
        // we work on indices into self.module.functions[func].
        let _ = body;

        let mut locals = vec![0u32; n_params + n_locals];
        for (i, a) in args.iter().enumerate().take(n_params) {
            locals[i] = *a;
        }

        let mut stack: Vec<u32> = Vec::with_capacity(32);
        let mut ctrl: Vec<Ctrl> = Vec::new();
        let mut pc = 0usize;
        let fidx = func as usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(Trap::StackUnderflow)?
            };
        }

        loop {
            self.steps += 1;
            if self.steps - self.call_start > MAX_STEPS {
                return Err(Trap::StepLimit);
            }
            let instr = match self.module.functions[fidx].body.get(pc) {
                Some(i) => i.clone(),
                None => {
                    // Fell off the end: implicit return.
                    return Ok(if returns { stack.pop() } else { None });
                }
            };
            pc += 1;
            match instr {
                Instr::Unreachable => return Err(Trap::Unreachable),
                Instr::Nop => {}
                Instr::Block { end, arity } => {
                    ctrl.push(Ctrl {
                        br_target: end + 1,
                        is_loop: false,
                        height: stack.len(),
                        arity,
                    });
                }
                Instr::Loop => {
                    ctrl.push(Ctrl {
                        br_target: pc,
                        is_loop: true,
                        height: stack.len(),
                        arity: 0,
                    });
                }
                Instr::If { else_, end, arity } => {
                    let cond = pop!();
                    ctrl.push(Ctrl {
                        br_target: end + 1,
                        is_loop: false,
                        height: stack.len(),
                        arity,
                    });
                    // With no else arm, `else_ == end` and the End there
                    // pops the frame.
                    let _ = end;
                    if cond == 0 {
                        pc = else_;
                    }
                }
                Instr::Else { end } => {
                    // Reached from the true arm: skip to matching End.
                    pc = end;
                }
                Instr::End => {
                    ctrl.pop();
                }
                Instr::Br(depth_rel) => {
                    branch(&mut stack, &mut ctrl, &mut pc, depth_rel)?;
                }
                Instr::BrIf(depth_rel) => {
                    let cond = pop!();
                    if cond != 0 {
                        branch(&mut stack, &mut ctrl, &mut pc, depth_rel)?;
                    }
                }
                Instr::Return => {
                    return Ok(if returns { stack.pop() } else { None });
                }
                Instr::Call(callee) => {
                    let callee_fn = self
                        .module
                        .functions
                        .get(callee as usize)
                        .ok_or(Trap::BadFunction(callee))?;
                    let np = callee_fn.n_params as usize;
                    if stack.len() < np {
                        return Err(Trap::StackUnderflow);
                    }
                    let args: Vec<u32> = stack.split_off(stack.len() - np);
                    if let Some(v) = self.call_depth(callee, &args, depth + 1)? {
                        stack.push(v);
                    }
                }
                Instr::Drop => {
                    pop!();
                }
                Instr::Select => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    stack.push(if c != 0 { a } else { b });
                }
                Instr::LocalGet(i) => {
                    let v = *locals.get(i as usize).ok_or(Trap::BadLocal(i))?;
                    stack.push(v);
                }
                Instr::LocalSet(i) => {
                    let v = pop!();
                    *locals.get_mut(i as usize).ok_or(Trap::BadLocal(i))? = v;
                }
                Instr::LocalTee(i) => {
                    let v = *stack.last().ok_or(Trap::StackUnderflow)?;
                    *locals.get_mut(i as usize).ok_or(Trap::BadLocal(i))? = v;
                }
                Instr::Load { width, offset } => {
                    let base = pop!();
                    let addr = base as u64 + offset as u64;
                    let end = addr + width as u64;
                    if end > self.memory.len() as u64 {
                        return Err(Trap::MemoryOutOfBounds { addr });
                    }
                    let mut v = 0u32;
                    for k in 0..width as usize {
                        v |= (self.memory[addr as usize + k] as u32) << (8 * k);
                    }
                    stack.push(v);
                }
                Instr::Store { width, offset } => {
                    let value = pop!();
                    let base = pop!();
                    let addr = base as u64 + offset as u64;
                    let end = addr + width as u64;
                    if end > self.memory.len() as u64 {
                        return Err(Trap::MemoryOutOfBounds { addr });
                    }
                    for k in 0..width as usize {
                        self.memory[addr as usize + k] = (value >> (8 * k)) as u8;
                    }
                }
                Instr::MemorySize => {
                    stack.push((self.memory.len() / PAGE_SIZE) as u32);
                }
                Instr::I32Const(v) => stack.push(v as u32),
                Instr::I32Eqz => {
                    let v = pop!();
                    stack.push((v == 0) as u32);
                }
                Instr::Cmp(c) => {
                    let b = pop!();
                    let a = pop!();
                    let r = match c {
                        op::I32_EQ => a == b,
                        op::I32_NE => a != b,
                        op::I32_LT_S => (a as i32) < (b as i32),
                        op::I32_LT_U => a < b,
                        op::I32_GT_S => (a as i32) > (b as i32),
                        op::I32_GT_U => a > b,
                        op::I32_LE_S => (a as i32) <= (b as i32),
                        op::I32_LE_U => a <= b,
                        op::I32_GE_S => (a as i32) >= (b as i32),
                        _ => a >= b, // ge_u
                    };
                    stack.push(r as u32);
                }
                Instr::Bin(o) => {
                    let b = pop!();
                    let a = pop!();
                    let r = match o {
                        op::I32_ADD => a.wrapping_add(b),
                        op::I32_SUB => a.wrapping_sub(b),
                        op::I32_MUL => a.wrapping_mul(b),
                        op::I32_DIV_S => {
                            if b == 0 {
                                return Err(Trap::DivisionByZero);
                            }
                            ((a as i32).wrapping_div(b as i32)) as u32
                        }
                        op::I32_DIV_U => {
                            if b == 0 {
                                return Err(Trap::DivisionByZero);
                            }
                            a / b
                        }
                        op::I32_REM_S => {
                            if b == 0 {
                                return Err(Trap::DivisionByZero);
                            }
                            ((a as i32).wrapping_rem(b as i32)) as u32
                        }
                        op::I32_REM_U => {
                            if b == 0 {
                                return Err(Trap::DivisionByZero);
                            }
                            a % b
                        }
                        op::I32_AND => a & b,
                        op::I32_OR => a | b,
                        op::I32_XOR => a ^ b,
                        op::I32_SHL => a.wrapping_shl(b),
                        op::I32_SHR_S => ((a as i32).wrapping_shr(b)) as u32,
                        _ => a.wrapping_shr(b), // shr_u
                    };
                    stack.push(r);
                }
            }
        }
    }
}

fn branch(
    stack: &mut Vec<u32>,
    ctrl: &mut Vec<Ctrl>,
    pc: &mut usize,
    depth: u32,
) -> Result<(), Trap> {
    let idx = ctrl
        .len()
        .checked_sub(1 + depth as usize)
        .ok_or(Trap::StackUnderflow)?;
    let target = &ctrl[idx];
    let carried = if target.is_loop {
        0
    } else {
        target.arity as usize
    };
    if stack.len() < target.height + carried {
        return Err(Trap::StackUnderflow);
    }
    let keep: Vec<u32> = stack.split_off(stack.len() - carried);
    stack.truncate(target.height);
    stack.extend(keep);
    *pc = target.br_target;
    if target.is_loop {
        // Keep the loop frame; drop everything above it.
        ctrl.truncate(idx + 1);
    } else {
        ctrl.truncate(idx);
    }
    Ok(())
}

/// Builds the fletcher32 benchmark applet in WebAssembly binary form.
///
/// Signature: `fletcher32(ptr: i32, len: i32) -> i32`; the host writes
/// the input into linear memory at `ptr` first.
pub fn fletcher_wasm_module() -> Vec<u8> {
    use super::builder::ModuleBuilder;
    const SUM1: u32 = 2;
    const SUM2: u32 = 3;
    const I: u32 = 4;
    ModuleBuilder::new()
        .memory(1)
        .function("fletcher32", 2, 4, true, |f| {
            let fold = |f: &mut super::builder::FuncBuilder, local: u32| {
                f.local_get(local)
                    .i32_const(0xffff)
                    .bin(op::I32_AND)
                    .local_get(local)
                    .i32_const(16)
                    .bin(op::I32_SHR_U)
                    .bin(op::I32_ADD)
                    .local_set(local);
            };
            f.i32_const(0xffff).local_set(SUM1);
            f.i32_const(0xffff).local_set(SUM2);
            f.i32_const(0).local_set(I);
            f.block(0);
            f.loop_();
            // if i >= len: break
            f.local_get(I).local_get(1).cmp(op::I32_GE_U).br_if(1);
            // w = load16(ptr + i); sum1 += w; fold
            f.local_get(SUM1)
                .local_get(0)
                .local_get(I)
                .bin(op::I32_ADD)
                .load(2, 0)
                .bin(op::I32_ADD)
                .local_set(SUM1);
            fold(f, SUM1);
            // sum2 += sum1; fold
            f.local_get(SUM2)
                .local_get(SUM1)
                .bin(op::I32_ADD)
                .local_set(SUM2);
            fold(f, SUM2);
            // i += 2; continue
            f.local_get(I).i32_const(2).bin(op::I32_ADD).local_set(I);
            f.br(0);
            f.end(); // loop
            f.end(); // block
            fold(f, SUM1);
            fold(f, SUM2);
            f.local_get(SUM2)
                .i32_const(16)
                .bin(op::I32_SHL)
                .local_get(SUM1)
                .bin(op::I32_OR);
            f.end();
        })
        .build()
}

/// The WASM3 stand-in runtime.
#[derive(Debug, Default)]
pub struct WasmRuntime {
    instance: Option<Instance>,
}

impl WasmRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        WasmRuntime::default()
    }
}

impl FunctionRuntime for WasmRuntime {
    fn name(&self) -> &'static str {
        "WASM3"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            rom_bytes: WASM_ROM_BYTES,
            ram_bytes: PAGE_SIZE + VALUE_STACK_BYTES + FRAME_BYTES + MODULE_REPR_BYTES,
        }
    }

    fn fletcher_applet(&self) -> Vec<u8> {
        fletcher_wasm_module()
    }

    fn load(&mut self, applet: &[u8]) -> Result<LoadCost, RuntimeError> {
        let module = decode(applet).map_err(|e| RuntimeError::new("wasm-sim", e.to_string()))?;
        let cycles = module.bytes_decoded as u64 * LOAD_CYCLES_PER_BYTE
            + module.instrs_decoded as u64 * LOAD_CYCLES_PER_INSTR;
        self.instance = Some(Instance::new(module));
        Ok(LoadCost { cycles })
    }

    fn run(&mut self, input: &[u8]) -> Result<RunOutcome, RuntimeError> {
        let inst = self
            .instance
            .as_mut()
            .ok_or_else(|| RuntimeError::new("wasm-sim", "no module"))?;
        if inst.memory().len() < input.len() {
            return Err(RuntimeError::new("wasm-sim", "input larger than memory"));
        }
        inst.memory_mut()[..input.len()].copy_from_slice(input);
        let func = inst
            .export("fletcher32")
            .or_else(|| inst.module.exports.first().map(|(_, i)| *i))
            .ok_or_else(|| RuntimeError::new("wasm-sim", "no exported function"))?;
        let before = inst.steps();
        let result = inst
            .call(func, &[0, input.len() as u32])
            .map_err(|t| RuntimeError::new("wasm-sim", t.to_string()))?
            .unwrap_or(0);
        let steps = inst.steps() - before;
        Ok(RunOutcome {
            result: result as i64,
            steps,
            cycles: RUN_OVERHEAD_CYCLES + steps * RUN_CYCLES_PER_OP,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{benchmark_input, fletcher32};
    use crate::wasm::builder::ModuleBuilder;

    fn run_func<F>(
        n_params: u32,
        n_locals: u32,
        args: &[u32],
        build: F,
    ) -> Result<Option<u32>, Trap>
    where
        F: FnOnce(&mut crate::wasm::builder::FuncBuilder),
    {
        let bytes = ModuleBuilder::new()
            .memory(1)
            .function("f", n_params, n_locals, true, build)
            .build();
        let mut inst = Instance::new(decode(&bytes).unwrap());
        inst.call(0, args)
    }

    #[test]
    fn arithmetic() {
        let r = run_func(0, 0, &[], |f| {
            f.i32_const(6).i32_const(7).bin(op::I32_MUL).end();
        });
        assert_eq!(r.unwrap(), Some(42));
    }

    #[test]
    fn locals_and_params() {
        let r = run_func(2, 1, &[30, 12], |f| {
            f.local_get(0)
                .local_get(1)
                .bin(op::I32_ADD)
                .local_tee(2)
                .drop_();
            f.local_get(2).end();
        });
        assert_eq!(r.unwrap(), Some(42));
    }

    #[test]
    fn if_else_both_arms() {
        for (arg, expect) in [(1u32, 10u32), (0, 20)] {
            let r = run_func(1, 0, &[arg], |f| {
                f.local_get(0).if_(1);
                f.i32_const(10);
                f.else_();
                f.i32_const(20);
                f.end();
                f.end();
            });
            assert_eq!(r.unwrap(), Some(expect), "arg {arg}");
        }
    }

    #[test]
    fn if_without_else() {
        let r = run_func(1, 1, &[0], |f| {
            f.i32_const(5).local_set(1);
            f.local_get(0).if_(0);
            f.i32_const(9).local_set(1);
            f.end();
            f.local_get(1).end();
        });
        assert_eq!(r.unwrap(), Some(5));
    }

    #[test]
    fn loop_sums_to_ten() {
        // local1 = counter, local2 = acc
        let r = run_func(0, 2, &[], |f| {
            f.i32_const(4).local_set(0);
            f.block(0);
            f.loop_();
            f.local_get(0).eqz().br_if(1);
            f.local_get(1).local_get(0).bin(op::I32_ADD).local_set(1);
            f.local_get(0).i32_const(1).bin(op::I32_SUB).local_set(0);
            f.br(0);
            f.end();
            f.end();
            f.local_get(1).end();
        });
        assert_eq!(r.unwrap(), Some(10));
    }

    #[test]
    fn nested_blocks_branch_out() {
        let r = run_func(0, 0, &[], |f| {
            f.block(1);
            f.block(0);
            f.br(1); // jumps out of both? no: depth 1 = outer block
            f.end();
            f.i32_const(1); // skipped? br(1) from inner exits outer... with arity 1 needs a value
            f.end();
            f.end();
        });
        // br(1) with outer arity 1 but empty stack → underflow trap.
        assert_eq!(r.unwrap_err(), Trap::StackUnderflow);
    }

    #[test]
    fn memory_load_store() {
        let r = run_func(0, 0, &[], |f| {
            f.i32_const(100).i32_const(0x11223344).store(4, 0);
            f.i32_const(100).load(2, 0).end();
        });
        assert_eq!(r.unwrap(), Some(0x3344));
    }

    #[test]
    fn memory_oob_traps() {
        let r = run_func(0, 0, &[], |f| {
            f.i32_const((PAGE_SIZE - 2) as i32).load(4, 0).end();
        });
        assert!(matches!(r.unwrap_err(), Trap::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let r = run_func(0, 0, &[], |f| {
            f.i32_const(1).i32_const(0).bin(op::I32_DIV_U).end();
        });
        assert_eq!(r.unwrap_err(), Trap::DivisionByZero);
    }

    #[test]
    fn unreachable_traps() {
        let bytes = ModuleBuilder::new()
            .function("f", 0, 0, false, |f| {
                f.unreachable();
                f.end();
            })
            .build();
        let mut inst = Instance::new(decode(&bytes).unwrap());
        assert_eq!(inst.call(0, &[]).unwrap_err(), Trap::Unreachable);
    }

    #[test]
    fn direct_call_between_functions() {
        let bytes = ModuleBuilder::new()
            .function("double", 1, 0, true, |f| {
                f.local_get(0).i32_const(2).bin(op::I32_MUL).end();
            })
            .function("main", 0, 0, true, |f| {
                f.i32_const(21).call(0).end();
            })
            .build();
        let mut inst = Instance::new(decode(&bytes).unwrap());
        let main = inst.export("main").unwrap();
        assert_eq!(inst.call(main, &[]).unwrap(), Some(42));
    }

    #[test]
    fn infinite_recursion_bounded() {
        let bytes = ModuleBuilder::new()
            .function("f", 0, 0, false, |f| {
                f.call(0).end();
            })
            .build();
        let mut inst = Instance::new(decode(&bytes).unwrap());
        assert_eq!(inst.call(0, &[]).unwrap_err(), Trap::CallDepthExceeded);
    }

    #[test]
    fn fletcher_applet_matches_reference() {
        let mut rt = WasmRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let input = benchmark_input();
        let out = rt.run(&input).unwrap();
        assert_eq!(out.result as u32, fletcher32(&input));
        assert!(out.steps > 1000, "steps {}", out.steps);
    }

    #[test]
    fn fletcher_run_time_matches_paper_scale() {
        let mut rt = WasmRuntime::new();
        rt.load(&rt.fletcher_applet()).unwrap();
        let out = rt.run(&benchmark_input()).unwrap();
        let us = out.cycles as f64 / 64.0;
        // Paper Table 2: 980 µs.
        assert!((500.0..1500.0).contains(&us), "{us} µs");
    }

    #[test]
    fn cold_start_matches_paper_scale() {
        let mut rt = WasmRuntime::new();
        let cost = rt.load(&rt.fletcher_applet()).unwrap();
        let us = cost.cycles as f64 / 64.0;
        // Paper Table 2: 17 096 µs.
        assert!((8_000.0..30_000.0).contains(&us), "{us} µs");
    }

    #[test]
    fn footprint_matches_table1_shape() {
        let rt = WasmRuntime::new();
        let fp = rt.footprint();
        assert_eq!(fp.rom_bytes, 64 * 1024);
        assert!(fp.ram_bytes >= 80 * 1024 && fp.ram_bytes <= 90 * 1024);
    }
}
