//! wasm-sim: a WebAssembly MVP-subset engine standing in for WASM3
//! (paper §6).
//!
//! Implements the parts of the binary format and instruction set that
//! 32-bit integer workloads need: i32 arithmetic/comparison, structured
//! control flow (`block`/`loop`/`if`/`br`/`br_if`), locals, direct
//! calls, and linear memory with the spec-mandated 64 KiB page — the
//! architectural property behind WASM3's RAM footprint in Table 1 ("the
//! minimum required page size of 64 KiB ... explains why WASM3 performs
//! poorly in terms of RAM").

pub mod builder;
pub mod interp;
pub mod module;
pub mod opcode;

pub use builder::ModuleBuilder;
pub use interp::WasmRuntime;
pub use module::{Module, WasmDecodeError};

/// The WebAssembly page size mandated by the specification.
pub const PAGE_SIZE: usize = 65_536;
