//! WebAssembly binary-module decoding (MVP subset) and body
//! pre-processing.
//!
//! Loading performs the work WASM3 counts as cold start: LEB decoding of
//! every section, opcode-by-opcode body decode, and matching of
//! structured control flow (each `block`/`loop`/`if` is resolved to its
//! `else`/`end` instruction index so branches become O(1) at run time).

use super::opcode as op;

/// The decoded, pre-processed instruction stream of one function.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Trap immediately.
    Unreachable,
    /// No-op.
    Nop,
    /// Structured block; `end` is the matching `End` index.
    Block {
        /// Index of the matching `End`.
        end: usize,
        /// Values the block yields (0 or 1).
        arity: u8,
    },
    /// Loop header (branches come back here).
    Loop,
    /// Conditional; `else_` / `end` are instruction indices.
    If {
        /// Index just past the matching `Else` (or `End` if none).
        else_: usize,
        /// Index of the matching `End`.
        end: usize,
        /// Values the construct yields.
        arity: u8,
    },
    /// Marker for the `else` arm (jump target bookkeeping).
    Else {
        /// Index of the matching `End`.
        end: usize,
    },
    /// Close of a structured construct.
    End,
    /// Unconditional branch to relative depth.
    Br(u32),
    /// Conditional branch.
    BrIf(u32),
    /// Return from the function.
    Return,
    /// Direct call.
    Call(u32),
    /// Drop the top value.
    Drop,
    /// Ternary select.
    Select,
    /// Read a local.
    LocalGet(u32),
    /// Write a local.
    LocalSet(u32),
    /// Write a local, keeping the value on the stack.
    LocalTee(u32),
    /// Memory load: width in bytes (1, 2, 4), static offset.
    Load {
        /// Access width in bytes.
        width: u8,
        /// Static offset added to the address operand.
        offset: u32,
    },
    /// Memory store.
    Store {
        /// Access width in bytes.
        width: u8,
        /// Static offset added to the address operand.
        offset: u32,
    },
    /// Current memory size in pages.
    MemorySize,
    /// Push a constant.
    I32Const(i32),
    /// Unary test.
    I32Eqz,
    /// Binary comparison (by opcode byte).
    Cmp(u8),
    /// Binary arithmetic (by opcode byte).
    Bin(u8),
}

/// One decoded function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Number of parameters.
    pub n_params: u32,
    /// Number of declared (non-param) locals.
    pub n_locals: u32,
    /// Whether the function returns a value.
    pub returns: bool,
    /// The pre-processed body.
    pub body: Vec<Instr>,
}

/// A decoded module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions in index order.
    pub functions: Vec<Function>,
    /// Initial memory pages.
    pub memory_pages: u32,
    /// Exported functions: name → function index.
    pub exports: Vec<(String, u32)>,
    /// Bytes processed during decode (cold-start accounting).
    pub bytes_decoded: usize,
    /// Instructions decoded (cold-start accounting).
    pub instrs_decoded: usize,
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WasmDecodeError {
    /// Missing/incorrect magic or version.
    BadHeader,
    /// Ran out of bytes.
    Truncated,
    /// Malformed LEB128.
    BadLeb,
    /// A section/opcode outside the supported subset.
    Unsupported {
        /// What was encountered.
        what: String,
    },
    /// Structurally invalid (unbalanced blocks, bad indices).
    Invalid {
        /// Explanation.
        what: String,
    },
}

impl std::fmt::Display for WasmDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WasmDecodeError::BadHeader => write!(f, "bad wasm header"),
            WasmDecodeError::Truncated => write!(f, "truncated module"),
            WasmDecodeError::BadLeb => write!(f, "malformed leb128"),
            WasmDecodeError::Unsupported { what } => write!(f, "unsupported: {what}"),
            WasmDecodeError::Invalid { what } => write!(f, "invalid module: {what}"),
        }
    }
}

impl std::error::Error for WasmDecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, WasmDecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(WasmDecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WasmDecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(WasmDecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn uleb(&mut self) -> Result<u64, WasmDecodeError> {
        let mut result = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            result |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(WasmDecodeError::BadLeb);
            }
        }
    }

    fn sleb32(&mut self) -> Result<i32, WasmDecodeError> {
        let mut result = 0i64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            result |= ((b & 0x7f) as i64) << shift;
            shift += 7;
            if b & 0x80 == 0 {
                if shift < 64 && b & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result as i32);
            }
            if shift > 35 {
                return Err(WasmDecodeError::BadLeb);
            }
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// Parses a binary module.
///
/// # Errors
///
/// Any [`WasmDecodeError`].
pub fn decode(bytes: &[u8]) -> Result<Module, WasmDecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != b"\0asm" || r.take(4)? != [1, 0, 0, 0] {
        return Err(WasmDecodeError::BadHeader);
    }

    // (params, returns) per type index.
    let mut types: Vec<(u32, bool)> = Vec::new();
    let mut func_types: Vec<u32> = Vec::new();
    let mut module = Module::default();
    let mut bodies: Vec<(u32, Vec<Instr>, usize)> = Vec::new();

    while !r.done() {
        let id = r.u8()?;
        let size = r.uleb()? as usize;
        let content = r.take(size)?;
        let mut s = Reader {
            bytes: content,
            pos: 0,
        };
        match id {
            1 => {
                // Type section.
                let n = s.uleb()?;
                for _ in 0..n {
                    if s.u8()? != op::FUNC_TYPE {
                        return Err(WasmDecodeError::Unsupported {
                            what: "non-func type".into(),
                        });
                    }
                    let np = s.uleb()? as u32;
                    for _ in 0..np {
                        let vt = s.u8()?;
                        if vt != op::VT_I32 {
                            return Err(WasmDecodeError::Unsupported {
                                what: format!("param type 0x{vt:02x}"),
                            });
                        }
                    }
                    let nr = s.uleb()?;
                    if nr > 1 {
                        return Err(WasmDecodeError::Unsupported {
                            what: "multi-value results".into(),
                        });
                    }
                    for _ in 0..nr {
                        s.u8()?;
                    }
                    types.push((np, nr == 1));
                }
            }
            3 => {
                let n = s.uleb()?;
                for _ in 0..n {
                    func_types.push(s.uleb()? as u32);
                }
            }
            5 => {
                let n = s.uleb()?;
                if n > 1 {
                    return Err(WasmDecodeError::Unsupported {
                        what: "multiple memories".into(),
                    });
                }
                if n == 1 {
                    let flags = s.u8()?;
                    let min = s.uleb()? as u32;
                    if flags & 1 != 0 {
                        s.uleb()?; // max, ignored
                    }
                    module.memory_pages = min;
                }
            }
            7 => {
                let n = s.uleb()?;
                for _ in 0..n {
                    let name_len = s.uleb()? as usize;
                    let name = String::from_utf8_lossy(s.take(name_len)?).into_owned();
                    let kind = s.u8()?;
                    let idx = s.uleb()? as u32;
                    if kind == 0 {
                        module.exports.push((name, idx));
                    }
                }
            }
            10 => {
                let n = s.uleb()?;
                for _ in 0..n {
                    let body_size = s.uleb()? as usize;
                    let body_bytes = s.take(body_size)?;
                    let mut b = Reader {
                        bytes: body_bytes,
                        pos: 0,
                    };
                    let mut n_locals = 0u32;
                    let decl_count = b.uleb()?;
                    for _ in 0..decl_count {
                        let count = b.uleb()? as u32;
                        let vt = b.u8()?;
                        if vt != op::VT_I32 {
                            return Err(WasmDecodeError::Unsupported {
                                what: format!("local type 0x{vt:02x}"),
                            });
                        }
                        n_locals += count;
                    }
                    let (instrs, count) = decode_body(&mut b)?;
                    bodies.push((n_locals, instrs, count));
                }
            }
            0 => { /* custom section: skipped */ }
            other => {
                return Err(WasmDecodeError::Unsupported {
                    what: format!("section id {other}"),
                });
            }
        }
    }

    if func_types.len() != bodies.len() {
        return Err(WasmDecodeError::Invalid {
            what: format!("{} signatures vs {} bodies", func_types.len(), bodies.len()),
        });
    }
    let mut instr_total = 0;
    for (ty_idx, (n_locals, body, count)) in func_types.iter().zip(bodies) {
        let (n_params, returns) = *types
            .get(*ty_idx as usize)
            .ok_or(WasmDecodeError::Invalid {
                what: "type index".into(),
            })?;
        instr_total += count;
        module.functions.push(Function {
            n_params,
            n_locals,
            returns,
            body,
        });
    }
    module.bytes_decoded = bytes.len();
    module.instrs_decoded = instr_total;
    Ok(module)
}

/// Decodes one body and resolves structured control flow.
fn decode_body(r: &mut Reader<'_>) -> Result<(Vec<Instr>, usize), WasmDecodeError> {
    let mut out: Vec<Instr> = Vec::new();
    // Stack of indices of open Block/If/Else entries awaiting their End.
    let mut open: Vec<usize> = Vec::new();
    loop {
        let b = r.u8()?;
        let instr = match b {
            op::UNREACHABLE => Instr::Unreachable,
            op::NOP => Instr::Nop,
            op::BLOCK | op::LOOP | op::IF => {
                let bt = r.u8()?;
                let arity = match bt {
                    op::BT_EMPTY => 0,
                    op::VT_I32 => 1,
                    other => {
                        return Err(WasmDecodeError::Unsupported {
                            what: format!("block type 0x{other:02x}"),
                        });
                    }
                };
                open.push(out.len());
                match b {
                    op::BLOCK => Instr::Block { end: 0, arity },
                    op::LOOP => Instr::Loop,
                    _ => Instr::If {
                        else_: 0,
                        end: 0,
                        arity,
                    },
                }
            }
            op::ELSE => {
                let idx = *open.last().ok_or(WasmDecodeError::Invalid {
                    what: "else without if".into(),
                })?;
                let here = out.len();
                match &mut out[idx] {
                    Instr::If { else_, .. } => *else_ = here + 1,
                    _ => {
                        return Err(WasmDecodeError::Invalid {
                            what: "else without if".into(),
                        });
                    }
                }
                Instr::Else { end: 0 }
            }
            op::END => {
                let here = out.len();
                match open.pop() {
                    Some(idx) => {
                        // Patch the opener (and any Else between).
                        let mut else_pos = None;
                        match &mut out[idx] {
                            Instr::Block { end, .. } => *end = here,
                            Instr::Loop => {}
                            Instr::If { else_, end, .. } => {
                                *end = here;
                                if *else_ == 0 {
                                    *else_ = here; // no else arm: false jumps to end
                                } else {
                                    else_pos = Some(*else_ - 1);
                                }
                            }
                            _ => unreachable!("only openers are pushed"),
                        }
                        if let Some(ep) = else_pos {
                            if let Instr::Else { end } = &mut out[ep] {
                                *end = here;
                            }
                        }
                        Instr::End
                    }
                    None => {
                        // Function-closing end.
                        out.push(Instr::End);
                        let count = out.len();
                        return Ok((out, count));
                    }
                }
            }
            op::BR => Instr::Br(r.uleb()? as u32),
            op::BR_IF => Instr::BrIf(r.uleb()? as u32),
            op::RETURN => Instr::Return,
            op::CALL => Instr::Call(r.uleb()? as u32),
            op::DROP => Instr::Drop,
            op::SELECT => Instr::Select,
            op::LOCAL_GET => Instr::LocalGet(r.uleb()? as u32),
            op::LOCAL_SET => Instr::LocalSet(r.uleb()? as u32),
            op::LOCAL_TEE => Instr::LocalTee(r.uleb()? as u32),
            op::I32_LOAD | op::I32_LOAD8_U | op::I32_LOAD16_U => {
                let _align = r.uleb()?;
                let offset = r.uleb()? as u32;
                let width = match b {
                    op::I32_LOAD => 4,
                    op::I32_LOAD16_U => 2,
                    _ => 1,
                };
                Instr::Load { width, offset }
            }
            op::I32_STORE | op::I32_STORE8 | op::I32_STORE16 => {
                let _align = r.uleb()?;
                let offset = r.uleb()? as u32;
                let width = match b {
                    op::I32_STORE => 4,
                    op::I32_STORE16 => 2,
                    _ => 1,
                };
                Instr::Store { width, offset }
            }
            op::MEMORY_SIZE => {
                r.u8()?; // reserved 0x00
                Instr::MemorySize
            }
            op::I32_CONST => Instr::I32Const(r.sleb32()?),
            op::I32_EQZ => Instr::I32Eqz,
            c @ (op::I32_EQ..=op::I32_GE_U) => Instr::Cmp(c),
            a @ (op::I32_ADD..=op::I32_SHR_U) => Instr::Bin(a),
            other => {
                return Err(WasmDecodeError::Unsupported {
                    what: format!("opcode 0x{other:02x}"),
                });
            }
        };
        out.push(instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wasm::builder::ModuleBuilder;

    #[test]
    fn bad_header_rejected() {
        assert_eq!(decode(b"\0asX\x01\0\0\0"), Err(WasmDecodeError::BadHeader));
        assert_eq!(decode(b"\0as"), Err(WasmDecodeError::Truncated));
    }

    #[test]
    fn minimal_module_round_trip() {
        let bytes = ModuleBuilder::new()
            .memory(1)
            .function("answer", 0, 0, true, |f| {
                f.i32_const(42);
                f.end();
            })
            .build();
        let m = decode(&bytes).unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.memory_pages, 1);
        assert_eq!(m.exports, vec![("answer".to_string(), 0)]);
        assert!(m.functions[0].returns);
    }

    #[test]
    fn control_flow_targets_resolved() {
        let bytes = ModuleBuilder::new()
            .function("f", 0, 1, true, |f| {
                f.block(0); // 0
                f.loop_(); // 1
                f.i32_const(1); // 2
                f.br_if(1); // 3
                f.br(0); // 4
                f.end(); // 5 (loop end)
                f.end(); // 6 (block end)
                f.i32_const(7);
                f.end();
            })
            .build();
        let m = decode(&bytes).unwrap();
        match &m.functions[0].body[0] {
            Instr::Block { end, .. } => assert_eq!(*end, 6),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn if_else_targets_resolved() {
        let bytes = ModuleBuilder::new()
            .function("f", 1, 0, true, |f| {
                f.local_get(0);
                f.if_(1); // 1
                f.i32_const(10); // 2
                f.else_(); // 3
                f.i32_const(20); // 4
                f.end(); // 5
                f.end();
            })
            .build();
        let m = decode(&bytes).unwrap();
        match &m.functions[0].body[1] {
            Instr::If { else_, end, .. } => {
                assert_eq!(*else_, 4);
                assert_eq!(*end, 5);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_opcode_rejected() {
        // f64.const (0x44) is outside the subset.
        let mut bytes = ModuleBuilder::new()
            .function("f", 0, 0, false, |f| {
                f.end();
            })
            .build();
        // Patch the body's final byte (the `end` opcode) — the code
        // section is last in the module.
        let pos = bytes.len() - 1;
        assert_eq!(bytes[pos], 0x0b);
        bytes[pos] = 0x44;
        assert!(matches!(
            decode(&bytes),
            Err(WasmDecodeError::Unsupported { .. })
        ));
    }

    #[test]
    fn decode_accounts_work() {
        let bytes = ModuleBuilder::new()
            .memory(1)
            .function("f", 0, 2, true, |f| {
                f.i32_const(1);
                f.i32_const(2);
                f.bin(op::I32_ADD);
                f.end();
            })
            .build();
        let m = decode(&bytes).unwrap();
        assert_eq!(m.bytes_decoded, bytes.len());
        assert_eq!(m.instrs_decoded, 4);
    }
}
