//! WebAssembly opcode bytes (MVP subset).

/// `unreachable`.
pub const UNREACHABLE: u8 = 0x00;
/// `nop`.
pub const NOP: u8 = 0x01;
/// `block bt`.
pub const BLOCK: u8 = 0x02;
/// `loop bt`.
pub const LOOP: u8 = 0x03;
/// `if bt`.
pub const IF: u8 = 0x04;
/// `else`.
pub const ELSE: u8 = 0x05;
/// `end`.
pub const END: u8 = 0x0b;
/// `br depth`.
pub const BR: u8 = 0x0c;
/// `br_if depth`.
pub const BR_IF: u8 = 0x0d;
/// `return`.
pub const RETURN: u8 = 0x0f;
/// `call funcidx`.
pub const CALL: u8 = 0x10;
/// `drop`.
pub const DROP: u8 = 0x1a;
/// `select`.
pub const SELECT: u8 = 0x1b;
/// `local.get idx`.
pub const LOCAL_GET: u8 = 0x20;
/// `local.set idx`.
pub const LOCAL_SET: u8 = 0x21;
/// `local.tee idx`.
pub const LOCAL_TEE: u8 = 0x22;
/// `i32.load align off`.
pub const I32_LOAD: u8 = 0x28;
/// `i32.load8_u align off`.
pub const I32_LOAD8_U: u8 = 0x2d;
/// `i32.load16_u align off`.
pub const I32_LOAD16_U: u8 = 0x2f;
/// `i32.store align off`.
pub const I32_STORE: u8 = 0x36;
/// `i32.store8 align off`.
pub const I32_STORE8: u8 = 0x3a;
/// `i32.store16 align off`.
pub const I32_STORE16: u8 = 0x3b;
/// `memory.size`.
pub const MEMORY_SIZE: u8 = 0x3f;
/// `i32.const n`.
pub const I32_CONST: u8 = 0x41;
/// `i32.eqz`.
pub const I32_EQZ: u8 = 0x45;
/// `i32.eq`.
pub const I32_EQ: u8 = 0x46;
/// `i32.ne`.
pub const I32_NE: u8 = 0x47;
/// `i32.lt_s`.
pub const I32_LT_S: u8 = 0x48;
/// `i32.lt_u`.
pub const I32_LT_U: u8 = 0x49;
/// `i32.gt_s`.
pub const I32_GT_S: u8 = 0x4a;
/// `i32.gt_u`.
pub const I32_GT_U: u8 = 0x4b;
/// `i32.le_s`.
pub const I32_LE_S: u8 = 0x4c;
/// `i32.le_u`.
pub const I32_LE_U: u8 = 0x4d;
/// `i32.ge_s`.
pub const I32_GE_S: u8 = 0x4e;
/// `i32.ge_u`.
pub const I32_GE_U: u8 = 0x4f;
/// `i32.add`.
pub const I32_ADD: u8 = 0x6a;
/// `i32.sub`.
pub const I32_SUB: u8 = 0x6b;
/// `i32.mul`.
pub const I32_MUL: u8 = 0x6c;
/// `i32.div_s`.
pub const I32_DIV_S: u8 = 0x6d;
/// `i32.div_u`.
pub const I32_DIV_U: u8 = 0x6e;
/// `i32.rem_s`.
pub const I32_REM_S: u8 = 0x6f;
/// `i32.rem_u`.
pub const I32_REM_U: u8 = 0x70;
/// `i32.and`.
pub const I32_AND: u8 = 0x71;
/// `i32.or`.
pub const I32_OR: u8 = 0x72;
/// `i32.xor`.
pub const I32_XOR: u8 = 0x73;
/// `i32.shl`.
pub const I32_SHL: u8 = 0x74;
/// `i32.shr_s`.
pub const I32_SHR_S: u8 = 0x75;
/// `i32.shr_u`.
pub const I32_SHR_U: u8 = 0x76;

/// The `i32` value type byte.
pub const VT_I32: u8 = 0x7f;
/// Empty block type.
pub const BT_EMPTY: u8 = 0x40;
/// Function type marker.
pub const FUNC_TYPE: u8 = 0x60;
