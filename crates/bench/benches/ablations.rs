//! Ablations for the design choices DESIGN.md §8 calls out:
//!
//! 1. allow-list scan depth — memory-check cost as the region count
//!    grows (the price of software fault isolation);
//! 2. defensive-interpreter structure — vanilla vs CertFC on identical
//!    programs (the price of the verified artifact's shape);
//! 3. finite-execution budget bookkeeping — tight vs huge budgets on a
//!    loop-heavy program (cost of the `N_i`/`N_b` counters is in the
//!    hot loop either way; this quantifies it end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_rbpf::certfc::CertInterpreter;
use fc_rbpf::helpers::HelperRegistry;
use fc_rbpf::interp::Interpreter;
use fc_rbpf::mem::{MemoryMap, Perm};
use fc_rbpf::vm::ExecConfig;
use fc_rbpf::{asm, isa, verifier};
use std::hint::black_box;

fn load_heavy_program() -> verifier::VerifiedProgram {
    // 64 loads from the stack inside a counted loop.
    let mut src = String::from("mov r6, 32\nloop:\n");
    for _ in 0..16 {
        src.push_str("ldxdw r3, [r10-8]\n");
    }
    src.push_str("sub r6, 1\njne r6, 0, loop\nmov r0, r3\nexit");
    let text = isa::encode_all(&asm::assemble(&src).expect("assembles"));
    verifier::verify(&text, &Default::default()).expect("verifies")
}

fn bench_allowlist_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_allowlist_scan");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(30);
    let prog = load_heavy_program();
    for extra_regions in [0usize, 4, 8, 16] {
        group.bench_function(format!("{extra_regions}_extra_regions"), |b| {
            let mut mem = MemoryMap::new();
            // Extra regions registered before the stack, so every stack
            // access scans past them (worst case).
            for i in 0..extra_regions {
                mem.add_host_region(&format!("r{i}"), vec![0; 8], Perm::RO);
            }
            mem.add_stack(512);
            let mut helpers = HelperRegistry::new();
            let interp = Interpreter::new(&prog, ExecConfig::default());
            b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
        });
    }
    group.finish();
}

fn bench_defensive_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_defensive_interpreter");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(30);
    let prog = load_heavy_program();
    group.bench_function("vanilla", |b| {
        let mut mem = MemoryMap::new();
        mem.add_stack(512);
        let mut helpers = HelperRegistry::new();
        let interp = Interpreter::new(&prog, ExecConfig::default());
        b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
    });
    group.bench_function("certfc", |b| {
        let mut mem = MemoryMap::new();
        mem.add_stack(512);
        let mut helpers = HelperRegistry::new();
        let interp = CertInterpreter::new(&prog, ExecConfig::default());
        b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
    });
    group.finish();
}

fn bench_budget_bookkeeping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_execution_budgets");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(30);
    let prog = load_heavy_program();
    for (name, cfg) in [
        ("tight_budgets", ExecConfig::new(2048, 64)),
        ("default_budgets", ExecConfig::default()),
        ("huge_budgets", ExecConfig::new(u32::MAX, u32::MAX)),
    ] {
        group.bench_function(name, |b| {
            let mut mem = MemoryMap::new();
            mem.add_stack(512);
            let mut helpers = HelperRegistry::new();
            let interp = Interpreter::new(&prog, cfg);
            b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allowlist_depth,
    bench_defensive_structure,
    bench_budget_bookkeeping
);
criterion_main!(benches);
