//! Host wall-clock execution of the three paper applications through
//! the hosting engine (Figure 9's measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_baselines::benchmark_input;
use fc_core::apps;
use fc_core::contract::ContractOffer;
use fc_core::engine::{HostRegion, HostingEngine};
use fc_core::helpers_impl::{coap_ctx_bytes, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_rtos::platform::{Engine, Platform};
use fc_rtos::saul::{DeviceClass, Phydat};
use std::hint::black_box;

fn engine() -> HostingEngine {
    let mut e = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
    e.register_hook(
        Hook::new("timer", HookKind::Timer, HookPolicy::First),
        ContractOffer::helpers(standard_helper_ids()),
    );
    e.env()
        .saul()
        .lock()
        .unwrap()
        .register("temp0", DeviceClass::SenseTemp, || Phydat {
            value: 2155,
            scale: -2,
        });
    e
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_applications");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(30);

    {
        let mut e = engine();
        let id = e
            .install(
                "fletcher",
                1,
                &apps::fletcher32_app().to_bytes(),
                Default::default(),
            )
            .expect("installs");
        let ctx = apps::fletcher_ctx(&benchmark_input());
        group.bench_function("fletcher32", |b| {
            b.iter(|| black_box(e.execute(id, &ctx, &[]).expect("runs").result.clone()))
        });
    }
    {
        let mut e = engine();
        let id = e
            .install(
                "pid_log",
                1,
                &apps::thread_counter().to_bytes(),
                apps::thread_counter_request(),
            )
            .expect("installs");
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&1u64.to_le_bytes());
        ctx.extend_from_slice(&2u64.to_le_bytes());
        group.bench_function("thread_log", |b| {
            b.iter(|| black_box(e.execute(id, &ctx, &[]).expect("runs").result.clone()))
        });
    }
    {
        let mut e = engine();
        e.env()
            .stores()
            .store(9, 1, fc_kvstore::Scope::Tenant, 1, 2155)
            .expect("seeds");
        let id = e
            .install(
                "coap_fmt",
                1,
                &apps::coap_formatter().to_bytes(),
                apps::coap_formatter_request(),
            )
            .expect("installs");
        let ctx = coap_ctx_bytes(64);
        group.bench_function("coap_formatter", |b| {
            b.iter(|| {
                black_box(
                    e.execute(id, &ctx, &[HostRegion::read_write("pkt", vec![0; 64])])
                        .expect("runs")
                        .result
                        .clone(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
