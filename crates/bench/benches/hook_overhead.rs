//! Host wall-clock cost of firing a launchpad hook, empty vs with the
//! thread-counter application attached (Table 4's measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_core::apps;
use fc_core::contract::ContractOffer;
use fc_core::engine::HostingEngine;
use fc_core::helpers_impl::standard_helper_ids;
use fc_core::hooks::{sched_hook_id, Hook, HookKind, HookPolicy};
use fc_rtos::platform::{Engine, Platform};
use std::hint::black_box;

fn sched_ctx() -> Vec<u8> {
    let mut ctx = Vec::new();
    ctx.extend_from_slice(&1u64.to_le_bytes());
    ctx.extend_from_slice(&2u64.to_le_bytes());
    ctx
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_hook_overhead");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(40);

    let mut empty = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
    empty.register_hook(
        Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
        ContractOffer::helpers(standard_helper_ids()),
    );
    let ctx = sched_ctx();
    group.bench_function("empty_hook", |b| {
        b.iter(|| {
            black_box(
                empty
                    .fire_hook(sched_hook_id(), &ctx, &[])
                    .expect("fires")
                    .cycles,
            )
        })
    });

    let mut with_app = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
    with_app.register_hook(
        Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
        ContractOffer::helpers(standard_helper_ids()),
    );
    let id = with_app
        .install(
            "pid_log",
            1,
            &apps::thread_counter().to_bytes(),
            apps::thread_counter_request(),
        )
        .expect("installs");
    with_app.attach(id, sched_hook_id()).expect("attaches");
    group.bench_function("hook_with_application", |b| {
        b.iter(|| {
            black_box(
                with_app
                    .fire_hook(sched_hook_id(), &ctx, &[])
                    .expect("fires")
                    .cycles,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
