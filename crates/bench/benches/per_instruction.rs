//! Host wall-clock per instruction class for the vanilla and CertFC
//! interpreters (the measurement behind Figure 8).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_bench::figure8_classes;
use fc_rbpf::certfc::CertInterpreter;
use fc_rbpf::decode::DecodedProgram;
use fc_rbpf::fast::FastInterpreter;
use fc_rbpf::helpers::HelperRegistry;
use fc_rbpf::interp::Interpreter;
use fc_rbpf::mem::MemoryMap;
use fc_rbpf::vm::ExecConfig;
use fc_rbpf::{asm, isa, verifier};
use std::hint::black_box;

fn bench_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_per_instruction");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(30);
    for (name, src, _class) in figure8_classes() {
        let text = isa::encode_all(&asm::assemble(&src).expect("assembles"));
        let prog = verifier::verify(&text, &Default::default()).expect("verifies");
        let decoded = DecodedProgram::lower(&prog);
        group.bench_function(format!("vanilla/{name}"), |b| {
            let mut mem = MemoryMap::new();
            mem.add_stack(512);
            let mut helpers = HelperRegistry::new();
            let interp = Interpreter::new(&prog, ExecConfig::default());
            b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
        });
        group.bench_function(format!("fastpath/{name}"), |b| {
            let mut mem = MemoryMap::new();
            mem.add_stack(512);
            let mut helpers = HelperRegistry::new();
            let interp = FastInterpreter::new(&decoded, ExecConfig::default());
            b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
        });
        group.bench_function(format!("certfc/{name}"), |b| {
            let mut mem = MemoryMap::new();
            mem.add_stack(512);
            let mut helpers = HelperRegistry::new();
            let interp = CertInterpreter::new(&prog, ExecConfig::default());
            b.iter(|| black_box(interp.run(&mut mem, &mut helpers, 0).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classes);
criterion_main!(benches);
