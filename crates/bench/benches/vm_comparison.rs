//! Wall-clock comparison of the candidate runtimes on the fletcher32
//! workload (the host-time counterpart of the paper's Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_baselines::{all_runtimes, benchmark_input};
use std::hint::black_box;

fn bench_run(c: &mut Criterion) {
    let input = benchmark_input();
    let mut group = c.benchmark_group("table2_run");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(20);
    for mut rt in all_runtimes() {
        let applet = rt.fletcher_applet();
        rt.load(&applet).expect("loads");
        group.bench_function(rt.name(), |b| {
            b.iter(|| black_box(rt.run(black_box(&input)).expect("runs").result))
        });
    }
    group.finish();
}

fn bench_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_cold_start");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(20);
    for mut rt in all_runtimes() {
        let applet = rt.fletcher_applet();
        group.bench_function(rt.name(), |b| {
            b.iter(|| black_box(rt.load(black_box(&applet)).expect("loads")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_run, bench_cold_start);
criterion_main!(benches);
