//! Regenerates every table and figure of the paper in one run.
fn main() {
    for report in fc_bench::all_reports() {
        println!("{}", report.render());
    }
}
