//! Fleet-tier throughput tracker: drives `fc-fleet` — N hosting nodes
//! behind the consistent-hash front, every node across the codec
//! adapter on a seeded lossy link — and splices a `fleet` section into
//! `BENCH_host.json`.
//!
//! Measurements per (node count, loss rate):
//!
//! * **wall events/s** — offered events over wall-clock time, front
//!   tier included (wire codec, retransmission, dedup).
//! * **capacity events/s** — offered events over the *maximum
//!   per-node* busy time in simulated platform cycles (each node
//!   reports its hottest shard): the repo's cycle-model capacity
//!   metric lifted one tier up. This is what the node-count scaling
//!   criterion uses — it reflects how evenly the ring spreads the
//!   hooks, independent of the CI box's core count and of the serial
//!   bench driver.
//! * **p99 dispatch latency** — worst node-side enqueue → completion
//!   p99 (the wire leg is virtual time, reported separately by the
//!   link model).
//! * **exactly-once ledger** — at every loss rate, the summed per-node
//!   `dispatched` must equal the offered stream: drops were
//!   retransmitted, duplicates deduped, nothing executed twice.
//! * **deploy fan-out** — one signed SUIT update pushed to *every*
//!   node (per-node accept/reject), wall latency per fan-out.
//!
//! Pass `--quick` for a smoke run (CI-sized budgets).

use std::time::Instant;

use fc_core::contract::ContractOffer;
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_fleet::node::{RemoteConfig, RemoteNode, FLEET_MTU};
use fc_fleet::{FcFleet, FleetConfig};
use fc_host::{HookEvent, HostConfig, LocalNode};
use fc_net::link::LinkConfig;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::{SigningKey, Uuid};

/// Hooks spread over the ring; enough that consistent hashing's spread
/// (not one lumpy arc) dominates the capacity metric.
const HOOKS: u32 = 24;
const WORKERS_PER_NODE: usize = 2;

/// The same §8.3-style responder-with-compute bench_host uses.
fn responder_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm(
            "\
    mov r6, r1
    mov r1, 1
    mov r2, r10
    add r2, -8
    call bpf_fetch_shared
    ldxw r7, [r10-8]
    mov r8, 150
spin:
    add r7, 3
    sub r8, 1
    jne r8, 0, spin
    and r7, 0xffff
    mov r1, r6
    mov r2, 0x45
    call bpf_gcoap_resp_init
    mov r1, r6
    mov r2, 0
    call bpf_coap_add_format
    mov r1, r6
    call bpf_coap_opt_finish
    mov r8, r0
    ldxdw r1, [r6]
    add r1, r8
    mov r2, r7
    call bpf_fmt_u32_dec
    add r0, r8
    exit
",
        )
        .expect("assembles")
        .build()
}

fn provisioned_node(maintainer: &SigningKey) -> LocalNode {
    let mut node = LocalNode::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig {
            workers: WORKERS_PER_NODE,
            queue_capacity: 4096,
            drain_batch: 32,
            ..HostConfig::default()
        },
    );
    for t in 0..HOOKS {
        node.updates_mut().provision_tenant(
            format!("bench-t{t}").as_bytes(),
            maintainer.verifying_key(),
            t,
        );
        node.host()
            .env()
            .stores()
            .store(0, t, fc_kvstore::Scope::Tenant, 1, 2000 + t as i64)
            .expect("seeds tenant value");
    }
    node
}

/// Builds a fleet of `nodes` codec-adapter nodes at `loss`, registers
/// the hooks and SUIT-deploys the responder onto each.
fn build_fleet(maintainer: &SigningKey, nodes: usize, loss: f64) -> (FcFleet, Vec<Uuid>) {
    let mut fleet = FcFleet::new(FleetConfig::default());
    for i in 0..nodes {
        let remote = RemoteNode::new(
            provisioned_node(maintainer),
            RemoteConfig {
                link: LinkConfig {
                    loss,
                    duplicate: loss / 2.0,
                    jitter_us: if loss > 0.0 { 20_000 } else { 0 },
                    mtu: FLEET_MTU,
                    seed: 0x000f_1ee7 + i as u64,
                    ..LinkConfig::default()
                },
                max_retransmit: 8,
                ..RemoteConfig::default()
            },
        );
        fleet.add_node(Box::new(remote)).expect("node admitted");
    }
    let app = responder_program();
    let mut hooks = Vec::new();
    for t in 0..HOOKS {
        let hook = Hook::new(
            &format!("fleet-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        hooks.push(hook.id);
        fleet
            .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .expect("hook registered");
        let (envelope, payload) = author_update(
            &app,
            hooks[t as usize],
            1,
            &format!("t{t}-v1"),
            maintainer,
            format!("bench-t{t}").as_bytes(),
        );
        let (_, report) = fleet.deploy(&envelope, &payload).expect("deploy accepted");
        assert!(report.attached);
    }
    (fleet, hooks)
}

struct FleetRun {
    nodes: usize,
    loss: f64,
    wall_eps: f64,
    capacity_eps: f64,
    p99_us: f64,
    hooks_per_node: Vec<usize>,
    dispatched: u64,
}

/// Offers `events` uniformly over the hooks in batches of 16 and
/// checks the exactly-once ledger.
fn fleet_run(maintainer: &SigningKey, nodes: usize, loss: f64, events: u64) -> FleetRun {
    let (mut fleet, hooks) = build_fleet(maintainer, nodes, loss);
    let mut hooks_per_node = vec![0usize; nodes];
    for &hook in &hooks {
        hooks_per_node[fleet.owner_of(hook).expect("owned")] += 1;
    }
    let per_hook = events / HOOKS as u64;
    let started = Instant::now();
    for &hook in &hooks {
        let mut remaining = per_hook;
        while remaining > 0 {
            let n = remaining.min(16) as usize;
            let batch: Vec<HookEvent> = (0..n)
                .map(|_| HookEvent {
                    ctx: fc_core::helpers_impl::coap_ctx_bytes(64),
                    extra: vec![fc_core::engine::HostRegion::read_write("pkt", vec![0; 64])],
                })
                .collect();
            let replies = fleet.dispatch_batch(hook, batch).expect("batch served");
            for reply in replies {
                let report = reply.expect("event neither lost nor shed");
                assert!(
                    report.combined.unwrap_or(0) > 4,
                    "responder formatted a PDU"
                );
            }
            remaining -= n as u64;
        }
    }
    let wall = started.elapsed();
    let offered = per_hook * HOOKS as u64;
    let platform = Platform::CortexM4;
    let mut dispatched = 0u64;
    let mut max_busy_us = f64::MIN_POSITIVE;
    let mut p99_ns = 0u64;
    for (node, stats) in fleet.stats() {
        let stats = stats.unwrap_or_else(|e| panic!("node {node} stats: {e}"));
        dispatched += stats.dispatched;
        max_busy_us = max_busy_us.max(platform.us_from_cycles(stats.max_shard_busy_cycles));
        p99_ns = p99_ns.max(stats.p99_ns);
    }
    assert_eq!(
        dispatched, offered,
        "exactly-once at loss {loss}: every offered event executed once"
    );
    FleetRun {
        nodes,
        loss,
        wall_eps: offered as f64 / wall.as_secs_f64(),
        capacity_eps: offered as f64 * 1e6 / max_busy_us,
        p99_us: p99_ns as f64 / 1e3,
        hooks_per_node,
        dispatched,
    }
}

struct FanoutRun {
    nodes: usize,
    loss: f64,
    deploys: u64,
    mean_fanout_ms: f64,
    max_fanout_ms: f64,
}

/// Pushes `rounds` signed updates to EVERY node of the fleet and
/// measures the wall latency of each full fan-out.
fn fanout_run(maintainer: &SigningKey, nodes: usize, loss: f64, rounds: u64) -> FanoutRun {
    let (mut fleet, hooks) = build_fleet(maintainer, nodes, loss);
    let app = responder_program();
    let mut latencies_ms = Vec::new();
    for round in 0..rounds {
        let t = (round % HOOKS as u64) as usize;
        let version = 2 + round / HOOKS as u64;
        let (envelope, payload) = author_update(
            &app,
            hooks[t],
            version,
            &format!("t{t}-v{version}"),
            maintainer,
            format!("bench-t{t}").as_bytes(),
        );
        let started = Instant::now();
        let outcomes = fleet.deploy_fanout(&envelope, &payload);
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(outcomes.len(), nodes);
        let owner = fleet.owner_of(hooks[t]).expect("owned");
        for (node, outcome) in outcomes {
            let report = outcome.unwrap_or_else(|e| panic!("node {node} rejected fan-out: {e}"));
            assert_eq!(report.attached, node == owner);
        }
    }
    FanoutRun {
        nodes,
        loss,
        deploys: rounds,
        mean_fanout_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        max_fanout_ms: latencies_ms.iter().copied().fold(0.0, f64::max),
    }
}

/// Splices `section` in as the (single) `"fleet"` key of
/// BENCH_host.json, preserving everything bench_host wrote. The fleet
/// section is kept last so re-runs of either binary are idempotent.
fn splice_fleet_section(section: &str) {
    let base = std::fs::read_to_string("BENCH_host.json")
        .unwrap_or_else(|_| "{\n  \"bench\": \"host\"\n}\n".to_owned());
    let head = match base.find(",\n  \"fleet\":") {
        Some(idx) => base[..idx].to_owned(),
        None => {
            let trimmed = base.trim_end();
            let trimmed = trimmed
                .strip_suffix('}')
                .expect("BENCH_host.json is a JSON object")
                .trim_end();
            trimmed.to_owned()
        }
    };
    let out = format!("{head},\n  \"fleet\": {section}\n}}\n");
    std::fs::write("BENCH_host.json", out).expect("writes BENCH_host.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let events: u64 = if quick { 2_400 } else { 12_000 };
    let fanouts: u64 = if quick { 6 } else { 24 };
    let maintainer = SigningKey::from_seed(b"bench-fleet-maintainer");

    println!(
        "fleet load mix: {HOOKS} hooks, {WORKERS_PER_NODE} workers/node, {events} events/run over the codec adapter"
    );
    let mut runs = Vec::new();
    for &loss in &[0.0, 0.05] {
        for &nodes in &[1usize, 2, 4] {
            let r = fleet_run(&maintainer, nodes, loss, events);
            println!(
                "nodes {nodes} loss {loss:4.2}: wall {:8.0} ev/s   capacity {:9.0} ev/s   p99 {:7.1} µs   hooks/node {:?}",
                r.wall_eps, r.capacity_eps, r.p99_us, r.hooks_per_node
            );
            runs.push(r);
        }
    }
    let cap = |nodes: usize, loss: f64| {
        runs.iter()
            .find(|r| r.nodes == nodes && r.loss == loss)
            .expect("run exists")
            .capacity_eps
    };
    let scaling = cap(4, 0.0) / cap(1, 0.0);
    let lossy_scaling = cap(4, 0.05) / cap(1, 0.05);
    println!("capacity scaling 1→4 nodes: lossless {scaling:.2}x, 5% loss {lossy_scaling:.2}x");

    let mut fanout_runs = Vec::new();
    for &loss in &[0.0, 0.05] {
        let r = fanout_run(&maintainer, 4, loss, fanouts);
        println!(
            "deploy fan-out, 4 nodes, loss {loss:4.2}: {} fan-outs   mean {:7.2} ms   max {:7.2} ms",
            r.deploys, r.mean_fanout_ms, r.max_fanout_ms
        );
        fanout_runs.push(r);
    }

    // --- Splice the fleet section into BENCH_host.json --------------
    let mut s = String::from("{\n");
    s.push_str(&format!("    \"quick\": {quick},\n"));
    s.push_str(&format!("    \"hooks\": {HOOKS},\n"));
    s.push_str(&format!("    \"workers_per_node\": {WORKERS_PER_NODE},\n"));
    s.push_str(&format!("    \"events_per_run\": {events},\n"));
    s.push_str("    \"load\": \"uniform batched dispatch over per-hook responders; every node behind the CoAP codec adapter on a seeded lossy link (duplicate = loss/2, 20ms jitter when lossy); all deploys via fleet SUIT lane\",\n");
    s.push_str("    \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"loss\": {:.2}, \"wall_events_per_sec\": {:.0}, \"capacity_events_per_sec\": {:.0}, \"p99_dispatch_us\": {:.1}, \"hooks_per_node\": {:?}, \"dispatched\": {}}}{}\n",
            r.nodes,
            r.loss,
            r.wall_eps,
            r.capacity_eps,
            r.p99_us,
            r.hooks_per_node,
            r.dispatched,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"capacity_scaling_1_to_4_nodes\": {scaling:.2},\n"
    ));
    s.push_str(&format!(
        "    \"capacity_scaling_1_to_4_nodes_at_5pct_loss\": {lossy_scaling:.2},\n"
    ));
    s.push_str("    \"deploy_fanout\": [\n");
    for (i, r) in fanout_runs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"loss\": {:.2}, \"fanouts\": {}, \"mean_fanout_ms\": {:.2}, \"max_fanout_ms\": {:.2}}}{}\n",
            r.nodes,
            r.loss,
            r.deploys,
            r.mean_fanout_ms,
            r.max_fanout_ms,
            if i + 1 < fanout_runs.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str("    \"metric_note\": \"capacity = events / max per-node busy time (each node's hottest shard, simulated cycles): the throughput the ring layout sustains with real hardware per node. Wall events/s additionally includes the serial bench driver and the virtual-time link walk. Exactly-once is asserted at every loss rate: summed per-node dispatched == offered.\",\n");
    s.push_str("    \"semantics\": \"a 1-node fleet over a lossless link is bit-identical to a bare FcHost; lossy runs lose no events and double-execute none (tests/host_differential.rs, crates/fleet/tests)\"\n");
    s.push_str("  }");
    splice_fleet_section(&s);
    println!("spliced fleet section into BENCH_host.json");

    assert!(
        scaling >= 2.0,
        "fleet capacity scaling 1→4 nodes regressed below 2.0x: {scaling:.2}"
    );
    assert!(
        lossy_scaling >= 2.0,
        "lossy fleet capacity scaling regressed below 2.0x: {lossy_scaling:.2}"
    );
    for r in &fanout_runs {
        assert!(
            r.mean_fanout_ms > 0.0 && r.deploys > 0,
            "fan-outs must have landed"
        );
    }
    // The ring must actually spread hooks at 4 nodes.
    let spread = runs
        .iter()
        .find(|r| r.nodes == 4 && r.loss == 0.0)
        .expect("run exists");
    assert!(
        spread.hooks_per_node.iter().filter(|n| **n > 0).count() >= 3,
        "hooks concentrated: {:?}",
        spread.hooks_per_node
    );
}
