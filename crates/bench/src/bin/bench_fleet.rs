//! Fleet-tier throughput tracker: drives `fc-fleet` — N hosting nodes
//! behind the consistent-hash front, every node across the codec
//! adapter on a seeded lossy link — and splices a `fleet` section into
//! `BENCH_host.json`.
//!
//! The front tier drives every node's transport **window**
//! (`FcFleet::dispatch_all`, CoAP NSTART = 8 here): each wave offers
//! one batch per hook, the fleet partitions them by ring owner and
//! keeps all owners' windows full from one single-threaded pump loop.
//!
//! Measurements per (node count, loss rate):
//!
//! * **wall events/s** — offered events over wall-clock time, front
//!   tier included (wire codec, retransmission, dedup). Bounded by the
//!   host's core count: nodes execute on real worker threads, so a
//!   small CI box caps the achievable wall scaling (the JSON records
//!   the box's cores next to the ratio).
//! * **virtual events/s** — offered events over the *virtual* link
//!   time (max over nodes; each node's link clock is independent).
//!   Deterministic for a given seed — this is the metric that proves
//!   the window beats stop-and-wait, on any box.
//! * **capacity events/s** — offered events over the *maximum
//!   per-node* busy time in simulated platform cycles (each node
//!   reports its hottest shard): the repo's cycle-model capacity
//!   metric lifted one tier up, reflecting how evenly the ring spreads
//!   the hooks.
//! * **p99 dispatch latency** — worst node-side enqueue → completion
//!   p99 (the wire leg is virtual time, reported separately).
//! * **exactly-once ledger** — at every loss rate, the summed per-node
//!   `dispatched` must equal the offered stream and `shed` must be 0:
//!   drops were retransmitted, duplicates deduped, nothing executed
//!   twice.
//! * **transport stats** — per-node retransmits, in-flight high-water
//!   mark, out-of-order completions, smoothed RTT in virtual µs.
//! * **deploy fan-out** — one signed SUIT update pushed to *every*
//!   node concurrently (per-node accept/reject), wall latency per
//!   fan-out.
//!
//! Pass `--quick` for a smoke run (CI-sized budgets). Both modes
//! assert the windowed-vs-stop-and-wait virtual-time ratio (the
//! regression tripwire) and, on boxes with enough cores, the 1→4 node
//! wall-scaling ratio.

use std::time::Instant;

use fc_core::contract::ContractOffer;
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_fleet::node::{RemoteConfig, RemoteNode, FLEET_MTU};
use fc_fleet::{FcFleet, FleetConfig};
use fc_host::{HookEvent, HostConfig, LocalNode};
use fc_net::link::LinkConfig;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::{SigningKey, Uuid};

/// Hooks spread over the ring; enough that consistent hashing's spread
/// (not one lumpy arc) dominates the capacity metric.
const HOOKS: u32 = 24;
const WORKERS_PER_NODE: usize = 2;
/// Concurrent exchanges per node (CoAP NSTART) on the windowed runs.
const WINDOW: usize = 8;
/// Cores needed before the wall-scaling assertion is meaningful: the
/// 4 nodes' worker threads plus the front tier and the OS must not be
/// fighting for the same core.
const WALL_ASSERT_MIN_CORES: usize = 10;

/// The same §8.3-style responder-with-compute bench_host uses.
fn responder_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm(
            "\
    mov r6, r1
    mov r1, 1
    mov r2, r10
    add r2, -8
    call bpf_fetch_shared
    ldxw r7, [r10-8]
    mov r8, 150
spin:
    add r7, 3
    sub r8, 1
    jne r8, 0, spin
    and r7, 0xffff
    mov r1, r6
    mov r2, 0x45
    call bpf_gcoap_resp_init
    mov r1, r6
    mov r2, 0
    call bpf_coap_add_format
    mov r1, r6
    call bpf_coap_opt_finish
    mov r8, r0
    ldxdw r1, [r6]
    add r1, r8
    mov r2, r7
    call bpf_fmt_u32_dec
    add r0, r8
    exit
",
        )
        .expect("assembles")
        .build()
}

fn provisioned_node(maintainer: &SigningKey) -> LocalNode {
    let mut node = LocalNode::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig {
            workers: WORKERS_PER_NODE,
            queue_capacity: 4096,
            drain_batch: 32,
            ..HostConfig::default()
        },
    );
    for t in 0..HOOKS {
        node.updates_mut().provision_tenant(
            format!("bench-t{t}").as_bytes(),
            maintainer.verifying_key(),
            t,
        );
        node.host()
            .env()
            .stores()
            .store(0, t, fc_kvstore::Scope::Tenant, 1, 2000 + t as i64)
            .expect("seeds tenant value");
    }
    node
}

/// Builds a fleet of `nodes` codec-adapter nodes at `loss` with the
/// given transport window, registers the hooks and SUIT-deploys the
/// responder onto each.
fn build_fleet(
    maintainer: &SigningKey,
    nodes: usize,
    loss: f64,
    window: usize,
) -> (FcFleet, Vec<Uuid>) {
    let mut fleet = FcFleet::new(FleetConfig::default());
    for i in 0..nodes {
        let remote = RemoteNode::new(
            provisioned_node(maintainer),
            RemoteConfig {
                link: LinkConfig {
                    loss,
                    duplicate: loss / 2.0,
                    jitter_us: if loss > 0.0 { 20_000 } else { 0 },
                    mtu: FLEET_MTU,
                    seed: 0x000f_1ee7 + i as u64,
                    ..LinkConfig::default()
                },
                max_retransmit: 8,
                window,
                ..RemoteConfig::default()
            },
        );
        fleet.add_node(Box::new(remote)).expect("node admitted");
    }
    let app = responder_program();
    let mut hooks = Vec::new();
    for t in 0..HOOKS {
        let hook = Hook::new(
            &format!("fleet-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        hooks.push(hook.id);
        fleet
            .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .expect("hook registered");
        let (envelope, payload) = author_update(
            &app,
            hooks[t as usize],
            1,
            &format!("t{t}-v1"),
            maintainer,
            format!("bench-t{t}").as_bytes(),
        );
        let (_, report) = fleet.deploy(&envelope, &payload).expect("deploy accepted");
        assert!(report.attached);
    }
    (fleet, hooks)
}

struct FleetRun {
    nodes: usize,
    loss: f64,
    window: usize,
    wall_eps: f64,
    virtual_us: u64,
    virtual_eps: f64,
    capacity_eps: f64,
    p99_us: f64,
    hooks_per_node: Vec<usize>,
    dispatched: u64,
    retransmits: u64,
    in_flight_hwm: u64,
    out_of_order: u64,
    srtt_us: u64,
}

/// Offers `events` uniformly over the hooks in waves — one 16-event
/// batch per hook per wave, all hooks submitted together so every
/// owner node's window fills — and checks the exactly-once ledger.
fn fleet_run(
    maintainer: &SigningKey,
    nodes: usize,
    loss: f64,
    events: u64,
    window: usize,
) -> FleetRun {
    let (mut fleet, hooks) = build_fleet(maintainer, nodes, loss, window);
    let mut hooks_per_node = vec![0usize; nodes];
    for &hook in &hooks {
        hooks_per_node[fleet.owner_of(hook).expect("owned")] += 1;
    }
    let per_hook = events / HOOKS as u64;
    let event = || HookEvent {
        ctx: fc_core::helpers_impl::coap_ctx_bytes(64),
        extra: vec![fc_core::engine::HostRegion::read_write("pkt", vec![0; 64])],
    };
    let started = Instant::now();
    let mut remaining = per_hook;
    while remaining > 0 {
        let n = remaining.min(16) as usize;
        let work: Vec<(Uuid, Vec<HookEvent>)> = hooks
            .iter()
            .map(|&hook| (hook, (0..n).map(|_| event()).collect()))
            .collect();
        for replies in fleet.dispatch_all(work) {
            for reply in replies.expect("batch served") {
                let report = reply.expect("event neither lost nor shed");
                assert!(
                    report.combined.unwrap_or(0) > 4,
                    "responder formatted a PDU"
                );
            }
        }
        remaining -= n as u64;
    }
    let wall = started.elapsed();
    let offered = per_hook * HOOKS as u64;
    let platform = Platform::CortexM4;
    let mut dispatched = 0u64;
    let mut shed = 0u64;
    let mut max_busy_us = f64::MIN_POSITIVE;
    let mut p99_ns = 0u64;
    for (node, stats) in fleet.stats() {
        let stats = stats.unwrap_or_else(|e| panic!("node {node} stats: {e}"));
        dispatched += stats.dispatched;
        shed += stats.shed;
        max_busy_us = max_busy_us.max(platform.us_from_cycles(stats.max_shard_busy_cycles));
        p99_ns = p99_ns.max(stats.p99_ns);
    }
    assert_eq!(
        dispatched, offered,
        "exactly-once at loss {loss}: every offered event executed once"
    );
    assert_eq!(shed, 0, "exactly-once at loss {loss}: nothing shed");
    let mut virtual_us = 0u64;
    let mut retransmits = 0u64;
    let mut in_flight_hwm = 0u64;
    let mut out_of_order = 0u64;
    let mut srtt_us = 0u64;
    for (_, t) in fleet.transport_stats() {
        // Nodes run concurrently; the fleet finishes when the slowest
        // node's virtual clock does.
        virtual_us = virtual_us.max(t.virtual_now_us);
        retransmits += t.retransmits;
        in_flight_hwm = in_flight_hwm.max(t.in_flight_hwm);
        out_of_order += t.completed_out_of_order;
        srtt_us = srtt_us.max(t.srtt_us);
    }
    FleetRun {
        nodes,
        loss,
        window,
        wall_eps: offered as f64 / wall.as_secs_f64(),
        virtual_us,
        virtual_eps: offered as f64 * 1e6 / virtual_us.max(1) as f64,
        capacity_eps: offered as f64 * 1e6 / max_busy_us,
        p99_us: p99_ns as f64 / 1e3,
        hooks_per_node,
        dispatched,
        retransmits,
        in_flight_hwm,
        out_of_order,
        srtt_us,
    }
}

struct FanoutRun {
    nodes: usize,
    loss: f64,
    deploys: u64,
    mean_fanout_ms: f64,
    max_fanout_ms: f64,
}

/// Pushes `rounds` signed updates to EVERY node of the fleet — all
/// nodes' stage/deploy sequences driven concurrently — and measures
/// the wall latency of each full fan-out.
fn fanout_run(maintainer: &SigningKey, nodes: usize, loss: f64, rounds: u64) -> FanoutRun {
    let (mut fleet, hooks) = build_fleet(maintainer, nodes, loss, WINDOW);
    let app = responder_program();
    let mut latencies_ms = Vec::new();
    for round in 0..rounds {
        let t = (round % HOOKS as u64) as usize;
        let version = 2 + round / HOOKS as u64;
        let (envelope, payload) = author_update(
            &app,
            hooks[t],
            version,
            &format!("t{t}-v{version}"),
            maintainer,
            format!("bench-t{t}").as_bytes(),
        );
        let started = Instant::now();
        let outcomes = fleet.deploy_fanout(&envelope, &payload);
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(outcomes.len(), nodes);
        let owner = fleet.owner_of(hooks[t]).expect("owned");
        for (node, outcome) in outcomes {
            let report = outcome.unwrap_or_else(|e| panic!("node {node} rejected fan-out: {e}"));
            assert_eq!(report.attached, node == owner);
        }
    }
    FanoutRun {
        nodes,
        loss,
        deploys: rounds,
        mean_fanout_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        max_fanout_ms: latencies_ms.iter().copied().fold(0.0, f64::max),
    }
}

/// Splices `section` in as the (single) `"fleet"` key of
/// BENCH_host.json, preserving everything bench_host wrote. The fleet
/// section is kept last so re-runs of either binary are idempotent.
fn splice_fleet_section(section: &str) {
    let base = std::fs::read_to_string("BENCH_host.json")
        .unwrap_or_else(|_| "{\n  \"bench\": \"host\"\n}\n".to_owned());
    let head = match base.find(",\n  \"fleet\":") {
        Some(idx) => base[..idx].to_owned(),
        None => {
            let trimmed = base.trim_end();
            let trimmed = trimmed
                .strip_suffix('}')
                .expect("BENCH_host.json is a JSON object")
                .trim_end();
            trimmed.to_owned()
        }
    };
    let out = format!("{head},\n  \"fleet\": {section}\n}}\n");
    std::fs::write("BENCH_host.json", out).expect("writes BENCH_host.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let events: u64 = if quick { 2_400 } else { 12_000 };
    let fanouts: u64 = if quick { 6 } else { 24 };
    let maintainer = SigningKey::from_seed(b"bench-fleet-maintainer");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!(
        "fleet load mix: {HOOKS} hooks, {WORKERS_PER_NODE} workers/node, window {WINDOW}, {events} events/run over the codec adapter ({cores} cores)"
    );
    let mut runs = Vec::new();
    for &loss in &[0.0, 0.05] {
        for &nodes in &[1usize, 2, 4] {
            let r = fleet_run(&maintainer, nodes, loss, events, WINDOW);
            println!(
                "nodes {nodes} loss {loss:4.2}: wall {:8.0} ev/s   virtual {:8.0} ev/s   capacity {:9.0} ev/s   p99 {:7.1} µs   hooks/node {:?}",
                r.wall_eps, r.virtual_eps, r.capacity_eps, r.p99_us, r.hooks_per_node
            );
            println!(
                "            transport: retransmits {:4}   in-flight hwm {:2}   out-of-order {:4}   srtt {:6} µs",
                r.retransmits, r.in_flight_hwm, r.out_of_order, r.srtt_us
            );
            runs.push(r);
        }
    }
    // The stop-and-wait regression tripwire: the same 4-node workload
    // with window = 1 must take several times the virtual link time
    // the windowed transport takes. Deterministic per seed, so it
    // holds on any box.
    let mut baseline = Vec::new();
    for &loss in &[0.0, 0.05] {
        let r = fleet_run(&maintainer, 4, loss, events, 1);
        println!(
            "window-1 baseline, 4 nodes, loss {loss:4.2}: wall {:8.0} ev/s   virtual {:8.0} ev/s",
            r.wall_eps, r.virtual_eps
        );
        baseline.push(r);
    }
    let pick = |rs: &[FleetRun], nodes: usize, loss: f64| -> (f64, u64, f64) {
        let r = rs
            .iter()
            .find(|r| r.nodes == nodes && r.loss == loss)
            .expect("run exists");
        (r.capacity_eps, r.virtual_us, r.wall_eps)
    };
    let scaling = pick(&runs, 4, 0.0).0 / pick(&runs, 1, 0.0).0;
    let lossy_scaling = pick(&runs, 4, 0.05).0 / pick(&runs, 1, 0.05).0;
    let wall_scaling = pick(&runs, 4, 0.0).2 / pick(&runs, 1, 0.0).2;
    let window_speedup = pick(&baseline, 4, 0.0).1 as f64 / pick(&runs, 4, 0.0).1.max(1) as f64;
    let lossy_window_speedup =
        pick(&baseline, 4, 0.05).1 as f64 / pick(&runs, 4, 0.05).1.max(1) as f64;
    println!("capacity scaling 1→4 nodes: lossless {scaling:.2}x, 5% loss {lossy_scaling:.2}x");
    println!(
        "wall scaling 1→4 nodes: {wall_scaling:.2}x ({cores} cores; asserted ≥ 1.8 only with ≥ {WALL_ASSERT_MIN_CORES})"
    );
    println!(
        "windowed vs stop-and-wait virtual time, 4 nodes: lossless {window_speedup:.2}x, 5% loss {lossy_window_speedup:.2}x"
    );

    let mut fanout_runs = Vec::new();
    for &loss in &[0.0, 0.05] {
        let r = fanout_run(&maintainer, 4, loss, fanouts);
        println!(
            "deploy fan-out, 4 nodes, loss {loss:4.2}: {} fan-outs   mean {:7.2} ms   max {:7.2} ms",
            r.deploys, r.mean_fanout_ms, r.max_fanout_ms
        );
        fanout_runs.push(r);
    }

    // --- Splice the fleet section into BENCH_host.json --------------
    let mut s = String::from("{\n");
    s.push_str(&format!("    \"quick\": {quick},\n"));
    s.push_str(&format!("    \"hooks\": {HOOKS},\n"));
    s.push_str(&format!("    \"workers_per_node\": {WORKERS_PER_NODE},\n"));
    s.push_str(&format!("    \"window\": {WINDOW},\n"));
    s.push_str(&format!("    \"events_per_run\": {events},\n"));
    s.push_str(&format!("    \"host_cores\": {cores},\n"));
    s.push_str("    \"load\": \"per-wave batched dispatch_all over per-hook responders, all ring owners' transport windows driven concurrently; every node behind the CoAP codec adapter on a seeded lossy link (duplicate = loss/2, 20ms jitter when lossy); all deploys via fleet SUIT lane\",\n");
    s.push_str("    \"runs\": [\n");
    for (i, r) in runs.iter().chain(baseline.iter()).enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"loss\": {:.2}, \"window\": {}, \"wall_events_per_sec\": {:.0}, \"virtual_events_per_sec\": {:.0}, \"virtual_time_us\": {}, \"capacity_events_per_sec\": {:.0}, \"p99_dispatch_us\": {:.1}, \"hooks_per_node\": {:?}, \"dispatched\": {}, \"retransmits\": {}, \"in_flight_hwm\": {}, \"out_of_order\": {}, \"srtt_us\": {}}}{}\n",
            r.nodes,
            r.loss,
            r.window,
            r.wall_eps,
            r.virtual_eps,
            r.virtual_us,
            r.capacity_eps,
            r.p99_us,
            r.hooks_per_node,
            r.dispatched,
            r.retransmits,
            r.in_flight_hwm,
            r.out_of_order,
            r.srtt_us,
            if i + 1 < runs.len() + baseline.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"capacity_scaling_1_to_4_nodes\": {scaling:.2},\n"
    ));
    s.push_str(&format!(
        "    \"capacity_scaling_1_to_4_nodes_at_5pct_loss\": {lossy_scaling:.2},\n"
    ));
    s.push_str(&format!(
        "    \"wall_scaling_1_to_4_nodes\": {wall_scaling:.2},\n"
    ));
    s.push_str(&format!(
        "    \"wall_scaling_asserted\": {},\n",
        cores >= WALL_ASSERT_MIN_CORES
    ));
    s.push_str(&format!(
        "    \"window_speedup_virtual_time_4_nodes\": {window_speedup:.2},\n"
    ));
    s.push_str(&format!(
        "    \"window_speedup_virtual_time_4_nodes_at_5pct_loss\": {lossy_window_speedup:.2},\n"
    ));
    s.push_str("    \"deploy_fanout\": [\n");
    for (i, r) in fanout_runs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"loss\": {:.2}, \"fanouts\": {}, \"mean_fanout_ms\": {:.2}, \"max_fanout_ms\": {:.2}}}{}\n",
            r.nodes,
            r.loss,
            r.deploys,
            r.mean_fanout_ms,
            r.max_fanout_ms,
            if i + 1 < fanout_runs.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str("    \"metric_note\": \"capacity = events / max per-node busy time (each node's hottest shard, simulated cycles): the throughput the ring layout sustains with real hardware per node. Virtual events/s = events / max per-node virtual link time — deterministic per seed, the window-vs-stop-and-wait comparison. Wall events/s includes the real front tier and is bounded by host_cores; the 1.8x wall-scaling assertion arms only at 10+ cores. Exactly-once is asserted at every loss rate: summed per-node dispatched == offered, shed == 0.\",\n");
    s.push_str("    \"semantics\": \"a 1-node fleet over a lossless link at window 1 is bit-identical to a bare FcHost; window > 1 relinquishes cross-batch ordering only (RFC 7252 4.7); lossy runs lose no events and double-execute none (tests/host_differential.rs, crates/fleet/tests)\"\n");
    s.push_str("  }");
    splice_fleet_section(&s);
    println!("spliced fleet section into BENCH_host.json");

    assert!(
        scaling >= 2.0,
        "fleet capacity scaling 1→4 nodes regressed below 2.0x: {scaling:.2}"
    );
    assert!(
        lossy_scaling >= 2.0,
        "lossy fleet capacity scaling regressed below 2.0x: {lossy_scaling:.2}"
    );
    // The deterministic windowed-transport assertions: if someone
    // regresses the transport back to stop-and-wait, the virtual link
    // time collapses onto the baseline and these fail — on any box.
    assert!(
        window_speedup >= 2.5,
        "windowed transport no faster than stop-and-wait in virtual time: {window_speedup:.2}x"
    );
    assert!(
        lossy_window_speedup >= 2.0,
        "lossy windowed transport no faster than stop-and-wait in virtual time: {lossy_window_speedup:.2}x"
    );
    // Wall scaling needs real cores to mean anything: with the 4-node
    // fleet's 8 worker threads multiplexed onto a 1-2 core CI box,
    // wall time measures the scheduler, not the transport. Assert the
    // target ratio when the box can physically show it; always assert
    // the no-collapse floor.
    if cores >= WALL_ASSERT_MIN_CORES {
        assert!(
            wall_scaling >= 1.8,
            "fleet wall scaling 1→4 nodes regressed below 1.8x on a {cores}-core box: {wall_scaling:.2}"
        );
    }
    assert!(
        wall_scaling >= 0.5,
        "fleet wall throughput collapsed going 1→4 nodes: {wall_scaling:.2}x"
    );
    for r in &fanout_runs {
        assert!(
            r.mean_fanout_ms > 0.0 && r.deploys > 0,
            "fan-outs must have landed"
        );
    }
    // The ring must actually spread hooks at 4 nodes.
    let spread = runs
        .iter()
        .find(|r| r.nodes == 4 && r.loss == 0.0)
        .expect("run exists");
    assert!(
        spread.hooks_per_node.iter().filter(|n| **n > 0).count() >= 3,
        "hooks concentrated: {:?}",
        spread.hooks_per_node
    );
}
