//! Hosting-runtime throughput tracker: drives the `fc-host` concurrent
//! runtime with a multi-tenant CoAP load mix and emits
//! `BENCH_host.json` at the workspace root.
//!
//! Measurements per worker count (1/2/4/8):
//!
//! * **wall events/s** — offered events divided by wall-clock time
//!   from first fire to quiescence. On a multi-core host this is the
//!   headline number; on a core-starved CI box it flatlines because
//!   the workers time-slice one CPU.
//! * **capacity events/s** — offered events divided by the *maximum
//!   per-shard busy time* (each worker's wall-clock nanoseconds spent
//!   executing events). This is the schedulable-throughput metric:
//!   it reflects how evenly the shard map spreads the load and what
//!   the same worker count would sustain given a core each, and it is
//!   what the 1→4 worker scaling criterion is computed from.
//! * **p50/p99 dispatch latency** — enqueue → completion, from the
//!   host's lock-free histogram.
//! * **shed rate under overload** — a separate run with tiny bounded
//!   queues and the load offered as fast as one producer can enqueue.
//! * **batched vs single dispatch** — the same uniform mix offered
//!   per event and in batches of 32 (one queue round-trip per hook per
//!   batch).
//! * **skewed 80/20 rebalance** — a hot-set mix whose hot hooks
//!   collide on two shards under round-robin placement; run with
//!   static placement, with the [`fc_host::Rebalancer`] observing
//!   between rounds (caller-driven), and with the host's **in-band**
//!   trigger observing itself every N dispatched events — zero
//!   `observe()` calls. The JSON records the balance recovering, the
//!   capacity gained, and in-band/caller-driven parity.
//! * **live deploy** — SUIT-signed deploys landing through the shard
//!   control lane while a producer thread keeps the host loaded:
//!   per-deploy latency (submission → installed + attached + old
//!   container retired) at each worker count, with the host never
//!   quiescing.
//!
//! Pass `--quick` for a smoke run (CI-sized budgets).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use fc_core::contract::{ContractOffer, ContractRequest};
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_host::{
    CoapFront, CrashPlan, CrashPoint, DurabilityConfig, FcHost, HookEvent, HostConfig, HostError,
    JournalMedia, LiveUpdateService, LocalNode, NodeService, RebalanceConfig, Rebalancer,
    ShedPolicy, TelemetryConfig,
};
use fc_net::load::{CoapLoadGen, LoadShape};
use fc_rbpf::helpers::ids;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::{SigningKey, Uuid};

const TENANTS: u32 = 8;

/// A CoAP responder with a compute kernel: fetches the tenant's sensor
/// value, chews on it (~500 instructions), then formats a 2.05 Content
/// response — the paper's §8.3 response logic scaled up to a load mix
/// where execution, not enqueueing, dominates.
fn responder_src() -> &'static str {
    "\
; CoAP responder with compute kernel
    mov r6, r1             ; keep coap ctx
    mov r1, 1              ; SENSOR_VALUE_KEY
    mov r2, r10
    add r2, -8
    call bpf_fetch_shared
    ldxw r7, [r10-8]       ; value
    mov r8, 150
spin:
    add r7, 3
    sub r8, 1
    jne r8, 0, spin
    and r7, 0xffff
    mov r1, r6
    mov r2, 0x45           ; 2.05 Content
    call bpf_gcoap_resp_init
    mov r1, r6
    mov r2, 0              ; text/plain
    call bpf_coap_add_format
    mov r1, r6
    call bpf_coap_opt_finish
    mov r8, r0             ; payload offset
    ldxdw r1, [r6]         ; pkt buffer address
    add r1, r8
    mov r2, r7
    call bpf_fmt_u32_dec
    add r0, r8             ; total PDU length
    exit
"
}

fn responder_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm(responder_src())
        .expect("assembles")
        .build()
}

fn responder_image() -> Vec<u8> {
    responder_program().to_bytes()
}

fn responder_request() -> ContractRequest {
    ContractRequest::helpers([
        ids::BPF_FETCH_SHARED,
        ids::BPF_GCOAP_RESP_INIT,
        ids::BPF_COAP_ADD_FORMAT,
        ids::BPF_COAP_OPT_FINISH,
        ids::BPF_FMT_U32_DEC,
    ])
}

/// Builds a host with one CoAP hook + responder per tenant and the
/// front-end routing `t<i>/temp` onto tenant i's hook.
fn build_host(workers: usize, config: HostConfig) -> (FcHost, CoapFront, Vec<Uuid>) {
    populate_host(FcHost::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig { workers, ..config },
    ))
}

/// Installs the tenant hooks, responders and routes on an
/// already-constructed host (plain or durable).
fn populate_host(host: FcHost) -> (FcHost, CoapFront, Vec<Uuid>) {
    let mut front = CoapFront::new().with_pkt_len(64);
    let image = responder_image();
    let mut hooks = Vec::new();
    for t in 0..TENANTS {
        let hook = Hook::new(
            &format!("coap-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        let hook_id = hook.id;
        host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        host.env()
            .stores()
            .store(0, t, fc_kvstore::Scope::Tenant, 1, 2000 + t as i64)
            .expect("seeds tenant value");
        let c = host
            .install(&format!("responder-t{t}"), t, &image, responder_request())
            .expect("installs");
        host.attach(c, hook_id).expect("attaches");
        front.add_route(&format!("t{t}/temp"), hook_id);
        hooks.push(hook_id);
    }
    (host, front, hooks)
}

struct RunResult {
    workers: usize,
    wall_eps: f64,
    capacity_eps: f64,
    p50_us: f64,
    p99_us: f64,
    sim_busy_ms: Vec<f64>,
    balance: f64,
}

/// Fires `events` uniform CoAP requests and measures throughput.
fn throughput_run(workers: usize, events: u64) -> RunResult {
    let config = HostConfig {
        queue_capacity: 4096,
        drain_batch: 32,
        shed: ShedPolicy::DropNewest,
        ..HostConfig::default()
    };
    let (host, front, _) = build_host(workers, config);
    let mut gen = CoapLoadGen::new(
        (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
        0xfc_0522,
        LoadShape::Uniform,
    );
    let started = Instant::now();
    let mut fired = 0u64;
    while fired < events {
        let (_, req) = gen.next_request();
        loop {
            match front.dispatch(&host, &req) {
                Ok(_) => break,
                Err(HostError::Shed) => std::thread::yield_now(),
                Err(e) => panic!("dispatch failed: {e}"),
            }
        }
        fired += 1;
    }
    host.quiesce();
    let wall = started.elapsed();
    let stats = host.stats();
    assert_eq!(stats.dispatched.load(Ordering::Relaxed), events);
    assert_eq!(
        stats.faults.load(Ordering::Relaxed),
        0,
        "no responder faults"
    );
    let p50_us = stats.latency.quantile_ns(0.50) as f64 / 1e3;
    let p99_us = stats.latency.quantile_ns(0.99) as f64 / 1e3;
    // Per-shard busy time in *simulated platform time* (the repo's
    // standard cycle-model methodology): preemption-free, so the
    // capacity metric is meaningful even when the CI box has fewer
    // cores than workers and wall-clock time-slices the threads.
    let platform = host.platform();
    let sim_busy_ms: Vec<f64> = host
        .shard_reports()
        .iter()
        .map(|r| platform.us_from_cycles(r.sim_cycles) / 1e3)
        .collect();
    let max_busy_ms = sim_busy_ms
        .iter()
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let total_busy_ms: f64 = sim_busy_ms.iter().sum();
    RunResult {
        workers,
        wall_eps: events as f64 / wall.as_secs_f64(),
        capacity_eps: events as f64 * 1e3 / max_busy_ms,
        p50_us,
        p99_us,
        sim_busy_ms,
        balance: total_busy_ms / (max_busy_ms * workers.max(1) as f64),
    }
}

struct BatchedResult {
    batch_size: usize,
    single_eps: f64,
    batched_eps: f64,
    batch_round_trips: u64,
}

/// The same uniform mix offered per event and in batches: the batched
/// path pays one queue round-trip per hook per batch instead of one
/// per event. Wall-clock on a shared box is noisy, so the producers
/// alternate over three trials and each reports its best — the
/// standard peak-throughput protocol.
fn batched_comparison(workers: usize, events: u64, batch_size: usize) -> BatchedResult {
    let config = HostConfig {
        queue_capacity: 4096,
        drain_batch: 32,
        shed: ShedPolicy::DropNewest,
        ..HostConfig::default()
    };
    let paths: Vec<String> = (0..TENANTS).map(|t| format!("t{t}/temp")).collect();
    let mut single_eps = 0f64;
    let mut batched_eps = 0f64;
    let mut batch_round_trips = 0u64;
    for _trial in 0..3 {
        // Single-event producer.
        let (host, front, _) = build_host(workers, config);
        let mut gen = CoapLoadGen::new(paths.clone(), 0xfc_0522, LoadShape::Uniform);
        let started = Instant::now();
        let mut fired = 0u64;
        while fired < events {
            let (_, req) = gen.next_request();
            loop {
                match front.dispatch(&host, &req) {
                    Ok(_) => break,
                    Err(HostError::Shed) => std::thread::yield_now(),
                    Err(e) => panic!("dispatch failed: {e}"),
                }
            }
            fired += 1;
        }
        host.quiesce();
        single_eps = single_eps.max(events as f64 / started.elapsed().as_secs_f64());
        drop(host);

        // Batched producer over the identical stream.
        let (host, front, _) = build_host(workers, config);
        let mut gen = CoapLoadGen::new(paths.clone(), 0xfc_0522, LoadShape::Uniform);
        let started = Instant::now();
        let mut accepted = 0u64;
        while accepted < events {
            let n = batch_size.min((events - accepted) as usize);
            let requests: Vec<fc_net::coap::Message> =
                gen.next_batch(n).into_iter().map(|(_, r)| r).collect();
            let out = front.dispatch_batch_nowait(&host, &requests);
            accepted += out.accepted as u64;
            if out.rejected + out.displaced > 0 {
                std::thread::yield_now();
            }
        }
        host.quiesce();
        batched_eps = batched_eps.max(accepted as f64 / started.elapsed().as_secs_f64());
        batch_round_trips = host.stats().batches.load(Ordering::Relaxed);
    }
    BatchedResult {
        batch_size,
        single_eps,
        batched_eps,
        batch_round_trips,
    }
}

struct TelemetryOverheadResult {
    off_eps: f64,
    on_eps: f64,
    off_cpu_ns_per_event: Option<f64>,
    on_cpu_ns_per_event: Option<f64>,
    overhead_pct: f64,
    basis: &'static str,
}

/// Sum of on-CPU nanoseconds across the live threads of this process
/// (`/proc/self/task/*/schedstat`). Wall clock on a shared box is
/// hostage to whatever else the machine is running; CPU time counts
/// the work itself, which is what makes a low-single-digit-percent
/// comparison measurable at all. `None` when the kernel doesn't
/// expose schedstat (the caller falls back to wall clock).
fn process_cpu_ns() -> Option<u64> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut total = 0u64;
    for task in tasks.flatten() {
        // A thread that exits mid-scan simply drops out of the sum;
        // the measured hosts keep their workers alive across the
        // window, so the delta only ever covers live threads.
        if let Ok(stat) = std::fs::read_to_string(task.path().join("schedstat")) {
            if let Some(runtime) = stat.split_whitespace().next() {
                total += runtime.parse::<u64>().ok()?;
            }
        }
    }
    if total == 0 {
        None
    } else {
        Some(total)
    }
}

/// The observability tax on the dispatch hot path: the identical
/// uniform mix with the telemetry registry enabled (the default) and
/// fully disabled, alternating over five trials after a discarded
/// warmup. Each side reports its best wall events/s, but the overhead
/// verdict is based on per-trial *CPU time* deltas (minimum across
/// trials — the run least polluted by neighbours): the effect being
/// measured is a few relaxed atomics per event, far below the wall
/// noise of a shared box. The trial budget is floored well above the
/// --quick event count for the same reason: a 5 ms trial measures the
/// scheduler, not the registry.
fn telemetry_overhead(workers: usize, events: u64) -> TelemetryOverheadResult {
    let events = events.max(16_000);
    let run = |telemetry: TelemetryConfig| -> (f64, Option<u64>) {
        // Queues sized for the whole budget: nothing sheds, so the
        // producer never spins in a yield loop whose CPU burn would
        // depend on scheduler interleaving — the difference being
        // measured is smaller than that churn.
        let config = HostConfig {
            queue_capacity: events as usize + 1,
            drain_batch: 32,
            shed: ShedPolicy::DropNewest,
            telemetry,
            ..HostConfig::default()
        };
        let (host, front, _) = build_host(workers, config);
        let mut gen = CoapLoadGen::new(
            (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
            0xfc_0522,
            LoadShape::Uniform,
        );
        let cpu_before = process_cpu_ns();
        let started = Instant::now();
        for _ in 0..events {
            let (_, req) = gen.next_request();
            front.dispatch(&host, &req).expect("queues hold the budget");
        }
        host.quiesce();
        let wall = started.elapsed();
        // Workers idle on their inbox condvars after quiesce(), so the
        // delta is exactly the cost of accepting and dispatching the
        // budget. The host (and its threads) outlive the snapshot.
        let cpu = match (cpu_before, process_cpu_ns()) {
            (Some(before), Some(after)) if after > before => Some(after - before),
            _ => None,
        };
        (events as f64 / wall.as_secs_f64(), cpu)
    };
    let off_config = TelemetryConfig {
        enabled: false,
        trace_capacity: 0,
    };
    run(TelemetryConfig::default()); // warmup: pay the cold caches once
    let mut on_eps = 0f64;
    let mut off_eps = 0f64;
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for _trial in 0..7 {
        let (eps, on_cpu) = run(TelemetryConfig::default());
        on_eps = on_eps.max(eps);
        let (eps, off_cpu) = run(off_config);
        off_eps = off_eps.max(eps);
        if let (Some(on), Some(off)) = (on_cpu, off_cpu) {
            pairs.push((on, off));
        }
    }
    let per_event = |cpu: Option<u64>| cpu.map(|ns| ns as f64 / events as f64);
    let (min_on, min_off) = (
        pairs.iter().map(|p| p.0).min(),
        pairs.iter().map(|p| p.1).min(),
    );
    let (overhead_pct, basis) = match (min_on, min_off) {
        (Some(min_on), Some(min_off)) => {
            let floor = min_on as f64 / min_off as f64;
            let mut ratios: Vec<f64> = pairs
                .iter()
                .map(|&(on, off)| on as f64 / off as f64)
                .collect();
            ratios.sort_by(f64::total_cmp);
            let median = ratios[ratios.len() / 2];
            // Neighbour interference only ever *inflates* a trial's
            // CPU time, so both the cleanest-run ratio and the median
            // pair ratio over-estimate the true overhead; report the
            // tighter of the two upper bounds.
            ((floor.min(median) - 1.0) * 100.0, "cpu")
        }
        _ => ((off_eps / on_eps - 1.0) * 100.0, "wall"),
    };
    TelemetryOverheadResult {
        off_eps,
        on_eps,
        off_cpu_ns_per_event: per_event(min_off),
        on_cpu_ns_per_event: per_event(min_on),
        overhead_pct,
        basis,
    }
}

struct JournalOverheadResult {
    off_eps: f64,
    on_eps: f64,
    off_cpu_ns_per_event: Option<f64>,
    on_cpu_ns_per_event: Option<f64>,
    cpu_overhead_pct: f64,
    cpu_basis: &'static str,
    off_sim_cycles: u64,
    on_sim_cycles: u64,
    cycle_overhead_pct: f64,
}

/// The durability tax on the dispatch path: the identical uniform mix
/// on a durable host — every dispatch write-ahead committed to the
/// in-sim A/B-slot media before its outcome is released, snapshot
/// folds at the default threshold — and on a plain host.
///
/// The *gated* verdict is on the cycle model, the repo's standard
/// platform-time methodology: journaling is host-side bookkeeping
/// against in-sim media and must not leak into simulated device time,
/// so the summed per-shard `sim_cycles` of the two runs are compared
/// directly (deterministic — same seed, same mix). Host CPU cost is
/// also measured on the telemetry-overhead CPU-delta methodology
/// ([`telemetry_overhead`]) and reported for transparency, but not
/// gated: a WAL commit per event is real work whose relative cost
/// depends on how many cores back the worker pool, which is a property
/// of the box, not of the dispatch path.
fn journal_overhead(workers: usize, events: u64) -> JournalOverheadResult {
    let events = events.max(16_000);
    let run = |durable: bool| -> (f64, Option<u64>, u64) {
        let config = HostConfig {
            workers,
            queue_capacity: events as usize + 1,
            drain_batch: 32,
            shed: ShedPolicy::DropNewest,
            ..HostConfig::default()
        };
        let host = if durable {
            let media = JournalMedia::new();
            FcHost::with_durability(
                Platform::CortexM4,
                Engine::FemtoContainer,
                config,
                &media,
                DurabilityConfig::default(),
            )
        } else {
            FcHost::new(Platform::CortexM4, Engine::FemtoContainer, config)
        };
        let (host, front, _) = populate_host(host);
        let mut gen = CoapLoadGen::new(
            (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
            0xfc_0508,
            LoadShape::Uniform,
        );
        let cpu_before = process_cpu_ns();
        let started = Instant::now();
        for _ in 0..events {
            let (_, req) = gen.next_request();
            front.dispatch(&host, &req).expect("queues hold the budget");
        }
        host.quiesce();
        let wall = started.elapsed();
        let cpu = match (cpu_before, process_cpu_ns()) {
            (Some(before), Some(after)) if after > before => Some(after - before),
            _ => None,
        };
        let sim_cycles: u64 = host.shard_reports().iter().map(|r| r.sim_cycles).sum();
        (events as f64 / wall.as_secs_f64(), cpu, sim_cycles)
    };
    run(true); // warmup: pay the cold caches once
    let mut on_eps = 0f64;
    let mut off_eps = 0f64;
    let mut on_sim_cycles = 0u64;
    let mut off_sim_cycles = 0u64;
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for _trial in 0..7 {
        let (eps, on_cpu, on_cycles) = run(true);
        on_eps = on_eps.max(eps);
        on_sim_cycles = on_cycles;
        let (eps, off_cpu, off_cycles) = run(false);
        off_eps = off_eps.max(eps);
        off_sim_cycles = off_cycles;
        if let (Some(on), Some(off)) = (on_cpu, off_cpu) {
            pairs.push((on, off));
        }
    }
    let per_event = |cpu: Option<u64>| cpu.map(|ns| ns as f64 / events as f64);
    let (min_on, min_off) = (
        pairs.iter().map(|p| p.0).min(),
        pairs.iter().map(|p| p.1).min(),
    );
    let (cpu_overhead_pct, cpu_basis) = match (min_on, min_off) {
        (Some(min_on), Some(min_off)) => {
            let floor = min_on as f64 / min_off as f64;
            let mut ratios: Vec<f64> = pairs
                .iter()
                .map(|&(on, off)| on as f64 / off as f64)
                .collect();
            ratios.sort_by(f64::total_cmp);
            let median = ratios[ratios.len() / 2];
            ((floor.min(median) - 1.0) * 100.0, "cpu")
        }
        _ => ((off_eps / on_eps - 1.0) * 100.0, "wall"),
    };
    JournalOverheadResult {
        off_eps,
        on_eps,
        off_cpu_ns_per_event: per_event(min_off),
        on_cpu_ns_per_event: per_event(min_on),
        cpu_overhead_pct,
        cpu_basis,
        off_sim_cycles,
        on_sim_cycles,
        cycle_overhead_pct: (on_sim_cycles as f64 / off_sim_cycles as f64 - 1.0) * 100.0,
    }
}

struct RecoveryResult {
    commits: u64,
    journal_bytes: u64,
    restore_ms: f64,
    replay_eps: f64,
}

/// Crash-recovery cost versus journal length: a durable [`LocalNode`]
/// accumulates `commits` journaled dispatches with snapshot folding
/// disabled (so the journal length is the independent variable), is
/// powered off mid-exchange, and [`LocalNode::restore`] — media
/// recovery, hook re-registration, deploy + kv replay, counter
/// seeding, resume-cache rebuild — is timed wall-clock.
fn recovery_run(commits: u64) -> RecoveryResult {
    let durability = || DurabilityConfig {
        enabled: true,
        snapshot_threshold: 0,
        retain_exchanges: 128,
    };
    let host_config = || HostConfig {
        workers: 2,
        queue_capacity: 4096,
        ..HostConfig::default()
    };
    let media = JournalMedia::new();
    let mut node = LocalNode::durable(
        Platform::CortexM4,
        Engine::FemtoContainer,
        host_config(),
        &media,
        durability(),
    );
    let key = SigningKey::from_seed(b"bench-recovery");
    node.updates_mut()
        .provision_tenant(b"bench-r", key.verifying_key(), 1);
    let hook = Hook::new("bench-recovery", HookKind::Custom, HookPolicy::First);
    let offer = ContractOffer::helpers(standard_helper_ids());
    node.register_hook(hook.clone(), offer.clone())
        .expect("registers");
    // One kv write per event, so the replay path does real work.
    let writer = ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm("ldxb r6, [r1]\nmov r1, r6\nmov r2, r6\ncall bpf_store_global\nmov r0, r6\nexit")
        .expect("assembles")
        .build();
    let (envelope, payload) =
        author_update(&writer, hook.id, 1, "bench-recovery-v1", &key, b"bench-r");
    node.stage_chunk("bench-recovery-v1", 0, &payload, true)
        .expect("stages");
    node.deploy(&envelope).expect("deploys");
    for i in 0..commits.saturating_sub(1) {
        node.dispatch(hook.id, HookEvent::new(&[(i % 251) as u8], &[]))
            .expect("dispatches");
    }
    // Power off mid-exchange: the last commit lands, its reply dies.
    media.set_crash_plan(CrashPlan {
        point: CrashPoint::PostCommitPreReply,
        after: 0,
    });
    let _ = node.dispatch_tagged(hook.id, HookEvent::new(&[255], &[]), b"bench-tok");
    let journal_bytes = media.journal_len() as u64;
    let started = Instant::now();
    let restored = LocalNode::restore(
        Platform::CortexM4,
        Engine::FemtoContainer,
        host_config(),
        &media,
        durability(),
        vec![(hook, offer)],
    )
    .expect("restores");
    let secs = started.elapsed().as_secs_f64();
    drop(restored);
    RecoveryResult {
        commits,
        journal_bytes,
        restore_ms: secs * 1e3,
        replay_eps: commits as f64 / secs,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RebalanceMode {
    /// Round-robin placement, never corrected.
    Static,
    /// `Rebalancer::observe` called between load rounds (the PR 3
    /// protocol).
    CallerDriven,
    /// The host's own dispatch-count trigger: zero `observe()` calls
    /// anywhere in the driver.
    InBand,
}

struct SkewedResult {
    whole_run_balance: f64,
    final_window_balance: f64,
    capacity_eps: f64,
    migrations: u64,
    inband_observations: u64,
}

/// The adversarial 80/20 mix: tenants {0, 1, 4, 5} take 80% of the
/// volume and — under round-robin placement of 8 hooks over 4 shards —
/// collide pairwise on shards 0 and 1. Depending on the mode the
/// imbalance is left alone, corrected by a caller-driven
/// [`Rebalancer`] between rounds, or corrected by the host itself
/// observing in-band every round's worth of dispatched events.
fn skewed_run(workers: usize, events: u64, rounds: u64, mode: RebalanceMode) -> SkewedResult {
    let rb = RebalanceConfig {
        min_balance: 0.95,
        sustain: 1,
        cooldown: 0,
        max_moves: 2,
        ..RebalanceConfig::default()
    };
    let per_round_interval = events / rounds.max(1);
    let config = HostConfig {
        queue_capacity: 4096,
        drain_batch: 32,
        shed: ShedPolicy::DropNewest,
        rebalance_interval: if mode == RebalanceMode::InBand {
            per_round_interval
        } else {
            0
        },
        rebalance: rb,
        ..HostConfig::default()
    };
    let (host, front, _) = build_host(workers, config);
    let mut gen = CoapLoadGen::weighted(
        (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
        0xfc_8020,
        &[4.0, 4.0, 1.0, 1.0, 4.0, 4.0, 1.0, 1.0],
    );
    let mut rebalancer = Rebalancer::new(rb);
    let shard_cycles = |host: &FcHost| -> Vec<u64> {
        let mut cycles = vec![0u64; workers];
        for r in host.shard_reports() {
            cycles[r.shard] = r.sim_cycles;
        }
        cycles
    };
    let balance_of = |window: &[u64]| -> f64 {
        let total: u64 = window.iter().sum();
        let max = window.iter().copied().max().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            total as f64 / (max as f64 * window.len() as f64)
        }
    };
    let per_round = events / rounds.max(1);
    let mut before_last = vec![0u64; workers];
    for round in 0..rounds {
        before_last = shard_cycles(&host);
        let mut accepted = 0u64;
        while accepted < per_round {
            let n = 32.min((per_round - accepted) as usize);
            let requests: Vec<fc_net::coap::Message> =
                gen.next_batch(n).into_iter().map(|(_, r)| r).collect();
            let out = front.dispatch_batch_nowait(&host, &requests);
            accepted += out.accepted as u64;
            if out.rejected + out.displaced > 0 {
                std::thread::yield_now();
            }
        }
        host.quiesce();
        // Observe after every round but the last: the final window
        // must show the settled placement, not react to it. (In-band
        // mode never calls observe — the host triggers itself.)
        if mode == RebalanceMode::CallerDriven && round + 1 < rounds {
            rebalancer.observe(&host).expect("rebalance succeeds");
        }
    }
    let lifetime = shard_cycles(&host);
    let final_window: Vec<u64> = lifetime
        .iter()
        .zip(&before_last)
        .map(|(now, then)| now - then)
        .collect();
    let platform = host.platform();
    let max_busy_ms = lifetime
        .iter()
        .map(|c| platform.us_from_cycles(*c) / 1e3)
        .fold(f64::MIN_POSITIVE, f64::max);
    SkewedResult {
        whole_run_balance: balance_of(&lifetime),
        final_window_balance: balance_of(&final_window),
        capacity_eps: (per_round * rounds) as f64 * 1e3 / max_busy_ms,
        migrations: host.stats().migrations.load(Ordering::Relaxed),
        inband_observations: host.stats().inband_observations.load(Ordering::Relaxed),
    }
}

struct LiveDeployResult {
    workers: usize,
    deploys: u64,
    mean_deploy_us: f64,
    max_deploy_us: f64,
    events_during: u64,
}

/// SUIT-signed deploys landing on a **loaded, never-quiesced** host:
/// a producer thread floods batched CoAP reads the whole time while
/// the main thread pushes re-deploys through the shard control lane,
/// measuring submission → swap-complete latency. Initial versions are
/// installed through the same SUIT pipeline, so every re-deploy is a
/// real replace (verify → control-lane install + attach + retire the
/// predecessor).
fn live_deploy_run(workers: usize, redeploys: u64) -> LiveDeployResult {
    let config = HostConfig {
        queue_capacity: 4096,
        drain_batch: 32,
        shed: ShedPolicy::DropNewest,
        ..HostConfig::default()
    };
    let host = FcHost::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig { workers, ..config },
    );
    let mut front = CoapFront::new().with_pkt_len(64);
    let maintainer = SigningKey::from_seed(b"bench-maintainer");
    let mut updates = LiveUpdateService::new();
    let mut hooks = Vec::new();
    for t in 0..TENANTS {
        let hook = Hook::new(
            &format!("coap-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        let hook_id = hook.id;
        host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        host.env()
            .stores()
            .store(0, t, fc_kvstore::Scope::Tenant, 1, 2000 + t as i64)
            .expect("seeds tenant value");
        front.add_route(&format!("t{t}/temp"), hook_id);
        updates.provision_tenant(
            format!("bench-t{t}").as_bytes(),
            maintainer.verifying_key(),
            t,
        );
        hooks.push(hook_id);
    }
    let app = responder_program();
    let deploy = |updates: &mut LiveUpdateService, t: usize, version: u64| -> f64 {
        let uri = format!("t{t}-v{version}");
        let (envelope, payload) = author_update(
            &app,
            hooks[t],
            version,
            &uri,
            &maintainer,
            format!("bench-t{t}").as_bytes(),
        );
        updates.stage_payload(&uri, &payload);
        let started = Instant::now();
        let report = updates.apply(&host, &envelope).expect("deploy accepted");
        let us = started.elapsed().as_secs_f64() * 1e6;
        assert!(report.attached, "deploy attached to the live hook");
        us
    };
    // Version 1 of every component, before load starts.
    for t in 0..TENANTS as usize {
        deploy(&mut updates, t, 1);
    }

    let stop = AtomicBool::new(false);
    let mut latencies_us: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let host_ref = &host;
        let front_ref = &front;
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut gen = CoapLoadGen::new(
                (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
                0xfc_11fe,
                LoadShape::Uniform,
            );
            while !stop_ref.load(Ordering::Relaxed) {
                let requests: Vec<fc_net::coap::Message> =
                    gen.next_batch(32).into_iter().map(|(_, r)| r).collect();
                let out = front_ref.dispatch_batch_nowait(host_ref, &requests);
                if out.rejected + out.displaced > 0 {
                    std::thread::yield_now();
                }
            }
        });
        // Make "under load" real before measuring: on a core-starved
        // box the producer thread may not be scheduled yet, and a
        // deploy latency on an idle host would be the wrong number.
        while host.stats().dispatched.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        // Re-deploys under load: each one replaces the component's
        // previous container through the control lane, host running.
        for d in 0..redeploys {
            let t = (d % TENANTS as u64) as usize;
            let version = 2 + d / TENANTS as u64;
            latencies_us.push(deploy(&mut updates, t, version));
        }
        stop.store(true, Ordering::Relaxed);
    });
    host.quiesce();
    let stats = host.stats();
    assert_eq!(
        stats.deploys.load(Ordering::Relaxed),
        TENANTS as u64 + redeploys,
        "every SUIT deploy landed"
    );
    let events_during = stats.dispatched.load(Ordering::Relaxed);
    assert!(
        events_during > 0,
        "the host served events while deploys landed"
    );
    // The host still serves, and with the freshly deployed containers.
    let mut req = fc_net::coap::Message::request(fc_net::coap::Code::Get, 9999, b"p");
    req.set_path("t0/temp");
    let reply = front
        .dispatch_sync(&host, &req)
        .expect("post-deploy request served");
    assert!(
        fc_host::coap::is_content_response(&reply.pdu),
        "deployed responder still formats 2.05 Content"
    );
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
    let max = latencies_us.iter().copied().fold(0.0f64, f64::max);
    LiveDeployResult {
        workers,
        deploys: redeploys,
        mean_deploy_us: mean,
        max_deploy_us: max,
        events_during,
    }
}

struct OverloadResult {
    queue_capacity: usize,
    offered: u64,
    dispatched: u64,
    shed: u64,
    shed_rate: f64,
}

/// Offers load as fast as possible into tiny queues; sheds must absorb
/// the excess without stalling the host.
fn overload_run(workers: usize, offered: u64) -> OverloadResult {
    let config = HostConfig {
        queue_capacity: 32,
        drain_batch: 16,
        shed: ShedPolicy::DropNewest,
        ..HostConfig::default()
    };
    let (host, front, _) = build_host(workers, config);
    let mut gen = CoapLoadGen::new(
        (0..TENANTS).map(|t| format!("t{t}/temp")).collect(),
        0xfc_0523,
        LoadShape::Skewed,
    );
    for _ in 0..offered {
        let (_, req) = gen.next_request();
        let _ = front.dispatch(&host, &req); // sheds are the point
    }
    host.quiesce();
    let stats = host.stats();
    let dispatched = stats.dispatched.load(Ordering::Relaxed);
    let shed = stats.shed.load(Ordering::Relaxed);
    assert_eq!(dispatched + shed, offered, "every offer accounted");
    OverloadResult {
        queue_capacity: 32,
        offered,
        dispatched,
        shed,
        shed_rate: stats.shed_rate(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let events: u64 = if quick { 2_000 } else { 24_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("host load mix: {TENANTS} tenants, {events} CoAP events/run, {cores} host core(s)");
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let r = throughput_run(workers, events);
        println!(
            "workers {workers}: wall {:9.0} ev/s   capacity {:9.0} ev/s   p50 {:6.1} µs   p99 {:7.1} µs   balance {:.2}",
            r.wall_eps, r.capacity_eps, r.p50_us, r.p99_us, r.balance
        );
        runs.push(r);
    }

    let cap1 = runs[0].capacity_eps;
    let cap4 = runs[2].capacity_eps;
    let scaling = cap4 / cap1;
    let wall_scaling = runs[2].wall_eps / runs[0].wall_eps;
    println!("dispatch scaling 1→4 workers: capacity {scaling:.2}x, wall {wall_scaling:.2}x");

    let overload = overload_run(4, events * 4);
    println!(
        "overload (queues of {}): offered {}, dispatched {}, shed {} ({:.1}%)",
        overload.queue_capacity,
        overload.offered,
        overload.dispatched,
        overload.shed,
        overload.shed_rate * 100.0
    );

    let batched = batched_comparison(4, events, 32);
    println!(
        "batched dispatch (batches of {}): single {:9.0} ev/s   batched {:9.0} ev/s   ({:.2}x, {} queue round-trips)",
        batched.batch_size,
        batched.single_eps,
        batched.batched_eps,
        batched.batched_eps / batched.single_eps,
        batched.batch_round_trips,
    );

    let overhead = telemetry_overhead(4, events);
    println!(
        "telemetry overhead: on {:9.0} ev/s   off {:9.0} ev/s   ({:+.2}% {} on the dispatch path)",
        overhead.on_eps, overhead.off_eps, overhead.overhead_pct, overhead.basis,
    );

    let journal = journal_overhead(4, events);
    println!(
        "journaling overhead: {:+.2}% cycle model (gated)   {:+.2}% host {} (informational; on {:9.0} ev/s, off {:9.0} ev/s)",
        journal.cycle_overhead_pct,
        journal.cpu_overhead_pct,
        journal.cpu_basis,
        journal.on_eps,
        journal.off_eps,
    );
    let recovery_commits: &[u64] = if quick {
        &[250, 1_000]
    } else {
        &[500, 2_000, 8_000]
    };
    let mut recovery_runs = Vec::new();
    for &n in recovery_commits {
        let r = recovery_run(n);
        println!(
            "recovery: {:6} journaled commits ({:8} bytes)   restore {:8.2} ms   ({:9.0} commits/s replayed)",
            r.commits, r.journal_bytes, r.restore_ms, r.replay_eps
        );
        recovery_runs.push(r);
    }

    // The skewed runs use a fixed event budget: balance is measured
    // from deterministic simulated cycles, but the per-window sampling
    // noise of the weighted stream must stay small even in --quick.
    let (skew_events, skew_rounds) = (24_000u64, 12u64);
    let static_run = skewed_run(4, skew_events, skew_rounds, RebalanceMode::Static);
    let rebalanced = skewed_run(4, skew_events, skew_rounds, RebalanceMode::CallerDriven);
    let inband = skewed_run(4, skew_events, skew_rounds, RebalanceMode::InBand);
    println!(
        "skewed 80/20 static:       balance {:.3} (final window {:.3})   capacity {:9.0} ev/s",
        static_run.whole_run_balance, static_run.final_window_balance, static_run.capacity_eps
    );
    println!(
        "skewed 80/20 caller-driven: balance {:.3} (final window {:.3})   capacity {:9.0} ev/s   {} migrations",
        rebalanced.whole_run_balance,
        rebalanced.final_window_balance,
        rebalanced.capacity_eps,
        rebalanced.migrations
    );
    println!(
        "skewed 80/20 in-band:      balance {:.3} (final window {:.3})   capacity {:9.0} ev/s   {} migrations, {} self-observations",
        inband.whole_run_balance,
        inband.final_window_balance,
        inband.capacity_eps,
        inband.migrations,
        inband.inband_observations,
    );

    // Live SUIT deploys on a loaded, never-quiesced host.
    let redeploys = 2 * TENANTS as u64;
    let mut deploy_runs = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let r = live_deploy_run(workers, redeploys);
        println!(
            "live deploy under load, {workers} worker(s): {} re-deploys   mean {:8.1} µs   max {:8.1} µs   ({} events served meanwhile)",
            r.deploys, r.mean_deploy_us, r.max_deploy_us, r.events_during
        );
        deploy_runs.push(r);
    }

    // --- Emit BENCH_host.json --------------------------------------
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"host\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"tenants\": {TENANTS},\n"));
    out.push_str(&format!("  \"events_per_run\": {events},\n"));
    out.push_str("  \"load\": \"uniform CoAP GETs over per-tenant resources, 1 CoapRequest hook + responder (~500 insns, 5 helper calls) per tenant\",\n");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_events_per_sec\": {:.0}, \"capacity_events_per_sec\": {:.0}, \"p50_dispatch_us\": {:.1}, \"p99_dispatch_us\": {:.1}, \"sim_busy_ms_per_shard\": {:?}, \"balance\": {:.3}}}{}\n",
            r.workers,
            r.wall_eps,
            r.capacity_eps,
            r.p50_us,
            r.p99_us,
            r.sim_busy_ms.iter().map(|n| (n * 10.0).round() / 10.0).collect::<Vec<_>>(),
            r.balance,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"scaling_1_to_4_workers\": {scaling:.2},\n"));
    out.push_str(&format!(
        "  \"wall_scaling_1_to_4_workers\": {wall_scaling:.2},\n"
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"queue_capacity\": {}, \"offered\": {}, \"dispatched\": {}, \"shed\": {}, \"shed_rate\": {:.3}}},\n",
        overload.queue_capacity, overload.offered, overload.dispatched, overload.shed, overload.shed_rate
    ));
    out.push_str(&format!(
        "  \"batched_dispatch\": {{\"workers\": 4, \"batch_size\": {}, \"single_wall_events_per_sec\": {:.0}, \"batched_wall_events_per_sec\": {:.0}, \"speedup\": {:.2}, \"batch_round_trips\": {}}},\n",
        batched.batch_size, batched.single_eps, batched.batched_eps, batched.batched_eps / batched.single_eps, batched.batch_round_trips
    ));
    let json_cpu = |v: Option<f64>| match v {
        Some(ns) => format!("{ns:.0}"),
        None => String::from("null"),
    };
    out.push_str(&format!(
        "  \"telemetry_overhead\": {{\"workers\": 4, \"on_wall_events_per_sec\": {:.0}, \"off_wall_events_per_sec\": {:.0}, \"on_cpu_ns_per_event\": {}, \"off_cpu_ns_per_event\": {}, \"overhead_pct\": {:.2}, \"basis\": \"{}\"}},\n",
        overhead.on_eps,
        overhead.off_eps,
        json_cpu(overhead.on_cpu_ns_per_event),
        json_cpu(overhead.off_cpu_ns_per_event),
        overhead.overhead_pct,
        overhead.basis
    ));
    out.push_str("  \"recovery\": {\n");
    out.push_str(&format!(
        "    \"journaling_overhead\": {{\"workers\": 4, \"on_sim_cycles\": {}, \"off_sim_cycles\": {}, \"cycle_overhead_pct\": {:.2}, \"on_wall_events_per_sec\": {:.0}, \"off_wall_events_per_sec\": {:.0}, \"on_cpu_ns_per_event\": {}, \"off_cpu_ns_per_event\": {}, \"cpu_overhead_pct\": {:.2}, \"cpu_basis\": \"{}\"}},\n",
        journal.on_sim_cycles,
        journal.off_sim_cycles,
        journal.cycle_overhead_pct,
        journal.on_eps,
        journal.off_eps,
        json_cpu(journal.on_cpu_ns_per_event),
        json_cpu(journal.off_cpu_ns_per_event),
        journal.cpu_overhead_pct,
        journal.cpu_basis
    ));
    out.push_str("    \"restore_runs\": [\n");
    for (i, r) in recovery_runs.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"journal_commits\": {}, \"journal_bytes\": {}, \"restore_ms\": {:.2}, \"replay_commits_per_sec\": {:.0}}}{}\n",
            r.commits,
            r.journal_bytes,
            r.restore_ms,
            r.replay_eps,
            if i + 1 < recovery_runs.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str("    \"note\": \"journaling_overhead runs the same uniform CoAP mix on a durable host (every dispatch write-ahead committed to the in-sim A/B-slot media before its outcome is released, snapshot fold every 256 records) and on a plain host; the gated verdict is on the cycle model (summed per-shard sim_cycles, deterministic) because journaling is host-side bookkeeping that must not leak into simulated device time, while host CPU cost is reported on the telemetry-overhead CPU-delta methodology for transparency without gating (its relative size depends on the runner's core count); restore_runs time LocalNode::restore (media recovery + hook re-registration + deploy/kv replay + counter seeding + resume-cache rebuild) against journal length with folding disabled\"\n");
    out.push_str("  },\n");
    out.push_str("  \"skewed_rebalance\": {\n");
    out.push_str(&format!(
        "    \"load\": \"80/20 hot-set mix: tenants [0,1,4,5] take 80% of {skew_events} events; their hooks collide pairwise on shards 0 and 1 under round-robin placement ({skew_rounds} rounds; caller-driven observes between rounds, in-band self-observes every round's worth of dispatched events with zero observe() calls)\",\n"
    ));
    out.push_str(&format!(
        "    \"static\": {{\"whole_run_balance\": {:.3}, \"final_window_balance\": {:.3}, \"capacity_events_per_sec\": {:.0}}},\n",
        static_run.whole_run_balance, static_run.final_window_balance, static_run.capacity_eps
    ));
    out.push_str(&format!(
        "    \"rebalanced\": {{\"whole_run_balance\": {:.3}, \"final_window_balance\": {:.3}, \"capacity_events_per_sec\": {:.0}, \"migrations\": {}}},\n",
        rebalanced.whole_run_balance, rebalanced.final_window_balance, rebalanced.capacity_eps, rebalanced.migrations
    ));
    out.push_str(&format!(
        "    \"inband\": {{\"whole_run_balance\": {:.3}, \"final_window_balance\": {:.3}, \"capacity_events_per_sec\": {:.0}, \"migrations\": {}, \"self_observations\": {}}},\n",
        inband.whole_run_balance, inband.final_window_balance, inband.capacity_eps, inband.migrations, inband.inband_observations
    ));
    out.push_str(&format!(
        "    \"capacity_gain\": {:.2}\n",
        rebalanced.capacity_eps / static_run.capacity_eps
    ));
    out.push_str("  },\n");
    out.push_str("  \"live_deploy\": {\n");
    out.push_str(&format!(
        "    \"load\": \"SUIT-signed re-deploys ({} per run) through the shard control lane while a producer thread floods batched CoAP reads; latency = manifest submission to swap complete (install + attach + predecessor retired), host never quiesced\",\n",
        redeploys
    ));
    out.push_str("    \"runs\": [\n");
    for (i, r) in deploy_runs.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"workers\": {}, \"deploys\": {}, \"mean_deploy_us\": {:.1}, \"max_deploy_us\": {:.1}, \"events_served_during\": {}}}{}\n",
            r.workers,
            r.deploys,
            r.mean_deploy_us,
            r.max_deploy_us,
            r.events_during,
            if i + 1 < deploy_runs.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"metric_note\": \"capacity = events / max per-shard busy time in simulated platform time (the repo's cycle-model methodology, preemption-free): the dispatch throughput the shard layout sustains with a core per worker. Wall-clock scaling is additionally bounded by host_cores — on a 1-core container the workers time-slice one CPU, so wall stays flat while capacity tracks how the shard map and DRR queues spread the load. The 1→4 scaling criterion uses the capacity metric.\",\n");
    out.push_str("  \"semantics\": \"per-event reports are bit-identical to the single-threaded fire_hook path (tests/host_differential.rs)\"\n");
    out.push_str("}\n");
    std::fs::write("BENCH_host.json", &out).expect("writes BENCH_host.json");
    println!("wrote BENCH_host.json");

    assert!(
        scaling >= 2.5,
        "capacity scaling 1→4 workers regressed below 2.5x: {scaling:.2}"
    );
    assert!(overload.shed > 0, "overload run must exercise shedding");
    assert!(
        overhead.overhead_pct <= 2.0,
        "telemetry dispatch overhead exceeded 2% ({} basis): on {:.0} ev/s vs off {:.0} ev/s ({:+.2}%)",
        overhead.basis,
        overhead.on_eps,
        overhead.off_eps,
        overhead.overhead_pct
    );
    assert!(
        journal.cycle_overhead_pct <= 2.0,
        "journaling dispatch overhead exceeded 2% on the cycle model: {} vs {} sim cycles ({:+.2}%) — journaling must not leak into simulated device time",
        journal.on_sim_cycles,
        journal.off_sim_cycles,
        journal.cycle_overhead_pct
    );
    for r in &recovery_runs {
        assert!(
            r.restore_ms > 0.0 && r.journal_bytes > 0,
            "recovery runs must journal and restore"
        );
    }
    assert!(
        recovery_runs
            .windows(2)
            .all(|w| w[1].journal_bytes > w[0].journal_bytes),
        "journal length must grow with the commit budget"
    );
    assert!(
        static_run.final_window_balance < 0.7,
        "static skewed placement should be imbalanced: {:.3}",
        static_run.final_window_balance
    );
    assert!(
        rebalanced.final_window_balance >= 0.9,
        "rebalancer should lift balance to >= 0.9: {:.3}",
        rebalanced.final_window_balance
    );
    assert!(
        rebalanced.capacity_eps >= static_run.capacity_eps,
        "rebalancing must not cost capacity: {:.0} vs {:.0}",
        rebalanced.capacity_eps,
        static_run.capacity_eps
    );
    assert!(rebalanced.migrations > 0, "rebalancer must migrate hooks");
    // In-band parity: the host's own trigger must reproduce the
    // caller-driven result with zero observe() calls in the driver.
    assert!(
        inband.final_window_balance >= 0.9,
        "in-band rebalancing should lift balance to >= 0.9: {:.3}",
        inband.final_window_balance
    );
    assert!(inband.migrations > 0, "in-band trigger must migrate hooks");
    assert!(
        inband.inband_observations > 0,
        "the host must have observed itself"
    );
    assert!(
        inband.capacity_eps >= static_run.capacity_eps,
        "in-band rebalancing must not cost capacity: {:.0} vs {:.0}",
        inband.capacity_eps,
        static_run.capacity_eps
    );
    for r in &deploy_runs {
        assert!(
            r.mean_deploy_us > 0.0 && r.events_during > 0,
            "live deploys must land while the host serves events"
        );
    }
}
