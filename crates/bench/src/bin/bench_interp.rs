//! Interpreter-throughput tracker: measures the decoded fast path and
//! the threaded-code tier against the seed (vanilla) interpreter and
//! emits `BENCH_interp.json` at the workspace root so successive PRs
//! can track the trajectory.
//!
//! Four measurements:
//!
//! 1. **per_instruction** — ns/op for each Figure 8 micro-program
//!    class, vanilla `Interpreter` vs `FastInterpreter` vs
//!    `ThreadedInterpreter` (memory map and helper registry reused in
//!    all three, isolating pure dispatch cost);
//! 2. **alu_branch_mix** — a combined ALU/branch workload, the paper's
//!    dominant interpreter cost and this repo's headline speedup
//!    number, plus the looped non-fusable mix where the threaded tier
//!    must beat the fast tier by ≥1.3x (asserted — a dispatch-loop
//!    regression fails the binary);
//! 3. **div_imm_mix** — alternating constant-divisor ops that no tier
//!    can run-length fuse: isolates the decode-time divisor resolution
//!    (threaded) against the per-op guard (fast; asserted);
//! 4. **hook_dispatch** — events/sec firing an engine hook with the
//!    thread-counter application: seed-style dispatch (fresh memory
//!    map + helper registry per event, vanilla interpreter) vs the
//!    arena-reusing engine at the fast and threaded tiers.
//!
//! Pass `--quick` for a smoke run (CI) with tiny measurement budgets
//! (the assertions drop to noise-tolerant floors there).

use std::sync::Arc;
use std::time::{Duration, Instant};

use fc_bench::figure8_classes;
use fc_core::apps;
use fc_core::contract::ContractOffer;
use fc_core::engine::{ExecTier, HostingEngine};
use fc_core::helpers_impl::{build_registry, standard_helper_ids, HostEnv};
use fc_core::hooks::{sched_hook_id, Hook, HookKind, HookPolicy};
use fc_rbpf::decode::DecodedProgram;
use fc_rbpf::fast::FastInterpreter;
use fc_rbpf::helpers::HelperRegistry;
use fc_rbpf::interp::Interpreter;
use fc_rbpf::mem::MemoryMap;
use fc_rbpf::program::FcProgram;
use fc_rbpf::threaded::{ThreadedInterpreter, ThreadedProgram};
use fc_rbpf::vm::ExecConfig;
use fc_rbpf::{asm, isa, verifier};
use fc_rtos::platform::{Engine, Platform};
use std::hint::black_box;

/// Times `routine` for roughly `budget`, returning ns per call.
///
/// The budget is split into rounds and the *fastest* round wins:
/// single-run means absorb scheduler interrupts and frequency dips
/// (±20-30% on shared hosts), while the per-round minimum converges on
/// the code's actual cost — the standard estimator for throughput
/// microbenchmarks.
fn measure<F: FnMut() -> u64>(budget: Duration, mut routine: F) -> f64 {
    // Calibrate a batch that runs ~1 ms.
    let cal_start = Instant::now();
    let mut cal_iters = 0u64;
    while cal_start.elapsed() < Duration::from_millis(20) {
        black_box(routine());
        cal_iters += 1;
    }
    let per = Duration::from_millis(20).as_secs_f64() / cal_iters.max(1) as f64;
    let batch = ((1.0e-3 / per) as u64).clamp(1, 1 << 22);

    const ROUNDS: u32 = 5;
    let round_budget = budget / ROUNDS;
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < round_budget {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

struct ClassRow {
    name: &'static str,
    vanilla_ns_per_op: f64,
    fast_ns_per_op: f64,
    threaded_ns_per_op: f64,
}

impl ClassRow {
    fn speedup(&self) -> f64 {
        self.vanilla_ns_per_op / self.fast_ns_per_op
    }

    fn threaded_speedup(&self) -> f64 {
        self.vanilla_ns_per_op / self.threaded_ns_per_op
    }
}

/// Measures one micro-program under all three tiers; returns
/// (vanilla, fast, threaded) ns/op.
fn bench_program(src: &str, budget: Duration) -> (f64, f64, f64) {
    let text = isa::encode_all(&asm::assemble(src).expect("assembles"));
    let prog = verifier::verify(&text, &Default::default()).expect("verifies");
    let decoded = DecodedProgram::lower(&prog);
    let threaded = ThreadedProgram::lower(&decoded);

    let mut mem = MemoryMap::new();
    mem.add_stack(512);
    let mut helpers = HelperRegistry::new();

    let ops = Interpreter::new(&prog, ExecConfig::default())
        .run(&mut mem, &mut helpers, 0)
        .expect("runs")
        .counts
        .total() as f64;

    let interp = Interpreter::new(&prog, ExecConfig::default());
    let vanilla_ns = measure(budget, || {
        interp
            .run(&mut mem, &mut helpers, 0)
            .expect("runs")
            .return_value
    });
    let fast = FastInterpreter::new(&decoded, ExecConfig::default());
    let fast_ns = measure(budget, || {
        fast.run(&mut mem, &mut helpers, 0)
            .expect("runs")
            .return_value
    });
    let thr = ThreadedInterpreter::new(&threaded, ExecConfig::default());
    let threaded_ns = measure(budget, || {
        thr.run(&mut mem, &mut helpers, 0)
            .expect("runs")
            .return_value
    });
    (vanilla_ns / ops, fast_ns / ops, threaded_ns / ops)
}

/// A mixed ALU/branch workload: tight loop of 64-bit ALU, 32-bit ALU,
/// shifts and compare-branches — the §8 interpreter-throughput shape.
fn alu_branch_mix_src() -> String {
    "\
mov r1, 0
mov r2, 4000
mov r3, 0x1234
loop:
add r1, 7
xor r3, r1
lsh r3, 1
rsh r3, 1
add32 r4, 13
and32 r4, 0xffff
sub r2, 1
jgt r3, 0x7fffffff, wrap
jne r2, 0, loop
mov r0, r1
exit
wrap:
and r3, 0xffff
ja loop"
        .to_owned()
}

/// Alternating constant-divisor ops: adjacent ops are never identical,
/// so neither tier gets run-length fusion — what remains is pure
/// dispatch plus the divide itself: the hardware divide (with its
/// decode-time-resolved zero guard) on the fast tier against the
/// threaded tier's strength-reduced multiply. The `or32` re-seeds bit
/// 30 of each dividend every round: hardware 32-bit division has
/// *data-dependent* latency and is cheap on the small dividends this
/// chain would otherwise collapse to, which made the comparison
/// measure divider luck instead of the lowering.
fn div_imm_mix_src() -> String {
    let mut src = String::from("mov r3, 123456789\nmov r4, 987654321\n");
    for _ in 0..32 {
        src.push_str("or32 r3, 0x40000000\nor32 r4, 0x40000000\n");
        src.push_str("div32 r3, 7\ndiv32 r4, 9\nmod32 r3, 1000003\nmod32 r4, 999983\n");
    }
    src.push_str("add r3, r4\nmov r0, r3\nexit");
    src
}

fn seed_style_hook_event(
    env: &Arc<HostEnv>,
    image: &FcProgram,
    prog: &fc_rbpf::VerifiedProgram,
    ctx: &[u8],
) -> u64 {
    // What the seed engine did per event: fresh map, cloned sections,
    // rebuilt registry, vanilla interpreter.
    let mut mem = MemoryMap::new();
    mem.add_stack(fc_rbpf::mem::STACK_SIZE);
    mem.add_ctx(ctx.to_vec(), fc_rbpf::mem::Perm::RW);
    if !image.data.is_empty() {
        mem.add_data(image.data.clone());
    }
    if !image.rodata.is_empty() {
        mem.add_rodata(image.rodata.clone());
    }
    let mut helpers = build_registry(
        env,
        &fc_core::helpers_impl::HelperMeter::new(),
        1,
        1,
        &standard_helper_ids(),
    );
    let out = Interpreter::new(prog, ExecConfig::default())
        .run(&mut mem, &mut helpers, fc_rbpf::mem::CTX_VADDR)
        .expect("runs");
    out.return_value
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let budget = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(600)
    };

    // --- 1. Per-instruction classes --------------------------------
    let mut rows = Vec::new();
    for (name, src, _class) in figure8_classes() {
        let (vanilla, fast, threaded) = bench_program(&src, budget);
        println!(
            "{name:<28} vanilla {vanilla:7.2} ns/op   fast {fast:7.2} ns/op   threaded {threaded:7.2} ns/op   speedup {:.2}x/{:.2}x",
            vanilla / fast,
            vanilla / threaded
        );
        rows.push(ClassRow {
            name,
            vanilla_ns_per_op: vanilla,
            fast_ns_per_op: fast,
            threaded_ns_per_op: threaded,
        });
    }

    // --- 2. ALU/branch aggregates ----------------------------------
    // Headline acceptance number: geometric-mean speedup across the
    // per_instruction bench's ALU and Branch classes.
    let alu_branch: Vec<&ClassRow> = rows
        .iter()
        .filter(|r| r.name.starts_with("ALU") || r.name.starts_with("Branch"))
        .collect();
    let class_mix_speedup =
        (alu_branch.iter().map(|r| r.speedup().ln()).sum::<f64>() / alu_branch.len() as f64).exp();
    let class_mix_threaded = (alu_branch
        .iter()
        .map(|r| r.threaded_speedup().ln())
        .sum::<f64>()
        / alu_branch.len() as f64)
        .exp();
    println!(
        "{:<28} geometric-mean speedup fast {class_mix_speedup:.2}x  threaded {class_mix_threaded:.2}x over {} classes",
        "ALU/branch class mix",
        alu_branch.len()
    );

    // Secondary: a looped, non-fusable ALU/branch workload (pure
    // dispatch-loop improvement, no run-length superinstruction help —
    // the threaded tier's per-op handler chains and pair fusion are
    // exactly what this shape measures).
    let (mix_vanilla, mix_fast, mix_threaded) = bench_program(&alu_branch_mix_src(), budget * 2);
    let mix_speedup = mix_vanilla / mix_fast;
    let mix_threaded_speedup = mix_vanilla / mix_threaded;
    let mix_threaded_over_fast = mix_fast / mix_threaded;
    println!(
        "{:<28} vanilla {mix_vanilla:7.2} ns/op   fast {mix_fast:7.2} ns/op   threaded {mix_threaded:7.2} ns/op   threaded/fast {mix_threaded_over_fast:.2}x",
        "ALU/branch looped mix"
    );

    // --- 3. Constant-divisor mix -----------------------------------
    let (div_vanilla, div_fast, div_threaded) = bench_program(&div_imm_mix_src(), budget);
    let div_threaded_over_fast = div_fast / div_threaded;
    println!(
        "{:<28} vanilla {div_vanilla:7.2} ns/op   fast {div_fast:7.2} ns/op   threaded {div_threaded:7.2} ns/op   threaded/fast {div_threaded_over_fast:.2}x",
        "ALU divide imm mixed"
    );

    // --- 4. Hook dispatch ------------------------------------------
    let image_bytes = apps::thread_counter().to_bytes();
    let image = FcProgram::from_bytes(&image_bytes).expect("parses");
    let prog = verifier::verify(&image.text, &standard_helper_ids()).expect("verifies");
    let env = Arc::new(HostEnv::new(fc_kvstore::DEFAULT_CAPACITY));
    let mut ctx = Vec::new();
    ctx.extend_from_slice(&1u64.to_le_bytes());
    ctx.extend_from_slice(&2u64.to_le_bytes());

    let seed_ns = measure(budget, || seed_style_hook_event(&env, &image, &prog, &ctx));

    let mut engine = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
    engine.register_hook(
        Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
        ContractOffer::helpers(standard_helper_ids()),
    );
    let id = engine
        .install("pid_log", 1, &image_bytes, apps::thread_counter_request())
        .expect("installs");
    engine.attach(id, sched_hook_id()).expect("attaches");
    engine.set_tier(ExecTier::Fast);
    let arena_ns = measure(budget, || {
        engine
            .fire_hook(sched_hook_id(), &ctx, &[])
            .expect("fires")
            .cycles
    });
    engine.set_tier(ExecTier::Threaded);
    let arena_threaded_ns = measure(budget, || {
        engine
            .fire_hook(sched_hook_id(), &ctx, &[])
            .expect("fires")
            .cycles
    });

    let seed_eps = 1.0e9 / seed_ns;
    let arena_eps = 1.0e9 / arena_ns;
    let arena_threaded_eps = 1.0e9 / arena_threaded_ns;
    println!(
        "hook dispatch: seed-style {seed_eps:.0} events/s   arena+fast {arena_eps:.0} events/s   arena+threaded {arena_threaded_eps:.0} events/s   speedup {:.2}x",
        arena_threaded_eps / seed_eps
    );

    // --- Emit BENCH_interp.json ------------------------------------
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"interp\",\n");
    out.push_str("  \"unit\": \"ns_per_op\",\n");
    out.push_str("  \"per_instruction\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"vanilla_ns_per_op\": {:.3}, \"fast_ns_per_op\": {:.3}, \"threaded_ns_per_op\": {:.3}, \"speedup\": {:.3}, \"threaded_speedup\": {:.3}}}{}\n",
            json_escape(r.name),
            r.vanilla_ns_per_op,
            r.fast_ns_per_op,
            r.threaded_ns_per_op,
            r.speedup(),
            r.threaded_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"alu_branch_mix\": {{\"geomean_class_speedup\": {class_mix_speedup:.3}, \"geomean_class_threaded_speedup\": {class_mix_threaded:.3}}},\n"
    ));
    out.push_str(&format!(
        "  \"alu_branch_looped_mix\": {{\"vanilla_ns_per_op\": {mix_vanilla:.3}, \"fast_ns_per_op\": {mix_fast:.3}, \"threaded_ns_per_op\": {mix_threaded:.3}, \"speedup\": {mix_speedup:.3}, \"threaded_speedup\": {mix_threaded_speedup:.3}, \"threaded_over_fast\": {mix_threaded_over_fast:.3}}},\n"
    ));
    out.push_str(&format!(
        "  \"div_imm_mix\": {{\"vanilla_ns_per_op\": {div_vanilla:.3}, \"fast_ns_per_op\": {div_fast:.3}, \"threaded_ns_per_op\": {div_threaded:.3}, \"threaded_over_fast\": {div_threaded_over_fast:.3}}},\n"
    ));
    out.push_str(&format!(
        "  \"hook_dispatch\": {{\"seed_style_events_per_sec\": {seed_eps:.0}, \"arena_fast_events_per_sec\": {arena_eps:.0}, \"arena_threaded_events_per_sec\": {arena_threaded_eps:.0}, \"speedup\": {:.3}}}\n",
        arena_threaded_eps / seed_eps
    ));
    out.push_str("}\n");

    if quick {
        println!("quick mode: BENCH_interp.json not rewritten (numbers too noisy)");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
        std::fs::write(path, &out).expect("writes BENCH_interp.json");
        println!("wrote {path}");
    }

    if !quick && class_mix_speedup < 3.0 {
        eprintln!(
            "WARNING: ALU/branch class-mix speedup {class_mix_speedup:.2}x below the 3x target"
        );
    }

    // Regression gates (ISSUE 10 acceptance): the threaded tier must
    // beat the fast tier on the looped non-fusable mix — that shape is
    // the whole point of per-op handler chains — and on the
    // constant-divisor mix, where the decode-time divisor resolution
    // dropped the per-op guard. Quick (CI smoke) budgets are tiny and
    // noisy, so the floors are lower there; full runs enforce the
    // ≥1.3x acceptance threshold.
    let mix_floor = if quick { 1.1 } else { 1.3 };
    assert!(
        mix_threaded_over_fast >= mix_floor,
        "threaded tier regression: looped mix only {mix_threaded_over_fast:.2}x over fast (floor {mix_floor}x)"
    );
    let div_floor = if quick { 1.0 } else { 1.05 };
    assert!(
        div_threaded_over_fast >= div_floor,
        "threaded tier regression: div-imm mix only {div_threaded_over_fast:.2}x over fast (floor {div_floor}x)"
    );
}
