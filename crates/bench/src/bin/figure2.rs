//! Regenerates the paper's Figure 2 flash-distribution comparison.
fn main() {
    for report in fc_bench::figure2() {
        println!("{}", report.render());
    }
}
