//! Regenerates the paper's figure7 experiment.
fn main() {
    println!("{}", fc_bench::figure7().render());
}
