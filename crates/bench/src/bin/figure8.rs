//! Regenerates the paper's figure8 experiment.
fn main() {
    println!("{}", fc_bench::figure8().render());
}
