//! Regenerates the paper's figure9 experiment.
fn main() {
    println!("{}", fc_bench::figure9().render());
}
