//! Regenerates the paper's multi instance experiment.
fn main() {
    println!("{}", fc_bench::multi_instance().render());
}
