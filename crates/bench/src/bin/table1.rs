//! Regenerates the paper's table1 experiment.
fn main() {
    println!("{}", fc_bench::table1().render());
}
