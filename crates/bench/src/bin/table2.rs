//! Regenerates the paper's table2 experiment.
fn main() {
    println!("{}", fc_bench::table2().render());
}
