//! Regenerates the paper's table3 experiment.
fn main() {
    println!("{}", fc_bench::table3().render());
}
