//! Regenerates the paper's table4 experiment.
fn main() {
    println!("{}", fc_bench::table4().render());
}
