//! One function per table and figure of the paper's evaluation section.
//!
//! Every function runs the *real* code paths (interpreters, engine,
//! footprint models) and returns the measured/simulated values next to
//! the numbers the paper reports, so drift is visible at a glance.

use fc_baselines::{all_runtimes, benchmark_input};
use fc_core::apps;
use fc_core::contract::ContractOffer;
use fc_core::engine::{HostRegion, HostingEngine};
use fc_core::footprint::{engine_footprint, os_ram_bytes, os_rom_bytes, FirmwareImage};
use fc_core::helpers_impl::{coap_ctx_bytes, standard_helper_ids};
use fc_core::hooks::{sched_hook_id, Hook, HookKind, HookPolicy};
use fc_rbpf::asm;
use fc_rbpf::isa::{self, OpClass};
use fc_rbpf::vm::ExecConfig;
use fc_rtos::platform::{cycle_model, Engine, Platform, ALL_ENGINES, ALL_PLATFORMS};
use fc_rtos::saul::{DeviceClass, Phydat};

use crate::fmt::{bytes, render_table, us};

/// A generic experiment result: a titled table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment title (paper table/figure number).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        render_table(&self.title, &headers, &self.rows)
    }
}

/// **Table 1** — memory requirements of the candidate runtimes.
pub fn table1() -> Report {
    let paper: &[(&str, &str, &str)] = &[
        ("WASM3", "64 KiB", "85 KiB"),
        ("rBPF", "4.4 KiB", "0.6 KiB"),
        ("RIOTjs", "121 KiB", "18 KiB"),
        ("MicroPython", "101 KiB", "8.2 KiB"),
    ];
    let mut rows = Vec::new();
    for rt in all_runtimes() {
        if rt.name() == "Native C" {
            continue;
        }
        let fp = rt.footprint();
        let (p_rom, p_ram) = paper
            .iter()
            .find(|(n, _, _)| *n == rt.name())
            .map(|(_, rom, ram)| (*rom, *ram))
            .unwrap_or(("–", "–"));
        rows.push(vec![
            rt.name().to_owned(),
            bytes(fp.rom_bytes),
            bytes(fp.ram_bytes),
            p_rom.to_owned(),
            p_ram.to_owned(),
        ]);
    }
    rows.push(vec![
        "Host OS (without VM)".into(),
        bytes(os_rom_bytes()),
        bytes(os_ram_bytes()),
        "52.5 KiB".into(),
        "16.3 KiB".into(),
    ]);
    Report {
        title: "Table 1: Memory requirements for Femto-Container runtimes".into(),
        headers: ["Runtime", "ROM", "RAM", "paper ROM", "paper RAM"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// **Table 2** — size and performance of the fletcher32 applet per
/// runtime.
pub fn table2() -> Report {
    let paper: &[(&str, &str, &str, &str)] = &[
        ("Native C", "74 B", "–", "27 µs"),
        ("WASM3", "322 B", "17.1 ms", "980 µs"),
        ("rBPF", "456 B", "1.00 µs", "2.1 ms"),
        ("RIOTjs", "593 B", "5.6 ms", "14.7 ms"),
        ("MicroPython", "497 B", "21.9 ms", "16.3 ms"),
    ];
    let input = benchmark_input();
    let mut rows = Vec::new();
    for mut rt in all_runtimes() {
        let applet = rt.fletcher_applet();
        let load = rt.load(&applet).expect("applet loads");
        let out = rt.run(&input).expect("applet runs");
        let (p_size, p_cold, p_run) = paper
            .iter()
            .find(|(n, _, _, _)| *n == rt.name())
            .map(|(_, s, c, r)| (*s, *c, *r))
            .unwrap_or(("–", "–", "–"));
        rows.push(vec![
            rt.name().to_owned(),
            bytes(applet.len()),
            us(load.cycles as f64 / 64.0),
            us(out.cycles as f64 / 64.0),
            p_size.to_owned(),
            p_cold.to_owned(),
            p_run.to_owned(),
        ]);
    }
    Report {
        title: "Table 2: fletcher32 (360 B) hosted in different runtimes, Cortex-M4 @64 MHz".into(),
        headers: [
            "Runtime",
            "code size",
            "cold start",
            "run time",
            "paper size",
            "paper cold",
            "paper run",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// **Figure 2** — flash distribution of the firmware image with a
/// MicroPython vs an rBPF Femto-Container runtime.
pub fn figure2() -> Vec<Report> {
    let images = [
        (
            "MicroPython",
            fc_baselines::upy::UPY_ROM_BYTES,
            "154 kB total, 66% runtime",
        ),
        (
            "rBPF Femto-Container",
            fc_baselines::rbpf_rt::RBPF_ROM_BYTES,
            "57 kB total, 8% runtime",
        ),
    ];
    images
        .iter()
        .map(|(name, rom, paper)| {
            let img = FirmwareImage::with_runtime(name, *rom);
            let rows = img
                .percentages()
                .into_iter()
                .zip(img.components.iter())
                .map(|((n, pct), (_, b))| vec![n, bytes(*b), format!("{pct:.0}%")])
                .collect();
            Report {
                title: format!(
                    "Figure 2: RIOT with {name} runtime — {} total (paper: {paper})",
                    bytes(img.total_rom())
                ),
                headers: ["Component", "Flash", "Share"].map(String::from).to_vec(),
                rows,
            }
        })
        .collect()
}

/// **Table 3** — engine footprint on Cortex-M4.
pub fn table3() -> Report {
    let paper: &[(&str, usize, usize)] = &[
        ("Femto-Containers", 2992, 624),
        ("rBPF", 3032, 620),
        ("CertFC", 1378, 672),
    ];
    let rows = [Engine::FemtoContainer, Engine::Rbpf, Engine::CertFc]
        .iter()
        .map(|e| {
            let fp = engine_footprint(*e, Platform::CortexM4);
            let (_, p_rom, p_ram) = paper
                .iter()
                .find(|(n, _, _)| *n == e.name())
                .copied()
                .unwrap_or(("", 0, 0));
            vec![
                e.name().to_owned(),
                format!("{} B", fp.rom_bytes),
                format!("{} B", fp.ram_bytes),
                format!("{p_rom} B"),
                format!("{p_ram} B"),
            ]
        })
        .collect();
    Report {
        title: "Table 3: Memory footprint of a Femto-Container hosting minimal logic (Cortex-M4)"
            .into(),
        headers: ["Engine", "ROM", "RAM", "paper ROM", "paper RAM"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// **Figure 7** — engine flash across the three platforms.
pub fn figure7() -> Report {
    let mut rows = Vec::new();
    for p in ALL_PLATFORMS {
        for e in ALL_ENGINES {
            let fp = engine_footprint(e, p);
            rows.push(vec![
                p.name().to_owned(),
                e.name().to_owned(),
                format!("{} B", fp.rom_bytes),
            ]);
        }
    }
    Report {
        title: "Figure 7: Flash requirement per engine and platform (paper: bars 1.3–4.5 kB)"
            .into(),
        headers: ["Platform", "Engine", "Flash"].map(String::from).to_vec(),
        rows,
    }
}

/// The twelve instruction classes of Figure 8, with a generator
/// producing a straight-line benchmark program for each.
pub fn figure8_classes() -> Vec<(&'static str, String, OpClass)> {
    let body = |insn: &str, n: usize| {
        let mut src = String::from("mov r3, 1000\nmov r4, 3\n");
        for _ in 0..n {
            src.push_str(insn);
            src.push('\n');
        }
        src.push_str("mov r0, r3\nexit");
        src
    };
    vec![
        ("ALU negate", body("neg r3", 64), OpClass::Alu64),
        ("ALU Add", body("add r3, r4", 64), OpClass::Alu64),
        ("ALU Add imm", body("add r3, 7", 64), OpClass::Alu64),
        ("ALU multiply imm", body("mul r3, 7", 64), OpClass::Mul),
        ("ALU right shift imm", body("rsh r3, 1", 64), OpClass::Alu64),
        ("ALU divide imm", body("div r3, 7", 64), OpClass::Div),
        (
            "MEM load double",
            body("ldxdw r3, [r10-8]", 64),
            OpClass::Load,
        ),
        (
            "MEM store double imm",
            body("stdw [r10-8], 42", 64),
            OpClass::Store,
        ),
        (
            "MEM store double",
            body("stxdw [r10-8], r3", 64),
            OpClass::Store,
        ),
        ("Branch always", body("ja +0", 64), OpClass::BranchTaken),
        (
            "Branch equal (jump)",
            body("jeq r4, 3, +0", 64),
            OpClass::BranchTaken,
        ),
        (
            "Branch equal (continue)",
            body("jeq r4, 0, +0", 64),
            OpClass::BranchNotTaken,
        ),
    ]
}

/// **Figure 8** — time per instruction on Cortex-M4 for the three
/// engines, derived from executing each class's micro-program and
/// charging its dynamic counts to the cycle model.
pub fn figure8() -> Report {
    let mut rows = Vec::new();
    for (name, src, _class) in figure8_classes() {
        let text = isa::encode_all(&asm::assemble(&src).expect("benchmark assembles"));
        let prog = fc_rbpf::verifier::verify(&text, &Default::default()).expect("verifies");
        let mut cells = vec![name.to_owned()];
        for engine in ALL_ENGINES {
            let mut mem = fc_rbpf::mem::MemoryMap::new();
            mem.add_stack(512);
            let mut helpers = fc_rbpf::helpers::HelperRegistry::new();
            let exec = match engine {
                Engine::CertFc => {
                    fc_rbpf::certfc::CertInterpreter::new(&prog, ExecConfig::default())
                        .run(&mut mem, &mut helpers, 0)
                        .expect("runs")
                }
                _ => fc_rbpf::interp::Interpreter::new(&prog, ExecConfig::default())
                    .run(&mut mem, &mut helpers, 0)
                    .expect("runs"),
            };
            let model = cycle_model(Platform::CortexM4, engine);
            // Isolate the benchmarked instruction: subtract the 4-op
            // harness (2 movs, mov, exit) from totals.
            let total = model.execution_cycles(&exec.counts);
            let harness: u64 = model.startup
                + 3 * model.op_cycles(OpClass::Alu64)
                + model.op_cycles(OpClass::Exit);
            let cycles_per_insn = (total - harness) as f64 / 64.0;
            cells.push(us(cycles_per_insn / 64.0));
        }
        rows.push(cells);
    }
    Report {
        title: "Figure 8: Time per instruction, Cortex-M4 (paper: 0.1–2.75 µs; CertFC slowest)"
            .into(),
        headers: ["Instruction", "rBPF", "Femto-Containers", "CertFC"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

fn engine_with_hooks(platform: Platform, flavor: Engine) -> HostingEngine {
    let mut e = HostingEngine::new(platform, flavor);
    for (name, kind) in [
        ("sched", HookKind::SchedSwitch),
        ("timer", HookKind::Timer),
        ("coap", HookKind::CoapRequest),
    ] {
        e.register_hook(
            Hook::new(name, kind, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
    }
    e.env()
        .saul()
        .lock()
        .unwrap()
        .register("temp0", DeviceClass::SenseTemp, || Phydat {
            value: 2155,
            scale: -2,
        });
    e
}

/// **Figure 9** — execution time of the three example applications on
/// each platform.
pub fn figure9() -> Report {
    let paper: &[(&str, &str)] = &[
        ("Fletcher32 checksum", "1.3–2.2 ms"),
        ("Thread log", "10–27 µs"),
        ("CoAP response formatter", "23–72 µs"),
    ];
    let mut rows = Vec::new();
    for (app_idx, (app_name, paper_range)) in paper.iter().enumerate() {
        let mut cells = vec![app_name.to_string()];
        for platform in ALL_PLATFORMS {
            let mut e = engine_with_hooks(platform, Engine::FemtoContainer);
            let report = match app_idx {
                0 => {
                    let id = e
                        .install(
                            "fletcher",
                            1,
                            &apps::fletcher32_app().to_bytes(),
                            Default::default(),
                        )
                        .expect("installs");
                    let input = benchmark_input();
                    e.execute(id, &apps::fletcher_ctx(&input), &[])
                        .expect("runs")
                }
                1 => {
                    let id = e
                        .install(
                            "pid_log",
                            1,
                            &apps::thread_counter().to_bytes(),
                            apps::thread_counter_request(),
                        )
                        .expect("installs");
                    let mut ctx = Vec::new();
                    ctx.extend_from_slice(&1u64.to_le_bytes());
                    ctx.extend_from_slice(&2u64.to_le_bytes());
                    e.execute(id, &ctx, &[]).expect("runs")
                }
                _ => {
                    e.env()
                        .stores()
                        .store(9, 1, fc_kvstore::Scope::Tenant, 1, 2155)
                        .expect("seeds store");
                    let id = e
                        .install(
                            "coap_fmt",
                            1,
                            &apps::coap_formatter().to_bytes(),
                            apps::coap_formatter_request(),
                        )
                        .expect("installs");
                    e.execute(
                        id,
                        &coap_ctx_bytes(64),
                        &[HostRegion::read_write("pkt", vec![0; 64])],
                    )
                    .expect("runs")
                }
            };
            assert!(report.result.is_ok(), "{app_name} on {}", platform.name());
            cells.push(us(platform.us_from_cycles(report.total_cycles())));
        }
        cells.push(paper_range.to_string());
        rows.push(cells);
    }
    Report {
        title: "Figure 9: Execution duration of the example applications".into(),
        headers: ["Application", "Cortex-M4", "ESP32", "RISC-V", "paper range"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// **Table 4** — hook overhead in clock ticks: empty launchpad vs
/// launchpad with the thread-counter application attached.
pub fn table4() -> Report {
    let paper: &[(&str, u64, u64)] = &[
        ("Cortex-M4", 109, 1750),
        ("ESP32", 83, 1163),
        ("RISC-V", 106, 754),
    ];
    let mut rows = Vec::new();
    for platform in ALL_PLATFORMS {
        let mut e = engine_with_hooks(platform, Engine::FemtoContainer);
        let empty = e
            .fire_hook(sched_hook_id(), &[0u8; 16], &[])
            .expect("fires")
            .cycles;
        let id = e
            .install(
                "pid_log",
                1,
                &apps::thread_counter().to_bytes(),
                apps::thread_counter_request(),
            )
            .expect("installs");
        e.attach(id, sched_hook_id()).expect("attaches");
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&1u64.to_le_bytes());
        ctx.extend_from_slice(&2u64.to_le_bytes());
        let with_app = e
            .fire_hook(sched_hook_id(), &ctx, &[])
            .expect("fires")
            .cycles;
        let (_, p_empty, p_app) = paper
            .iter()
            .find(|(n, _, _)| *n == platform.name())
            .copied()
            .unwrap_or(("", 0, 0));
        rows.push(vec![
            platform.name().to_owned(),
            empty.to_string(),
            with_app.to_string(),
            p_empty.to_string(),
            p_app.to_string(),
        ]);
    }
    Report {
        title: "Table 4: Hook overhead in clock ticks (thread-switch example)".into(),
        headers: [
            "Platform",
            "Empty hook",
            "Hook + app",
            "paper empty",
            "paper + app",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// **§10.3** — RAM accounting for the multi-tenant example (three
/// containers, two tenants) plus the container-density estimate.
pub fn multi_instance() -> Report {
    let mut e = engine_with_hooks(Platform::CortexM4, Engine::FemtoContainer);
    let t1 = e
        .install(
            "pid_log",
            1,
            &apps::thread_counter().to_bytes(),
            apps::thread_counter_request(),
        )
        .expect("installs");
    let t2 = e
        .install(
            "sensor",
            2,
            &apps::sensor_process().to_bytes(),
            apps::sensor_process_request(),
        )
        .expect("installs");
    let t3 = e
        .install(
            "coap_fmt",
            2,
            &apps::coap_formatter().to_bytes(),
            apps::coap_formatter_request(),
        )
        .expect("installs");
    // Run each once so the stores materialise, as in the paper's setup.
    let mut sched_ctx = Vec::new();
    sched_ctx.extend_from_slice(&1u64.to_le_bytes());
    sched_ctx.extend_from_slice(&2u64.to_le_bytes());
    e.execute(t1, &sched_ctx, &[]).expect("runs");
    e.execute(t2, &[0u8; 4], &[]).expect("runs");
    e.execute(
        t3,
        &coap_ctx_bytes(64),
        &[HostRegion::read_write("pkt", vec![0; 64])],
    )
    .expect("runs");

    let per_instance: Vec<usize> = [t1, t2, t3]
        .iter()
        .map(|id| e.container(*id).unwrap().ram_bytes())
        .collect();
    let stores = e.env().stores().ram_bytes();
    let total = e.ram_bytes();
    let avg_image = 2000usize;
    let density = (256 * 1024) / (per_instance[0] + avg_image);
    Report {
        title: "§10.3: RAM for 3 containers / 2 tenants (paper: 3.2 KiB; density ≈100)".into(),
        headers: ["Quantity", "Measured", "Paper"].map(String::from).to_vec(),
        rows: vec![
            vec![
                "Per-instance RAM".into(),
                format!("{} B", per_instance[0]),
                "624 B".into(),
            ],
            vec![
                "Key-value stores + housekeeping".into(),
                format!("{stores} B"),
                "340 B".into(),
            ],
            vec![
                "Total (3 containers, 2 tenants)".into(),
                bytes(total),
                "3.2 KiB".into(),
            ],
            vec![
                "Density on 256 KiB RAM (2 KB apps)".into(),
                format!("≈{density} instances"),
                "≈100 instances".into(),
            ],
        ],
    }
}

/// Every experiment, in paper order (used by the EXPERIMENTS.md
/// generator and the `all_experiments` binary).
pub fn all_reports() -> Vec<Report> {
    let mut reports = vec![table1(), table2()];
    reports.extend(figure2());
    reports.push(table3());
    reports.push(figure7());
    reports.push(figure8());
    reports.push(figure9());
    reports.push(table4());
    reports.push(multi_instance());
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reports_render_nonempty() {
        for report in all_reports() {
            assert!(!report.rows.is_empty(), "{}", report.title);
            let text = report.render();
            assert!(text.lines().count() >= 3, "{}", report.title);
        }
    }

    #[test]
    fn table4_shape_matches_paper() {
        let r = table4();
        for row in &r.rows {
            let empty: u64 = row[1].parse().unwrap();
            let with_app: u64 = row[2].parse().unwrap();
            let paper_with_app: u64 = row[4].parse().unwrap();
            assert!(empty < 150, "empty hook ≈100 ticks");
            assert!(with_app > empty * 5, "app dominates hook cost");
            let ratio = with_app as f64 / paper_with_app as f64;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: {with_app} vs {paper_with_app}",
                row[0]
            );
        }
    }

    #[test]
    fn figure9_riscv_is_fastest_platform() {
        let r = figure9();
        for row in &r.rows {
            // Columns: app, cm4, esp32, riscv, paper. Parse the µs back.
            let parse = |s: &str| -> f64 {
                if let Some(ms) = s.strip_suffix(" ms") {
                    ms.parse::<f64>().unwrap() * 1000.0
                } else {
                    s.strip_suffix(" µs").unwrap().parse().unwrap()
                }
            };
            let cm4 = parse(&row[1]);
            let riscv = parse(&row[3]);
            assert!(riscv < cm4, "{}: {riscv} vs {cm4}", row[0]);
        }
    }
}
