//! Minimal aligned-table printing for the experiment binaries.

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: Vec<String>| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|h| h.to_string()).collect());
    line(
        &mut out,
        widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

/// Formats microseconds compactly.
pub fn us(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1} ms", v / 1000.0)
    } else if v >= 10.0 {
        format!("{v:.0} µs")
    } else {
        format!("{v:.2} µs")
    }
}

/// Formats a byte count as the paper does (KiB above 1024).
pub fn bytes(v: usize) -> String {
    if v >= 10 * 1024 {
        format!("{:.1} KiB", v as f64 / 1024.0)
    } else if v >= 1024 {
        format!("{:.2} KiB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("a  "));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(us(2133.0), "2.1 ms");
        assert_eq!(us(27.0), "27 µs");
        assert_eq!(us(1.0), "1.00 µs");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(64 * 1024), "64.0 KiB");
    }
}
