//! # fc-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation. The
//! `table*`/`figure*` binaries print each experiment side by side with
//! the paper's reported numbers; the Criterion benches measure the real
//! wall-clock cost of the same code paths on the host.

#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;

pub use experiments::*;
