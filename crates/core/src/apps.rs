//! The paper's prototype applications (§8), authored in eBPF assembly
//! against the standard helper interface.

use fc_rbpf::helpers::ids;
use fc_rbpf::program::{FcProgram, ProgramBuilder};

use crate::contract::ContractRequest;
use crate::helpers_impl::helper_name_table;

fn build(src: &str) -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm(src)
        .expect("application assembles")
        .build()
}

/// The thread-counter kernel-debug application (paper §8.2, Listing 2):
/// attached to the scheduler launchpad, it increments a per-thread
/// activation counter in the global store. The context struct is
/// `{ previous: u64, next: u64 }`.
pub fn thread_counter() -> FcProgram {
    build(
        "\
; pid_log(sched_ctx_t *ctx) — Listing 2
    ldxdw r6, [r1+8]       ; ctx->next
    jeq r6, 0, done        ; zero pid: no next thread
    mov r1, r6             ; key = THREAD_START_KEY + next (base 0x0)
    mov r2, r10
    add r2, -8
    call bpf_fetch_global  ; counter = store[key]
    ldxw r3, [r10-8]
    add r3, 1              ; counter++
    mov r1, r6
    mov r2, r3
    call bpf_store_global
done:
    mov r0, 0
    exit
",
    )
}

/// Contract request for [`thread_counter`].
pub fn thread_counter_request() -> ContractRequest {
    ContractRequest::helpers([ids::BPF_FETCH_GLOBAL, ids::BPF_STORE_GLOBAL])
}

/// Key-value store key under which [`sensor_process`] keeps the moving
/// average (tenant-shared scope).
pub const SENSOR_VALUE_KEY: u32 = 0x1;

/// The sensor-processing application (paper §8.3, first container of
/// tenant B): fired by the timer launchpad, it reads the SAUL sensor,
/// folds the sample into an exponential moving average and publishes it
/// in the tenant store.
pub fn sensor_process() -> FcProgram {
    build(
        "\
; periodic sensor read + moving average
    mov r1, 0              ; SAUL device index 0
    mov r2, r10
    add r2, -4
    call bpf_saul_read     ; sample -> [r10-4]
    ldxw r6, [r10-4]
    mov r1, 1              ; SENSOR_VALUE_KEY
    mov r2, r10
    add r2, -12
    call bpf_fetch_shared  ; avg -> [r10-12]
    ldxw r7, [r10-12]
    jne r7, 0, have_avg
    mov r7, r6             ; first sample seeds the average
have_avg:
    mul r7, 7              ; avg = (7*avg + sample) / 8
    add r7, r6
    div r7, 8
    mov r1, 1
    mov r2, r7
    call bpf_store_shared
    mov r0, r7
    exit
",
    )
}

/// Contract request for [`sensor_process`].
pub fn sensor_process_request() -> ContractRequest {
    ContractRequest::helpers([
        ids::BPF_SAUL_READ,
        ids::BPF_FETCH_SHARED,
        ids::BPF_STORE_SHARED,
    ])
}

/// The CoAP response-formatter application (paper §8.3, second
/// container of tenant B): fired by the CoAP launchpad, it reads the
/// published sensor value from the tenant store and formats a 2.05
/// Content response into the granted packet buffer, returning the PDU
/// length.
pub fn coap_formatter() -> FcProgram {
    build(
        "\
; CoAP response formatter
    mov r6, r1             ; keep coap ctx
    mov r1, 1              ; SENSOR_VALUE_KEY
    mov r2, r10
    add r2, -8
    call bpf_fetch_shared
    ldxw r7, [r10-8]       ; value
    mov r1, r6
    mov r2, 0x45           ; 2.05 Content
    call bpf_gcoap_resp_init
    mov r1, r6
    mov r2, 0              ; text/plain
    call bpf_coap_add_format
    mov r1, r6
    call bpf_coap_opt_finish
    mov r8, r0             ; payload offset
    ldxdw r1, [r6]         ; pkt buffer address from ctx
    add r1, r8
    mov r2, r7
    call bpf_fmt_u32_dec   ; returns payload length
    add r0, r8             ; total PDU length
    exit
",
    )
}

/// Contract request for [`coap_formatter`].
pub fn coap_formatter_request() -> ContractRequest {
    ContractRequest::helpers([
        ids::BPF_FETCH_SHARED,
        ids::BPF_GCOAP_RESP_INIT,
        ids::BPF_COAP_ADD_FORMAT,
        ids::BPF_COAP_OPT_FINISH,
        ids::BPF_FMT_U32_DEC,
    ])
}

/// The fletcher32 benchmark application (paper §6 / §10.2, Figure 9):
/// checksums the context buffer `{ len: u32, pad: u32, data: [u8] }`.
pub fn fletcher32_app() -> FcProgram {
    build(fc_baselines_fletcher_asm())
}

// The assembly is shared verbatim with the fc-baselines crate's rBPF
// candidate; duplicating the constant keeps the two crates decoupled.
fn fc_baselines_fletcher_asm() -> &'static str {
    "\
; fletcher32 over the context buffer
    ldxw r2, [r1]
    mov r3, r1
    add r3, 8
    mov r4, 0xffff
    mov r5, 0xffff
    mov r6, 0
loop:
    jge r6, r2, done
    mov r7, r3
    add r7, r6
    ldxh r0, [r7]
    add r4, r0
    mov r8, r4
    and r8, 0xffff
    rsh r4, 16
    add r4, r8
    add r5, r4
    mov r8, r5
    and r8, 0xffff
    rsh r5, 16
    add r5, r8
    add r6, 2
    ja loop
done:
    mov r8, r4
    and r8, 0xffff
    rsh r4, 16
    add r4, r8
    mov r8, r5
    and r8, 0xffff
    rsh r5, 16
    add r5, r8
    lsh r5, 16
    or r5, r4
    mov r0, r5
    exit
"
}

/// Builds the fletcher context buffer for [`fletcher32_app`].
pub fn fletcher_ctx(input: &[u8]) -> Vec<u8> {
    let mut ctx = Vec::with_capacity(8 + input.len());
    ctx.extend_from_slice(&(input.len() as u32).to_le_bytes());
    ctx.extend_from_slice(&[0u8; 4]);
    ctx.extend_from_slice(input);
    ctx
}

/// A packet-inspection ("firewall-type trigger", paper §7)
/// application: granted read-only access to the packet, it returns 1
/// when the packet's destination port (bytes 2..4, big-endian) equals
/// its blocked port, else 0. The context is `{ pkt_len: u32 }` and the
/// packet arrives as the first granted host region.
pub fn packet_filter(blocked_port: u16) -> FcProgram {
    let src = format!(
        "\
; drop packets to port {blocked_port}
    ldxw r2, [r1]          ; pkt_len
    jlt r2, 4, accept      ; too short to carry a port
    lddw r3, 0x60000000    ; granted packet region
    ldxb r4, [r3+2]        ; port, big-endian
    lsh r4, 8
    ldxb r5, [r3+3]
    or r4, r5
    jeq r4, {blocked_port}, drop
accept:
    mov r0, 0
    exit
drop:
    mov r0, 1
    exit
"
    );
    build(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::ContractOffer;
    use crate::engine::{HostRegion, HostingEngine};
    use crate::helpers_impl::{coap_ctx_bytes, standard_helper_ids};
    use crate::hooks::{sched_hook_id, Hook, HookKind, HookPolicy};
    use fc_rtos::platform::{Engine, Platform};
    use fc_rtos::saul::{DeviceClass, Phydat};

    fn engine() -> HostingEngine {
        HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer)
    }

    #[test]
    fn thread_counter_counts_activations() {
        let mut e = engine();
        e.register_hook(
            Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
        let id = e
            .install(
                "pid_log",
                1,
                &thread_counter().to_bytes(),
                thread_counter_request(),
            )
            .unwrap();
        e.attach(id, sched_hook_id()).unwrap();
        // Simulate switches to thread 3 twice and thread 5 once.
        for next in [3u64, 5, 3] {
            let mut ctx = Vec::new();
            ctx.extend_from_slice(&0u64.to_le_bytes());
            ctx.extend_from_slice(&next.to_le_bytes());
            e.fire_hook(sched_hook_id(), &ctx, &[]).unwrap();
        }
        let global = e.env().stores().global_snapshot();
        assert_eq!(global.fetch(3), 2);
        assert_eq!(global.fetch(5), 1);
        assert_eq!(global.fetch(0), 0, "idle (pid 0) never counted");
    }

    #[test]
    fn thread_counter_ignores_zero_pid() {
        let mut e = engine();
        let id = e
            .install(
                "pid_log",
                1,
                &thread_counter().to_bytes(),
                thread_counter_request(),
            )
            .unwrap();
        let ctx = [0u8; 16];
        let r = e.execute(id, &ctx, &[]).unwrap();
        assert_eq!(r.result, Ok(0));
        assert!(e.env().stores().global_snapshot().is_empty());
    }

    #[test]
    fn sensor_process_builds_moving_average() {
        let mut e = engine();
        e.env()
            .saul()
            .lock()
            .unwrap()
            .register("temp0", DeviceClass::SenseTemp, {
                let mut v = 2000;
                move || {
                    v += 8;
                    Phydat {
                        value: v,
                        scale: -2,
                    }
                }
            });
        let id = e
            .install(
                "sensor",
                2,
                &sensor_process().to_bytes(),
                sensor_process_request(),
            )
            .unwrap();
        let first = e.execute(id, &[0u8; 4], &[]).unwrap();
        // First sample seeds the average.
        assert_eq!(first.result, Ok(2008));
        for _ in 0..10 {
            e.execute(id, &[0u8; 4], &[]).unwrap();
        }
        let avg = e
            .env()
            .stores()
            .tenant_snapshot(2)
            .unwrap()
            .fetch(SENSOR_VALUE_KEY);
        assert!(
            avg > 2008 && avg < 2100,
            "avg {avg} tracks the rising signal"
        );
    }

    #[test]
    fn coap_formatter_emits_parsable_response() {
        let mut e = engine();
        // Seed the tenant store as sensor_process would.
        e.env()
            .stores()
            .store(9, 2, fc_kvstore::Scope::Tenant, 1, 2155)
            .unwrap();
        let id = e
            .install(
                "fmt",
                2,
                &coap_formatter().to_bytes(),
                coap_formatter_request(),
            )
            .unwrap();
        let r = e
            .execute(
                id,
                &coap_ctx_bytes(64),
                &[HostRegion::read_write("pkt", vec![0; 64])],
            )
            .unwrap();
        let len = r.result.expect("formatter succeeds") as usize;
        let pdu = &r.regions_back[0].1[..len];
        let msg = fc_net::coap::Message::decode(pdu).unwrap();
        assert_eq!(msg.code, fc_net::coap::Code::Content);
        assert_eq!(msg.payload, b"2155");
    }

    #[test]
    fn fletcher_app_matches_reference() {
        let mut e = engine();
        let id = e
            .install(
                "fletcher",
                1,
                &fletcher32_app().to_bytes(),
                ContractRequest::default(),
            )
            .unwrap();
        let input: Vec<u8> = (0..360).map(|i| 0x20 + (i * 7 % 95) as u8).collect();
        let r = e.execute(id, &fletcher_ctx(&input), &[]).unwrap();
        // Reference value computed by the shared algorithm.
        let expected = {
            let (mut s1, mut s2) = (0xffffu32, 0xffffu32);
            for c in input.chunks(2) {
                let w = c[0] as u32 | ((c.get(1).copied().unwrap_or(0) as u32) << 8);
                s1 += w;
                s1 = (s1 & 0xffff) + (s1 >> 16);
                s2 += s1;
                s2 = (s2 & 0xffff) + (s2 >> 16);
            }
            s1 = (s1 & 0xffff) + (s1 >> 16);
            s2 = (s2 & 0xffff) + (s2 >> 16);
            (s2 << 16) | s1
        };
        assert_eq!(r.result, Ok(expected as u64));
    }

    #[test]
    fn fletcher_timing_lands_in_figure9_range() {
        let mut e = engine();
        let id = e
            .install(
                "fletcher",
                1,
                &fletcher32_app().to_bytes(),
                ContractRequest::default(),
            )
            .unwrap();
        let input: Vec<u8> = vec![0x41; 360];
        let r = e.execute(id, &fletcher_ctx(&input), &[]).unwrap();
        let us = Platform::CortexM4.us_from_cycles(r.total_cycles());
        // Paper: 1.3–2.2 ms across platforms; Table 2 says 2.13 ms on M4.
        assert!((1_300.0..3_200.0).contains(&us), "{us} µs");
    }

    #[test]
    fn packet_filter_blocks_only_matching_port() {
        let mut e = engine();
        let id = e
            .install(
                "fw",
                1,
                &packet_filter(5683).to_bytes(),
                ContractRequest::default(),
            )
            .unwrap();
        let mk_pkt = |port: u16| {
            let mut p = vec![0u8; 8];
            p[2..4].copy_from_slice(&port.to_be_bytes());
            p
        };
        let ctx = 8u32.to_le_bytes().to_vec();
        let blocked = e
            .execute(id, &ctx, &[HostRegion::read_only("pkt", mk_pkt(5683))])
            .unwrap();
        assert_eq!(blocked.result, Ok(1));
        let passed = e
            .execute(id, &ctx, &[HostRegion::read_only("pkt", mk_pkt(80))])
            .unwrap();
        assert_eq!(passed.result, Ok(0));
        // Short packet accepted (cannot carry a port).
        let short = e
            .execute(
                id,
                &2u32.to_le_bytes(),
                &[HostRegion::read_only("pkt", vec![0; 2])],
            )
            .unwrap();
        assert_eq!(short.result, Ok(0));
    }

    #[test]
    fn app_images_are_a_few_hundred_bytes() {
        // Paper Table 2 scale: applets in the hundreds of bytes.
        for (name, app) in [
            ("thread_counter", thread_counter()),
            ("sensor_process", sensor_process()),
            ("coap_formatter", coap_formatter()),
            ("fletcher32", fletcher32_app()),
        ] {
            let size = app.to_bytes().len();
            assert!((64..700).contains(&size), "{name}: {size} B");
        }
    }
}
