//! Permission contracts between containers and the host OS (paper §5
//! "Use of OS Interfaces" and §11 "Controlling Tenant Privileges").
//!
//! "The OS restricts the set of privileges that can be granted, the
//! container specifies the set of privileges it requires, and the
//! hosting engine grants the intersection of these sets."

use std::collections::HashSet;

/// Helper-identifier set shorthand.
pub type HelperSet = HashSet<u32>;

/// What a container asks for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContractRequest {
    /// Helper (system call) ids the application intends to use.
    pub helpers: HelperSet,
    /// Extra stack bytes beyond the eBPF default (paper §8.1 sketches
    /// this as a future contract item; the engine honours it).
    pub extra_stack: usize,
}

impl ContractRequest {
    /// A request for the given helper ids.
    pub fn helpers<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        ContractRequest {
            helpers: ids.into_iter().collect(),
            extra_stack: 0,
        }
    }
}

/// What the hook/OS side offers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContractOffer {
    /// Helper ids this hook's launchpad exposes.
    pub helpers: HelperSet,
    /// Maximum extra stack the OS will grant.
    pub max_extra_stack: usize,
}

impl ContractOffer {
    /// An offer of the given helper ids.
    pub fn helpers<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        ContractOffer {
            helpers: ids.into_iter().collect(),
            max_extra_stack: 0,
        }
    }
}

/// The granted contract: the intersection of request and offer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Contract {
    /// Granted helper ids (request ∩ offer).
    pub helpers: HelperSet,
    /// Granted extra stack bytes (min of request and offer ceiling).
    pub extra_stack: usize,
}

impl Contract {
    /// Computes the grant.
    pub fn grant(request: &ContractRequest, offer: &ContractOffer) -> Self {
        Contract {
            helpers: request
                .helpers
                .intersection(&offer.helpers)
                .copied()
                .collect(),
            extra_stack: request.extra_stack.min(offer.max_extra_stack),
        }
    }

    /// True when every requested helper was granted — callers may treat
    /// a partial grant as a deployment error rather than a silent
    /// downgrade.
    pub fn satisfies(&self, request: &ContractRequest) -> bool {
        request.helpers.is_subset(&self.helpers) && self.extra_stack >= request.extra_stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_is_intersection() {
        let req = ContractRequest::helpers([1, 2, 3]);
        let offer = ContractOffer::helpers([2, 3, 4]);
        let c = Contract::grant(&req, &offer);
        assert_eq!(c.helpers, [2, 3].into_iter().collect());
        assert!(!c.satisfies(&req));
    }

    #[test]
    fn full_grant_satisfies() {
        let req = ContractRequest::helpers([1, 2]);
        let offer = ContractOffer::helpers([1, 2, 3]);
        assert!(Contract::grant(&req, &offer).satisfies(&req));
    }

    #[test]
    fn extra_stack_clamped_to_offer() {
        let mut req = ContractRequest::helpers([]);
        req.extra_stack = 1024;
        let mut offer = ContractOffer::helpers([]);
        offer.max_extra_stack = 256;
        let c = Contract::grant(&req, &offer);
        assert_eq!(c.extra_stack, 256);
        assert!(!c.satisfies(&req));
    }

    #[test]
    fn empty_request_always_satisfied() {
        let req = ContractRequest::default();
        let offer = ContractOffer::default();
        assert!(Contract::grant(&req, &offer).satisfies(&req));
    }
}
