//! Secure deployment of containers over the network (paper §5):
//! SUIT-manifest-driven install/update of applications onto hook
//! launchpads, with the payload staged over block-wise CoAP.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use fc_net::block::{slice_block, Block};
use fc_net::coap::{option, Code, Message};
use fc_net::endpoint::CoapServer;
use fc_rbpf::isa::{self, CALL};
use fc_rbpf::program::FcProgram;
use fc_suit::{Manifest, SigningKey, UpdateError, UpdateManager, Uuid, VerifyingKey};

use crate::contract::ContractRequest;
use crate::engine::{ContainerId, EngineError, HostingEngine};

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// Manifest/payload validation failed.
    Update(UpdateError),
    /// The hosting engine rejected the application.
    Engine(EngineError),
    /// The manifest's payload URI has not been staged.
    PayloadUnavailable {
        /// The URI the manifest named.
        uri: String,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Update(e) => write!(f, "update rejected: {e}"),
            DeployError::Engine(e) => write!(f, "engine rejected: {e}"),
            DeployError::PayloadUnavailable { uri } => {
                write!(f, "payload `{uri}` not available")
            }
        }
    }
}

impl std::error::Error for DeployError {}

impl From<UpdateError> for DeployError {
    fn from(e: UpdateError) -> Self {
        DeployError::Update(e)
    }
}

impl From<EngineError> for DeployError {
    fn from(e: EngineError) -> Self {
        DeployError::Engine(e)
    }
}

/// Derives the helper set an application image actually calls, which
/// becomes its contract request — the container cannot over-request.
pub fn required_helpers(image: &FcProgram) -> HashSet<u32> {
    image
        .insns()
        .unwrap_or_default()
        .iter()
        .filter(|i| i.opcode == CALL)
        .map(|i| i.imm as u32)
        .collect()
}

/// The contract request a deployed image is granted: exactly the
/// helpers it calls ([`required_helpers`]) and no extra stack — the
/// shared policy of the single-device [`UpdateService`] and the
/// live-host deploy path, so both install identically.
pub fn contract_request_for(image: &FcProgram) -> ContractRequest {
    ContractRequest {
        helpers: required_helpers(image),
        extra_stack: 0,
    }
}

/// Canonical container name for a SUIT storage location — shared by
/// every deploy path so a reference engine replaying the same update
/// sequence produces bit-identical reports.
pub fn component_name(component: Uuid) -> String {
    format!("suit-{component}")
}

/// Author-side: builds and signs the manifest + payload pair for an
/// application targeting a hook.
pub fn author_update(
    app: &FcProgram,
    hook: Uuid,
    sequence: u64,
    uri: &str,
    key: &SigningKey,
    key_id: &[u8],
) -> (Vec<u8>, Vec<u8>) {
    let payload = app.to_bytes();
    let manifest = Manifest {
        sequence,
        component: hook,
        digest: fc_suit::sha256::sha256(&payload),
        size: payload.len() as u32,
        uri: uri.to_owned(),
    };
    (manifest.sign(key, key_id), payload)
}

/// Device-side deployment service: the SUIT update manager plus the
/// binding from storage-location UUIDs to installed containers.
#[derive(Debug, Default)]
pub struct UpdateService {
    manager: UpdateManager,
    tenants: HashMap<Vec<u8>, fc_kvstore::TenantId>,
    installed: HashMap<Uuid, ContainerId>,
}

impl UpdateService {
    /// Creates a service with no trust anchors.
    pub fn new() -> Self {
        UpdateService::default()
    }

    /// Provisions a tenant: its signing key id, verification key and
    /// tenant id for store scoping.
    pub fn provision_tenant(
        &mut self,
        key_id: &[u8],
        key: VerifyingKey,
        tenant: fc_kvstore::TenantId,
    ) {
        self.manager.trust(key_id, key);
        self.tenants.insert(key_id.to_vec(), tenant);
    }

    /// Container currently installed for a storage location.
    pub fn installed_container(&self, component: Uuid) -> Option<ContainerId> {
        self.installed.get(&component).copied()
    }

    /// Updates accepted so far.
    pub fn accepted_count(&self) -> u64 {
        self.manager.accepted_count()
    }

    /// Updates rejected so far.
    pub fn rejected_count(&self) -> u64 {
        self.manager.rejected_count()
    }

    /// Applies a signed manifest end to end: verify → rollback-check →
    /// fetch payload (through `fetch`) → digest-check → pre-flight
    /// verify → install → attach to the hook named by the storage
    /// location, replacing any previous container there.
    ///
    /// # Errors
    ///
    /// Any [`DeployError`]; on error the previously installed container
    /// keeps running (updates are atomic).
    pub fn apply<F>(
        &mut self,
        engine: &mut HostingEngine,
        envelope: &[u8],
        mut fetch: F,
    ) -> Result<(ContainerId, Uuid), DeployError>
    where
        F: FnMut(&str) -> Option<Vec<u8>>,
    {
        let pending = self.manager.begin(envelope)?;
        let uri = pending.manifest.uri.clone();
        let payload = fetch(&uri).ok_or(DeployError::PayloadUnavailable { uri })?;
        let tenant = self
            .tenants
            .get(&pending.key_id)
            .copied()
            .unwrap_or_default();
        let hook = pending.manifest.component;

        // Validate the image against the engine *before* committing the
        // sequence number, so a bad payload doesn't burn it.
        let image = FcProgram::from_bytes(&payload).map_err(EngineError::Parse)?;
        let request = contract_request_for(&image);
        let name = component_name(hook);
        let new_id = engine.install(&name, tenant, &payload, request)?;
        match engine.attach(new_id, hook) {
            Ok(()) => {}
            Err(e) => {
                engine.remove(new_id);
                return Err(e.into());
            }
        }
        // Commit the SUIT state only now.
        let ready = match self.manager.complete(pending, payload) {
            Ok(r) => r,
            Err(e) => {
                engine.detach(new_id, hook).ok();
                engine.remove(new_id);
                return Err(e.into());
            }
        };
        debug_assert_eq!(ready.manifest.component, hook);
        // Replace the previous container for this storage location.
        if let Some(old) = self.installed.insert(hook, new_id) {
            engine.detach(old, hook).ok();
            engine.remove(old);
        }
        Ok((new_id, hook))
    }
}

/// Shared handle type used by the CoAP endpoint glue.
pub type Shared<T> = Rc<RefCell<T>>;

/// Registers the device's SUIT CoAP endpoints on a server:
///
/// * `POST /suit/payload?name=<uri>` with Block1 options stages payload
///   blocks;
/// * `POST /suit/manifest` submits the signed manifest, triggering the
///   full update pipeline against the staged payloads.
pub fn register_coap_endpoints(
    server: &mut CoapServer,
    service: Shared<UpdateService>,
    engine: Shared<HostingEngine>,
) -> Shared<HashMap<String, Vec<u8>>> {
    let staged: Shared<HashMap<String, Vec<u8>>> = Rc::new(RefCell::new(HashMap::new()));

    {
        let staged = staged.clone();
        server.resource("suit/payload", move |req| {
            let name = req
                .options
                .iter()
                .find(|(n, _)| *n == option::URI_QUERY)
                .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
                .unwrap_or_else(|| "default".to_owned());
            let block = req
                .option_uint(option::BLOCK1)
                .and_then(Block::from_uint)
                .unwrap_or(Block {
                    num: 0,
                    more: false,
                    szx: 6,
                });
            let mut staged = staged.borrow_mut();
            let buf = staged.entry(name).or_default();
            // One shared staging state machine (restart clears stale
            // bytes, duplicates are idempotent, holes reject) for this
            // endpoint and the hosting runtime's /suit/payload lane.
            if !fc_net::block::stage_chunk(buf, block.offset(), &req.payload, block.num == 0) {
                return Message::response_to(req, Code::BadRequest);
            }
            let mut resp = Message::response_to(
                req,
                if block.more {
                    Code::Continue
                } else {
                    Code::Changed
                },
            );
            resp.add_option_uint(option::BLOCK1, block.to_uint());
            resp
        });
    }

    {
        let staged = staged.clone();
        server.resource("suit/manifest", move |req| {
            let mut service = service.borrow_mut();
            let mut engine = engine.borrow_mut();
            let staged = staged.borrow();
            let result = service.apply(&mut engine, &req.payload, |uri| staged.get(uri).cloned());
            match result {
                Ok((id, _)) => {
                    let mut resp = Message::response_to(req, Code::Changed);
                    resp.payload = id.to_string().into_bytes();
                    resp
                }
                Err(DeployError::Update(UpdateError::UnknownKeyId { .. }))
                | Err(DeployError::Update(UpdateError::Manifest(_))) => {
                    Message::response_to(req, Code::Unauthorized)
                }
                Err(_) => Message::response_to(req, Code::BadRequest),
            }
        });
    }

    staged
}

/// Author-side convenience: pushes a payload to the device in Block1
/// chunks through a request-delivery closure (tests drive this over the
/// lossy link; `send` returns the device's response).
pub fn push_payload_blocks<F>(uri: &str, payload: &[u8], block_size: usize, mut send: F) -> bool
where
    F: FnMut(Message) -> Option<Message>,
{
    let mut num = 0u32;
    loop {
        let block = Block::with_size(num, false, block_size);
        let Some((chunk, more)) = slice_block(payload, block) else {
            return num == 0 && payload.is_empty();
        };
        let mut req = Message::request(Code::Post, 0, &[]);
        req.set_path("suit/payload");
        req.add_option(option::URI_QUERY, uri.as_bytes().to_vec());
        req.add_option_uint(
            option::BLOCK1,
            Block {
                num,
                more,
                szx: block.szx,
            }
            .to_uint(),
        );
        req.payload = chunk;
        match send(req) {
            Some(resp) if resp.code.is_success() => {}
            _ => return false,
        }
        if !more {
            return true;
        }
        num += 1;
    }
}

/// Re-exported instruction constant check used by `required_helpers`
/// (kept here so the module is self-contained in rustdoc).
const _: () = assert!(CALL == isa::CALL);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::contract::ContractOffer;
    use crate::helpers_impl::standard_helper_ids;
    use crate::hooks::{sched_hook_id, Hook, HookKind, HookPolicy};
    use fc_rtos::platform::{Engine, Platform};

    fn engine_with_sched_hook() -> HostingEngine {
        let mut e = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
        e.register_hook(
            Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
        e
    }

    fn maintainer() -> SigningKey {
        SigningKey::from_seed(b"tenant-a-maintainer")
    }

    fn service() -> UpdateService {
        let mut s = UpdateService::new();
        s.provision_tenant(b"tenant-a", maintainer().verifying_key(), 1);
        s
    }

    #[test]
    fn required_helpers_derived_from_calls() {
        let app = apps::thread_counter();
        let req = required_helpers(&app);
        assert_eq!(
            req,
            [
                fc_rbpf::helpers::ids::BPF_FETCH_GLOBAL,
                fc_rbpf::helpers::ids::BPF_STORE_GLOBAL
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn end_to_end_apply_installs_and_attaches() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let app = apps::thread_counter();
        let (envelope, payload) =
            author_update(&app, sched_hook_id(), 1, "app1", &maintainer(), b"tenant-a");
        let (id, hook) = svc
            .apply(&mut engine, &envelope, |uri| {
                (uri == "app1").then(|| payload.clone())
            })
            .unwrap();
        assert_eq!(hook, sched_hook_id());
        assert_eq!(engine.attached(sched_hook_id()), vec![id]);
        assert_eq!(svc.installed_container(sched_hook_id()), Some(id));
    }

    #[test]
    fn update_replaces_previous_container() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let (env1, pay1) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            1,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        let (id1, _) = svc
            .apply(&mut engine, &env1, |_| Some(pay1.clone()))
            .unwrap();
        let (env2, pay2) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            2,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        let (id2, _) = svc
            .apply(&mut engine, &env2, |_| Some(pay2.clone()))
            .unwrap();
        assert_ne!(id1, id2);
        assert_eq!(engine.attached(sched_hook_id()), vec![id2]);
        assert_eq!(engine.container_count(), 1, "old container removed");
    }

    #[test]
    fn replayed_manifest_rejected() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let (env1, pay1) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            1,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        svc.apply(&mut engine, &env1, |_| Some(pay1.clone()))
            .unwrap();
        let err = svc
            .apply(&mut engine, &env1, |_| Some(pay1.clone()))
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Update(UpdateError::Rollback { .. })
        ));
    }

    #[test]
    fn tampered_payload_rejected_without_burning_sequence() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let (env, payload) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            1,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        let mut bad = payload.clone();
        // Tamper inside the text section (keeps framing valid).
        let n = bad.len();
        bad[n - 9] ^= 0xff;
        let err = svc
            .apply(&mut engine, &env, |_| Some(bad.clone()))
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Update(UpdateError::DigestMismatch)
                | DeployError::Engine(EngineError::Verify(_))
        ));
        assert_eq!(engine.container_count(), 0, "nothing installed");
        // Genuine payload still deploys (sequence not burned).
        svc.apply(&mut engine, &env, |_| Some(payload.clone()))
            .unwrap();
    }

    #[test]
    fn unknown_hook_in_manifest_rejected() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let bogus = Uuid::from_name("hooks", "does-not-exist");
        let (env, pay) = author_update(
            &apps::thread_counter(),
            bogus,
            1,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        let err = svc
            .apply(&mut engine, &env, |_| Some(pay.clone()))
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Engine(EngineError::UnknownHook(_))
        ));
        assert_eq!(engine.container_count(), 0);
    }

    #[test]
    fn missing_payload_reports_unavailable() {
        let mut engine = engine_with_sched_hook();
        let mut svc = service();
        let (env, _pay) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            1,
            "a",
            &maintainer(),
            b"tenant-a",
        );
        let err = svc.apply(&mut engine, &env, |_| None).unwrap_err();
        assert!(matches!(err, DeployError::PayloadUnavailable { .. }));
    }

    #[test]
    fn coap_endpoints_stage_and_install() {
        let engine = Rc::new(RefCell::new(engine_with_sched_hook()));
        let svc = Rc::new(RefCell::new(service()));
        let mut server = CoapServer::new();
        register_coap_endpoints(&mut server, svc.clone(), engine.clone());

        let app = apps::thread_counter();
        let (envelope, payload) =
            author_update(&app, sched_hook_id(), 1, "app1", &maintainer(), b"tenant-a");

        // Push the payload in 32-byte blocks.
        let ok = push_payload_blocks("app1", &payload, 32, |req| Some(server.dispatch(&req)));
        assert!(ok);

        // Then the manifest.
        let mut req = Message::request(Code::Post, 7, &[1]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = server.dispatch(&req);
        assert_eq!(resp.code, Code::Changed);
        assert_eq!(engine.borrow().container_count(), 1);
        assert_eq!(svc.borrow().accepted_count(), 1);
    }

    #[test]
    fn coap_manifest_with_bad_signature_gets_401() {
        let engine = Rc::new(RefCell::new(engine_with_sched_hook()));
        let svc = Rc::new(RefCell::new(service()));
        let mut server = CoapServer::new();
        register_coap_endpoints(&mut server, svc.clone(), engine.clone());
        let attacker = SigningKey::from_seed(b"attacker");
        let (envelope, _) = author_update(
            &apps::thread_counter(),
            sched_hook_id(),
            1,
            "x",
            &attacker,
            b"tenant-a", // claims tenant-a's key id
        );
        let mut req = Message::request(Code::Post, 7, &[1]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = server.dispatch(&req);
        assert_eq!(resp.code, Code::Unauthorized);
        assert_eq!(engine.borrow().container_count(), 0);
    }
}
