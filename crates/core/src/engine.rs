//! The Femto-Container hosting engine (paper §7, Figure 3): installs
//! verified applications into slots, attaches them to launchpad hooks,
//! and executes them in isolation when events fire.
//!
//! ## Zero-allocation event dispatch
//!
//! Hook dispatch sits on hot paths (scheduler switches, packet
//! reception), so everything that *can* be built once per container is
//! built at install time and reused per event:
//!
//! * the program is verified **and lowered** ([`DecodedProgram`]) once,
//!   and its helper call sites are **bound** to registry slots so hot
//!   helpers dispatch without a hash lookup;
//! * the helper registry is built once (the host environment is shared
//!   through an `Arc`, so helper closures are `'static` **and `Send`**);
//! * each slot owns an `ExecArena` whose [`MemoryMap`] skeleton
//!   (stack + `.data` + `.rodata`) persists across events. Isolation is
//!   preserved by re-establishing the initial state between runs: the
//!   stack is zeroed, `.data` is rewritten from the installed image,
//!   and per-event regions (context, host grants) are recycled into a
//!   buffer pool — in steady state an event allocates nothing.
//!
//! ## Concurrency boundary
//!
//! A `HostingEngine` is single-threaded by design (it models one
//! execution shard), but it is `Send`, and several engines can share
//! one [`HostEnv`] (see [`HostingEngine::with_env`]): that is exactly
//! how the `fc-host` runtime runs N engine shards on N worker threads
//! over common stores/sensors/clock. [`ContainerSlot`]s are themselves
//! `Send` and can be moved between engines with
//! [`HostingEngine::eject`] / [`HostingEngine::adopt`] as long as the
//! engines share the same environment.

use std::collections::BTreeMap;
use std::sync::Arc;

use fc_kvstore::TenantId;
use fc_rbpf::certfc::CertInterpreter;
use fc_rbpf::decode::DecodedProgram;
use fc_rbpf::error::VmError;
use fc_rbpf::fast::FastInterpreter;
use fc_rbpf::interp::Interpreter;
use fc_rbpf::mem::{MemoryMap, Perm, RegionId, CTX_VADDR, STACK_SIZE};
use fc_rbpf::program::{FcProgram, ParseError};
use fc_rbpf::threaded::{ThreadedInterpreter, ThreadedProgram};
use fc_rbpf::verifier::{verify, VerifiedProgram, VerifierError};
use fc_rbpf::vm::{ExecConfig, OpCounts};
use fc_rtos::platform::{cycle_model, Engine as EngineFlavor, Platform};
use fc_suit::Uuid;

use crate::contract::{Contract, ContractOffer, ContractRequest};
use crate::helpers_impl::{build_registry, HelperMeter, HostEnv};
use crate::hooks::Hook;

/// Identifier the engine assigns to an installed container.
pub type ContainerId = u32;

/// Which execution tier the Femto-Container flavour dispatches to.
///
/// All tiers are proven observationally equivalent by the differential
/// suite; the knob trades startup-independent hot-loop speed against
/// debuggability of the executed representation. It only affects
/// [`EngineFlavor::FemtoContainer`] — the `Rbpf` flavour always runs
/// the reference interpreter and `CertFc` the defensive engine, since
/// those flavours *are* the paper's comparison points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The vanilla reference interpreter (`interp.rs`): fetch/decode
    /// per op, the semantic baseline.
    Reference,
    /// The decoded fast path (`fast.rs`): pre-decoded ops, single
    /// `match` dispatch site.
    Fast,
    /// The threaded-code tier (`threaded.rs`): per-op handler chains
    /// with pair fusion and cursor-backed memory access. The default —
    /// shard workers run this unless configured down.
    #[default]
    Threaded,
}

/// Fixed per-instance housekeeping bytes (slot struct, region table —
/// the paper's 624 B per instance = 512 B stack + register set +
/// housekeeping, §10.3).
pub const INSTANCE_OVERHEAD_BYTES: usize = 24;

/// Why an engine operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Malformed application image.
    Parse(ParseError),
    /// The pre-flight checker rejected the application.
    Verify(VerifierError),
    /// Unknown hook UUID (bad storage location in a manifest).
    UnknownHook(Uuid),
    /// Unknown container id.
    UnknownContainer(ContainerId),
    /// The contract grant does not cover the request (missing helper
    /// ids listed).
    ContractUnsatisfied {
        /// Helper ids requested but not offered.
        missing: Vec<u32>,
    },
    /// The container is not attached to that hook.
    NotAttached,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "image rejected: {e}"),
            EngineError::Verify(e) => write!(f, "pre-flight check failed: {e}"),
            EngineError::UnknownHook(u) => write!(f, "unknown hook {u}"),
            EngineError::UnknownContainer(c) => write!(f, "unknown container {c}"),
            EngineError::ContractUnsatisfied { missing } => {
                write!(f, "contract not satisfied; missing helpers {missing:?}")
            }
            EngineError::NotAttached => write!(f, "container not attached to hook"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<VerifierError> for EngineError {
    fn from(e: VerifierError) -> Self {
        EngineError::Verify(e)
    }
}

/// Per-container execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerMetrics {
    /// Completed executions.
    pub executions: u64,
    /// Executions aborted by a fault.
    pub faults: u64,
    /// Total simulated cycles (VM + helper internals).
    pub total_cycles: u64,
}

/// Reusable per-slot execution state: the memory-map skeleton and its
/// well-known regions, rebuilt (not reallocated) between events.
#[derive(Debug)]
struct ExecArena {
    /// Map whose first `skeleton` regions (stack, `.data`, `.rodata`)
    /// persist across events; per-event regions are appended after them
    /// and recycled away by [`ExecArena::reset`].
    mem: MemoryMap,
    skeleton: usize,
    stack: RegionId,
    data: Option<RegionId>,
    /// Buffers recovered from dropped per-event regions (context, host
    /// grants), cleared but with capacity retained, so steady-state
    /// events reuse allocations instead of making fresh ones.
    pool: Vec<Vec<u8>>,
}

impl ExecArena {
    fn new(stack_bytes: usize, image: &FcProgram) -> Self {
        let mut mem = MemoryMap::new();
        let stack = mem.add_stack(stack_bytes);
        let data = if image.data.is_empty() {
            None
        } else {
            Some(mem.add_data(image.data.clone()))
        };
        if !image.rodata.is_empty() {
            mem.add_rodata(image.rodata.clone());
        }
        let skeleton = mem.region_count();
        ExecArena {
            mem,
            skeleton,
            stack,
            data,
            pool: Vec::new(),
        }
    }

    /// Restores the pristine pre-event state: recycles per-event
    /// regions into the buffer pool, zeroes the stack and rewrites
    /// `.data` from the installed image — the isolation guarantee of a
    /// freshly built map, without the allocations.
    fn reset(&mut self, image: &FcProgram) {
        self.mem.recycle_regions(self.skeleton, &mut self.pool);
        self.mem.region_bytes_mut(self.stack).fill(0);
        if let Some(data) = self.data {
            self.mem.region_bytes_mut(data).copy_from_slice(&image.data);
        }
    }

    /// A cleared buffer (pooled if available) pre-filled with `init`.
    fn event_buf(&mut self, init: &[u8]) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.extend_from_slice(init);
        buf
    }
}

/// An installed container.
#[derive(Debug)]
pub struct ContainerSlot {
    /// Engine-assigned id.
    pub id: ContainerId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Human-readable name.
    pub name: String,
    image: FcProgram,
    program: VerifiedProgram,
    /// Fast-path lowering of `program`, produced once at install, with
    /// helper call sites bound to registry slots.
    decoded: DecodedProgram,
    /// Handler-chain lowering of `decoded` for the threaded tier,
    /// produced once at install (after helper binding, so slot-bound
    /// call sites carry over).
    threaded: ThreadedProgram,
    /// Helper registry built once at install from the granted contract.
    helpers: fc_rbpf::helpers::HelperRegistry<'static>,
    /// Helper-internal cycle meter captured by `helpers`' closures.
    meter: HelperMeter,
    arena: ExecArena,
    contract: Contract,
    config: ExecConfig,
    /// Execution statistics.
    pub metrics: ContainerMetrics,
}

// A slot is the unit of work a concurrent host moves between engine
// shards; everything inside (decoded program, Send helpers, arena) is
// thread-movable.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ContainerSlot>();
    assert_send::<HostingEngine>();
};

impl ContainerSlot {
    /// Granted contract.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// Per-instance RAM: VM stack (plus granted extra), register set
    /// and housekeeping (paper Table 3 / §10.3: 624 B default).
    pub fn ram_bytes(&self) -> usize {
        STACK_SIZE + self.contract.extra_stack + 11 * 8 + INSTANCE_OVERHEAD_BYTES
    }

    /// Bytes of the stored application image (flash/storage cost).
    pub fn image_bytes(&self) -> usize {
        self.image.byte_size()
    }
}

/// A host region granted to one execution (e.g. a packet buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRegion {
    /// Diagnostic name.
    pub name: String,
    /// Initial contents.
    pub data: Vec<u8>,
    /// Whether the container may write it.
    pub writable: bool,
}

impl HostRegion {
    /// A read-only grant (the paper's firewall example: inspect, not
    /// modify).
    pub fn read_only(name: &str, data: Vec<u8>) -> Self {
        HostRegion {
            name: name.to_owned(),
            data,
            writable: false,
        }
    }

    /// A read-write grant (e.g. a response buffer).
    pub fn read_write(name: &str, data: Vec<u8>) -> Self {
        HostRegion {
            name: name.to_owned(),
            data,
            writable: true,
        }
    }
}

/// Result of one container execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Which container ran.
    pub container: ContainerId,
    /// Its return value, or the fault that aborted it.
    pub result: Result<u64, VmError>,
    /// Dynamic operation counts.
    pub counts: OpCounts,
    /// Simulated VM cycles on the engine's platform.
    pub vm_cycles: u64,
    /// Simulated helper-internal cycles.
    pub helper_cycles: u64,
    /// Final contents of the context region.
    pub ctx_back: Vec<u8>,
    /// Final contents of each granted host region, in grant order.
    pub regions_back: Vec<(String, Vec<u8>)>,
}

impl ExecutionReport {
    /// Total simulated cycles for this execution.
    pub fn total_cycles(&self) -> u64 {
        self.vm_cycles + self.helper_cycles
    }
}

/// Result of firing a hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookReport {
    /// Per-container reports, in attachment order.
    pub executions: Vec<ExecutionReport>,
    /// The policy-combined result the firmware acts on.
    pub combined: Option<u64>,
    /// Total simulated cycles including the launchpad overhead
    /// (Table 4's "Hook with Application" measurement).
    pub cycles: u64,
}

struct HookEntry {
    hook: Hook,
    offer: ContractOffer,
    attached: Vec<ContainerId>,
    fires: u64,
}

/// The hosting engine.
///
/// # Examples
///
/// ```
/// use fc_core::engine::HostingEngine;
/// use fc_core::contract::ContractRequest;
/// use fc_rbpf::program::ProgramBuilder;
/// use fc_rtos::platform::{Engine, Platform};
///
/// let mut engine = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
/// let image = ProgramBuilder::new().asm("mov r0, 42\nexit").unwrap().build();
/// let id = engine
///     .install("answer", 1, &image.to_bytes(), ContractRequest::default())
///     .unwrap();
/// let report = engine.execute(id, &[], &[]).unwrap();
/// assert_eq!(report.result, Ok(42));
/// ```
pub struct HostingEngine {
    platform: Platform,
    flavor: EngineFlavor,
    tier: ExecTier,
    env: Arc<HostEnv>,
    containers: BTreeMap<ContainerId, ContainerSlot>,
    hooks: BTreeMap<Uuid, HookEntry>,
    next_id: ContainerId,
    exec_config: ExecConfig,
}

impl HostingEngine {
    /// Creates an engine for the given platform using the given
    /// interpreter flavour (Femto-Containers or CertFC), with a private
    /// host environment.
    pub fn new(platform: Platform, flavor: EngineFlavor) -> Self {
        Self::with_env(
            platform,
            flavor,
            Arc::new(HostEnv::new(fc_kvstore::DEFAULT_CAPACITY)),
        )
    }

    /// Creates an engine **shard** over a shared host environment: N
    /// engines built from clones of the same `Arc<HostEnv>` see one set
    /// of stores, sensors, console and clock, while keeping all
    /// execution state (slots, arenas, registries) private. This is the
    /// constructor the concurrent `fc-host` runtime uses.
    pub fn with_env(platform: Platform, flavor: EngineFlavor, env: Arc<HostEnv>) -> Self {
        HostingEngine {
            platform,
            flavor,
            tier: ExecTier::default(),
            env,
            containers: BTreeMap::new(),
            hooks: BTreeMap::new(),
            next_id: 1,
            exec_config: ExecConfig::default(),
        }
    }

    /// The engine's platform.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The interpreter flavour in use.
    pub fn flavor(&self) -> EngineFlavor {
        self.flavor
    }

    /// The execution tier the Femto-Container flavour dispatches to.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Selects the execution tier for the Femto-Container flavour.
    /// Takes effect on the next event — every tier's representation is
    /// lowered at install, so switching costs nothing at run time.
    pub fn set_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    /// Overrides the finite-execution budgets applied to every
    /// container — the ones already installed as well as future
    /// installs, so a tightened budget (the fairness/DoS control)
    /// takes effect immediately and replicas installed later can
    /// never run under a different budget than their originals.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec_config = config;
        for slot in self.containers.values_mut() {
            slot.config = config;
        }
    }

    /// Host environment (stores, sensors, console) for inspection and
    /// device registration.
    pub fn env(&self) -> &HostEnv {
        &self.env
    }

    /// Shared handle to the host environment, for building sibling
    /// engine shards with [`HostingEngine::with_env`].
    pub fn env_handle(&self) -> Arc<HostEnv> {
        Arc::clone(&self.env)
    }

    /// Advances the engine's virtual clock (driven by the RTOS glue).
    pub fn set_now_us(&self, now_us: u64) {
        self.env.set_now_us(now_us);
    }

    /// Registers a launchpad hook with the helper set it offers.
    pub fn register_hook(&mut self, hook: Hook, offer: ContractOffer) {
        self.hooks.insert(
            hook.id,
            HookEntry {
                hook,
                offer,
                attached: Vec::new(),
                fires: 0,
            },
        );
    }

    /// Unregisters a launchpad hook, returning its descriptor and the
    /// containers that were attached, **in attachment order** — the
    /// contract a migrating host needs to re-create the hook on a
    /// sibling shard with identical per-event semantics. The containers
    /// themselves stay installed.
    pub fn unregister_hook(&mut self, hook: Uuid) -> Option<(Hook, Vec<ContainerId>)> {
        self.hooks.remove(&hook).map(|e| (e.hook, e.attached))
    }

    /// Registered hook UUIDs.
    pub fn hook_ids(&self) -> Vec<Uuid> {
        self.hooks.keys().copied().collect()
    }

    /// Containers attached to a hook, in attachment order.
    pub fn attached(&self, hook: Uuid) -> Vec<ContainerId> {
        self.hooks
            .get(&hook)
            .map(|h| h.attached.clone())
            .unwrap_or_default()
    }

    /// Installs an application image: parse → grant contract → verify
    /// with the granted helper set (paper §7 pre-flight checks happen
    /// exactly once, here).
    ///
    /// # Errors
    ///
    /// [`EngineError::Parse`] / [`EngineError::Verify`].
    pub fn install(
        &mut self,
        name: &str,
        tenant: TenantId,
        image_bytes: &[u8],
        request: ContractRequest,
    ) -> Result<ContainerId, EngineError> {
        self.install_with_id(self.next_id, name, tenant, image_bytes, request)
    }

    /// Installs an application image under a caller-chosen container id
    /// — the entry point for a multi-engine host that assigns globally
    /// unique ids across shards. An existing container under `id` is
    /// replaced: the replacement starts **detached** (the old
    /// program's hook attachments are dropped, so attaching the new
    /// program re-runs every per-hook contract check), while the id's
    /// local store persists until [`HostingEngine::remove`].
    ///
    /// # Errors
    ///
    /// As [`HostingEngine::install`].
    pub fn install_with_id(
        &mut self,
        id: ContainerId,
        name: &str,
        tenant: TenantId,
        image_bytes: &[u8],
        request: ContractRequest,
    ) -> Result<ContainerId, EngineError> {
        // The engine-wide offer is the standard helper set; per-hook
        // offers further restrict at attach time.
        let offer = ContractOffer {
            helpers: crate::helpers_impl::standard_helper_ids(),
            max_extra_stack: 1024,
        };
        let contract = Contract::grant(&request, &offer);
        if !contract.satisfies(&request) {
            let missing: Vec<u32> = request
                .helpers
                .difference(&contract.helpers)
                .copied()
                .collect();
            return Err(EngineError::ContractUnsatisfied { missing });
        }
        let image = FcProgram::from_bytes(image_bytes)?;
        let program = verify(&image.text, &contract.helpers)?;
        // Lower once for the fast path and re-check every call site
        // against the granted set, so a bad helper binding fails the
        // install, not the first event.
        let mut decoded = DecodedProgram::lower(&program);
        decoded.precheck_helpers(&contract.helpers)?;
        self.next_id = self.next_id.max(id) + 1;
        let meter = HelperMeter::new();
        let helpers = build_registry(&self.env, &meter, id, tenant, &contract.helpers);
        // Resolve call sites to registry slots: hot helper calls skip
        // the id hash lookup from the first event on.
        decoded.bind_helpers(&helpers);
        // Lower the bound decoded stream once more into handler-chain
        // form for the threaded tier (slot bindings carry over).
        let threaded = ThreadedProgram::lower(&decoded);
        let arena = ExecArena::new(STACK_SIZE + contract.extra_stack, &image);
        // A replaced container must not inherit the old program's
        // attachments — they were granted against the *old* helper
        // contract by `attach`'s per-hook verification.
        if self.containers.contains_key(&id) {
            for entry in self.hooks.values_mut() {
                entry.attached.retain(|c| *c != id);
            }
        }
        self.containers.insert(
            id,
            ContainerSlot {
                id,
                tenant,
                name: name.to_owned(),
                image,
                program,
                decoded,
                threaded,
                helpers,
                meter,
                arena,
                contract,
                config: self.exec_config,
                metrics: ContainerMetrics::default(),
            },
        );
        Ok(id)
    }

    /// The deploy-swap primitive behind live SUIT updates: installs a
    /// fresh program under `id`, attaches it to `attach` (when given)
    /// and retires `replace` — detached from the hook and removed —
    /// as one indivisible engine mutation. Callers that serialize
    /// engine access (a shard worker's control lane, or the
    /// single-threaded reference in the differential suite) therefore
    /// guarantee that every hook fire sees either the predecessor or
    /// the replacement, never both and never neither.
    ///
    /// # Errors
    ///
    /// As [`HostingEngine::install_with_id`], plus
    /// [`EngineError::UnknownHook`] / [`EngineError::Verify`] from the
    /// attach — the install is rolled back then and `replace` keeps
    /// running untouched (deploys are atomic, as in the SUIT flow of
    /// [`crate::deploy::UpdateService`]).
    #[allow(clippy::too_many_arguments)] // mirrors the install signature + swap operands
    pub fn deploy_swap(
        &mut self,
        id: ContainerId,
        name: &str,
        tenant: TenantId,
        image_bytes: &[u8],
        request: ContractRequest,
        attach: Option<Uuid>,
        replace: Option<ContainerId>,
    ) -> Result<ContainerId, EngineError> {
        self.install_with_id(id, name, tenant, image_bytes, request)?;
        if let Some(hook) = attach {
            if let Err(e) = self.attach(id, hook) {
                self.remove(id);
                return Err(e);
            }
            if let Some(old) = replace {
                let _ = self.detach(old, hook);
                self.remove(old);
            }
        }
        Ok(id)
    }

    /// Attaches an installed container to a hook, re-verifying the
    /// program against the hook's (possibly narrower) helper offer.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownHook`] / [`EngineError::UnknownContainer`] /
    /// [`EngineError::Verify`] when the hook offers fewer helpers than
    /// the application calls.
    pub fn attach(&mut self, container: ContainerId, hook: Uuid) -> Result<(), EngineError> {
        let slot = self
            .containers
            .get(&container)
            .ok_or(EngineError::UnknownContainer(container))?;
        let entry = self
            .hooks
            .get_mut(&hook)
            .ok_or(EngineError::UnknownHook(hook))?;
        let effective: std::collections::HashSet<u32> = slot
            .contract
            .helpers
            .intersection(&entry.offer.helpers)
            .copied()
            .collect();
        verify(&slot.image.text, &effective)?;
        if !entry.attached.contains(&container) {
            entry.attached.push(container);
        }
        Ok(())
    }

    /// Detaches a container from a hook.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownHook`] / [`EngineError::NotAttached`].
    pub fn detach(&mut self, container: ContainerId, hook: Uuid) -> Result<(), EngineError> {
        let entry = self
            .hooks
            .get_mut(&hook)
            .ok_or(EngineError::UnknownHook(hook))?;
        let before = entry.attached.len();
        entry.attached.retain(|c| *c != container);
        if entry.attached.len() == before {
            return Err(EngineError::NotAttached);
        }
        Ok(())
    }

    /// Removes a container entirely, detaching it everywhere and
    /// dropping its local store.
    pub fn remove(&mut self, container: ContainerId) -> bool {
        for entry in self.hooks.values_mut() {
            entry.attached.retain(|c| *c != container);
        }
        self.env.stores().remove_container(container);
        self.containers.remove(&container).is_some()
    }

    /// Detaches a container everywhere and hands its slot out for
    /// migration to a sibling engine shard ([`HostingEngine::adopt`]).
    /// Unlike [`HostingEngine::remove`], the container's local store
    /// survives — the slot keeps its identity.
    pub fn eject(&mut self, container: ContainerId) -> Option<ContainerSlot> {
        for entry in self.hooks.values_mut() {
            entry.attached.retain(|c| *c != container);
        }
        self.containers.remove(&container)
    }

    /// Adopts a slot ejected from a sibling engine shard. The slot's
    /// helper registry was built against the environment it was
    /// installed over, so both engines must share one [`HostEnv`]
    /// (see [`HostingEngine::with_env`]); the adopting engine only
    /// guarantees id uniqueness among *its own* slots.
    pub fn adopt(&mut self, slot: ContainerSlot) -> ContainerId {
        let id = slot.id;
        self.next_id = self.next_id.max(id) + 1;
        self.containers.insert(id, slot);
        id
    }

    /// Looks up a container slot.
    pub fn container(&self, id: ContainerId) -> Option<&ContainerSlot> {
        self.containers.get(&id)
    }

    /// Number of installed containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Executes one container directly with the given event context and
    /// host-granted regions.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownContainer`]; VM faults are reported inside
    /// the [`ExecutionReport`], not as an `Err` — a faulting container
    /// never takes the host down.
    pub fn execute(
        &mut self,
        id: ContainerId,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<ExecutionReport, EngineError> {
        let slot = self
            .containers
            .get_mut(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        // Re-establish the pristine skeleton (zeroed stack, fresh
        // `.data`), then append this event's regions from the pool.
        slot.arena.reset(&slot.image);
        let ctx_region = if ctx.is_empty() {
            None
        } else {
            let buf = slot.arena.event_buf(ctx);
            Some(slot.arena.mem.add_ctx(buf, Perm::RW))
        };
        let mut extra_ids = Vec::with_capacity(extra.len());
        for r in extra {
            let perm = if r.writable { Perm::RW } else { Perm::RO };
            let buf = slot.arena.event_buf(&r.data);
            extra_ids.push(slot.arena.mem.add_host_region(&r.name, buf, perm));
        }
        let mem = &mut slot.arena.mem;

        slot.meter.reset();
        let ctx_addr = if ctx.is_empty() { 0 } else { CTX_VADDR };
        let helpers = &mut slot.helpers;
        let outcome = match self.flavor {
            EngineFlavor::CertFc => {
                CertInterpreter::new(&slot.program, slot.config).run(mem, helpers, ctx_addr)
            }
            EngineFlavor::Rbpf => {
                Interpreter::new(&slot.program, slot.config).run(mem, helpers, ctx_addr)
            }
            EngineFlavor::FemtoContainer => match self.tier {
                ExecTier::Reference => {
                    Interpreter::new(&slot.program, slot.config).run(mem, helpers, ctx_addr)
                }
                ExecTier::Fast => {
                    FastInterpreter::new(&slot.decoded, slot.config).run(mem, helpers, ctx_addr)
                }
                ExecTier::Threaded => ThreadedInterpreter::new(&slot.threaded, slot.config)
                    .run(mem, helpers, ctx_addr),
            },
        };

        let model = cycle_model(self.platform, self.flavor);
        let (result, counts) = match outcome {
            Ok(exec) => (Ok(exec.return_value), exec.counts),
            Err(e) => (Err(e), OpCounts::default()),
        };
        let vm_cycles = model.execution_cycles(&counts);
        let helper_cycles = slot.meter.get();
        let ctx_back = ctx_region
            .map(|r| mem.region_bytes(r).to_vec())
            .unwrap_or_default();
        let regions_back = extra
            .iter()
            .zip(extra_ids)
            .map(|(r, rid)| (r.name.clone(), mem.region_bytes(rid).to_vec()))
            .collect();

        let report = ExecutionReport {
            container: id,
            result,
            counts,
            vm_cycles,
            helper_cycles,
            ctx_back,
            regions_back,
        };
        slot.metrics.executions += 1;
        if report.result.is_err() {
            slot.metrics.faults += 1;
        }
        slot.metrics.total_cycles += report.total_cycles();
        Ok(report)
    }

    /// Fires a hook: runs every attached container over the context and
    /// combines results under the hook's policy.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownHook`]. Individual container faults are
    /// contained in the per-execution reports.
    ///
    /// # Examples
    ///
    /// ```
    /// use fc_core::contract::{ContractOffer, ContractRequest};
    /// use fc_core::engine::HostingEngine;
    /// use fc_core::helpers_impl::standard_helper_ids;
    /// use fc_core::hooks::{Hook, HookKind, HookPolicy};
    /// use fc_rbpf::program::ProgramBuilder;
    /// use fc_rtos::platform::{Engine, Platform};
    ///
    /// let mut engine = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
    /// let hook = Hook::new("tick", HookKind::Timer, HookPolicy::Sum);
    /// let hook_id = hook.id;
    /// engine.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
    /// let image = ProgramBuilder::new().asm("mov r0, 21\nexit").unwrap().build();
    /// let a = engine.install("a", 1, &image.to_bytes(), ContractRequest::default()).unwrap();
    /// let b = engine.install("b", 2, &image.to_bytes(), ContractRequest::default()).unwrap();
    /// engine.attach(a, hook_id).unwrap();
    /// engine.attach(b, hook_id).unwrap();
    /// let report = engine.fire_hook(hook_id, &[], &[]).unwrap();
    /// assert_eq!(report.combined, Some(42));
    /// ```
    pub fn fire_hook(
        &mut self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<HookReport, EngineError> {
        let mut reports = self.fire_hook_batch(hook, &[(ctx, extra)])?;
        Ok(reports.pop().expect("one event in, one report out"))
    }

    /// Fires a hook over a whole batch of events with one hook lookup,
    /// one attached-list clone and one cycle-model fetch — the
    /// amortised entry point for embedders driving an engine directly.
    /// (The concurrent `fc-host` runtime amortises at its queue layer
    /// instead and deliberately drains **per event** — a batch of one
    /// through this method — to keep panic isolation, reply streaming
    /// and fault accounting at single-event granularity.) Per-event
    /// reports are **identical** to calling
    /// [`HostingEngine::fire_hook`] once per event, because that *is*
    /// a batch of one.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownHook`]. Individual container faults are
    /// contained in the per-execution reports.
    pub fn fire_hook_batch(
        &mut self,
        hook: Uuid,
        events: &[(&[u8], &[HostRegion])],
    ) -> Result<Vec<HookReport>, EngineError> {
        let (attached, policy) = {
            let entry = self
                .hooks
                .get_mut(&hook)
                .ok_or(EngineError::UnknownHook(hook))?;
            entry.fires += events.len() as u64;
            (entry.attached.clone(), entry.hook.policy)
        };
        let empty_hook_cycles = self.platform.empty_hook_cycles();
        let mut reports = Vec::with_capacity(events.len());
        for (ctx, extra) in events {
            let mut executions = Vec::with_capacity(attached.len());
            let mut cycles = empty_hook_cycles;
            for &id in &attached {
                let report = self.execute(id, ctx, extra)?;
                cycles += report.total_cycles();
                executions.push(report);
            }
            let results: Vec<u64> = executions
                .iter()
                .filter_map(|e| e.result.as_ref().ok().copied())
                .collect();
            let combined = policy.combine(&results);
            reports.push(HookReport {
                executions,
                combined,
                cycles,
            });
        }
        Ok(reports)
    }

    /// Times a hook fire: the Table 4 measurement pair (empty hook
    /// cycles, hook-with-application cycles).
    pub fn hook_overhead_cycles(&self) -> u64 {
        self.platform.empty_hook_cycles()
    }

    /// Total RAM attributable to container instances plus the stores
    /// (the paper's §10.3 multi-instance accounting).
    pub fn ram_bytes(&self) -> usize {
        self.containers
            .values()
            .map(ContainerSlot::ram_bytes)
            .sum::<usize>()
            + self.env.stores().ram_bytes()
    }

    /// Console lines captured from `bpf_printf`.
    pub fn console(&self) -> Vec<String> {
        self.env.console_lines()
    }
}

impl std::fmt::Debug for HostingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostingEngine")
            .field("platform", &self.platform)
            .field("flavor", &self.flavor)
            .field("containers", &self.containers.len())
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers_impl::standard_helper_ids;
    use crate::hooks::{Hook, HookKind, HookPolicy};
    use fc_rbpf::helpers::ids;
    use fc_rbpf::program::ProgramBuilder;

    fn engine() -> HostingEngine {
        HostingEngine::new(Platform::CortexM4, EngineFlavor::FemtoContainer)
    }

    fn image(src: &str) -> Vec<u8> {
        ProgramBuilder::new()
            .helpers(
                crate::helpers_impl::helper_name_table()
                    .iter()
                    .map(|(n, i)| (n.as_str(), *i)),
            )
            .asm(src)
            .unwrap()
            .build()
            .to_bytes()
    }

    #[test]
    fn install_and_execute() {
        let mut e = engine();
        let id = e
            .install(
                "t",
                1,
                &image("mov r0, 7\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let r = e.execute(id, &[], &[]).unwrap();
        assert_eq!(r.result, Ok(7));
        assert!(r.vm_cycles > 0);
        assert_eq!(e.container(id).unwrap().metrics.executions, 1);
    }

    #[test]
    fn install_rejects_bad_image_and_bad_program() {
        let mut e = engine();
        assert!(matches!(
            e.install("x", 1, b"garbage", ContractRequest::default()),
            Err(EngineError::Parse(_))
        ));
        // Valid image framing but invalid program (falls off the end).
        let img = image("mov r0, 7\nexit");
        let prog = FcProgram::from_bytes(&img).unwrap();
        let bad = FcProgram {
            text: prog.text[..8].to_vec(),
            ..prog
        };
        assert!(matches!(
            e.install("x", 1, &bad.to_bytes(), ContractRequest::default()),
            Err(EngineError::Verify(_))
        ));
    }

    #[test]
    fn helper_calls_require_contract() {
        let mut e = engine();
        // Program calls store_global but requests no helpers: pre-flight
        // rejects it.
        let img = image("mov r1, 1\nmov r2, 2\ncall bpf_store_global\nmov r0, 0\nexit");
        assert!(matches!(
            e.install("x", 1, &img, ContractRequest::default()),
            Err(EngineError::Verify(VerifierError::HelperNotAllowed { .. }))
        ));
        // With the helper requested, it installs and runs.
        let id = e
            .install(
                "x",
                1,
                &img,
                ContractRequest::helpers([ids::BPF_STORE_GLOBAL]),
            )
            .unwrap();
        let r = e.execute(id, &[], &[]).unwrap();
        assert_eq!(r.result, Ok(0));
        assert_eq!(
            e.env().stores().fetch(id, 1, fc_kvstore::Scope::Global, 1),
            2
        );
    }

    #[test]
    fn faulting_container_is_contained() {
        let mut e = engine();
        let id = e
            .install(
                "oob",
                1,
                &image("ldxdw r0, [r10+64]\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let r = e.execute(id, &[], &[]).unwrap();
        assert!(matches!(r.result, Err(VmError::InvalidMemoryAccess { .. })));
        assert_eq!(e.container(id).unwrap().metrics.faults, 1);
        // Engine still fully operational.
        let id2 = e
            .install(
                "ok",
                1,
                &image("mov r0, 1\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        assert_eq!(e.execute(id2, &[], &[]).unwrap().result, Ok(1));
    }

    #[test]
    fn hook_attach_fire_detach() {
        let mut e = engine();
        e.register_hook(
            Hook::new("custom", HookKind::Custom, HookPolicy::Sum),
            ContractOffer::helpers(standard_helper_ids()),
        );
        let hook = crate::hooks::Hook::new("custom", HookKind::Custom, HookPolicy::Sum).id;
        let a = e
            .install(
                "a",
                1,
                &image("mov r0, 10\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let b = e
            .install(
                "b",
                2,
                &image("mov r0, 32\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        e.attach(a, hook).unwrap();
        e.attach(b, hook).unwrap();
        let report = e.fire_hook(hook, &[], &[]).unwrap();
        assert_eq!(report.combined, Some(42));
        assert_eq!(report.executions.len(), 2);
        assert!(report.cycles > e.hook_overhead_cycles());
        e.detach(a, hook).unwrap();
        assert_eq!(e.fire_hook(hook, &[], &[]).unwrap().combined, Some(32));
        assert!(matches!(e.detach(a, hook), Err(EngineError::NotAttached)));
    }

    #[test]
    fn empty_hook_returns_default_flow() {
        let mut e = engine();
        e.register_hook(
            Hook::new("empty", HookKind::Custom, HookPolicy::First),
            ContractOffer::default(),
        );
        let hook = Hook::new("empty", HookKind::Custom, HookPolicy::First).id;
        let report = e.fire_hook(hook, &[], &[]).unwrap();
        assert_eq!(report.combined, None);
        assert_eq!(report.cycles, e.platform().empty_hook_cycles());
    }

    #[test]
    fn hook_offer_narrower_than_install_rejects_attach() {
        let mut e = engine();
        e.register_hook(
            Hook::new("narrow", HookKind::Custom, HookPolicy::First),
            ContractOffer::helpers([]), // offers nothing
        );
        let hook = Hook::new("narrow", HookKind::Custom, HookPolicy::First).id;
        let img = image("mov r1, 1\nmov r2, 2\ncall bpf_store_global\nmov r0, 0\nexit");
        let id = e
            .install(
                "x",
                1,
                &img,
                ContractRequest::helpers([ids::BPF_STORE_GLOBAL]),
            )
            .unwrap();
        assert!(matches!(e.attach(id, hook), Err(EngineError::Verify(_))));
    }

    #[test]
    fn ctx_passed_and_returned() {
        let mut e = engine();
        let src = "\
ldxdw r2, [r1]
add r2, 1
stxdw [r1], r2
mov r0, r2
exit";
        let id = e
            .install("inc", 1, &image(src), ContractRequest::default())
            .unwrap();
        let ctx = 41u64.to_le_bytes().to_vec();
        let r = e.execute(id, &ctx, &[]).unwrap();
        assert_eq!(r.result, Ok(42));
        assert_eq!(r.ctx_back, 42u64.to_le_bytes().to_vec());
    }

    #[test]
    fn read_only_region_cannot_be_modified() {
        let mut e = engine();
        // Tries to write the first host region.
        let src = "\
lddw r1, 0x60000000
stb [r1], 1
mov r0, 0
exit";
        let id = e
            .install("fw", 1, &image(src), ContractRequest::default())
            .unwrap();
        let r = e
            .execute(id, &[], &[HostRegion::read_only("pkt", vec![0; 16])])
            .unwrap();
        assert!(matches!(
            r.result,
            Err(VmError::InvalidMemoryAccess { write: true, .. })
        ));
        // Read-only inspection works.
        let src_read = "\
lddw r1, 0x60000000
ldxb r0, [r1]
exit";
        let id2 = e
            .install("fw2", 1, &image(src_read), ContractRequest::default())
            .unwrap();
        let r2 = e
            .execute(id2, &[], &[HostRegion::read_only("pkt", vec![9; 16])])
            .unwrap();
        assert_eq!(r2.result, Ok(9));
    }

    #[test]
    fn local_stores_are_per_container_and_dropped_on_remove() {
        let mut e = engine();
        let src = "\
mov r1, 5
mov r2, 77
call bpf_store_local
mov r1, 5
mov r2, r10
add r2, -8
call bpf_fetch_local
ldxw r0, [r10-8]
exit";
        let req = ContractRequest::helpers([ids::BPF_STORE_LOCAL, ids::BPF_FETCH_LOCAL]);
        let a = e.install("a", 1, &image(src), req.clone()).unwrap();
        let r = e.execute(a, &[], &[]).unwrap();
        assert_eq!(r.result, Ok(77));
        assert!(e.env().stores().local_snapshot(a).is_some());
        assert!(e.remove(a));
        assert!(e.env().stores().local_snapshot(a).is_none());
        assert!(matches!(
            e.execute(a, &[], &[]),
            Err(EngineError::UnknownContainer(_))
        ));
    }

    #[test]
    fn ram_accounting_matches_paper_per_instance() {
        let mut e = engine();
        let id = e
            .install(
                "t",
                1,
                &image("mov r0, 0\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let per_instance = e.container(id).unwrap().ram_bytes();
        assert_eq!(per_instance, 624, "paper §10.3: 624 B per instance");
    }

    #[test]
    fn certfc_flavor_executes_identically() {
        let mut fc = engine();
        let mut cert = HostingEngine::new(Platform::CortexM4, EngineFlavor::CertFc);
        let img = image("mov r0, 9\nmul r0, r0\nexit");
        let a = fc
            .install("x", 1, &img, ContractRequest::default())
            .unwrap();
        let b = cert
            .install("x", 1, &img, ContractRequest::default())
            .unwrap();
        let ra = fc.execute(a, &[], &[]).unwrap();
        let rb = cert.execute(b, &[], &[]).unwrap();
        assert_eq!(ra.result, rb.result);
        assert!(rb.vm_cycles > ra.vm_cycles, "CertFC is slower");
    }

    #[test]
    fn arena_reuse_preserves_isolation_between_events() {
        let mut e = engine();
        // Writes a sentinel to the stack, then returns what it found
        // there *before* writing: a second event must read 0, not the
        // previous event's sentinel.
        let src = "\
ldxdw r0, [r10-8]
mov r1, 0x5a5a
stxdw [r10-8], r1
exit";
        let id = e
            .install("probe", 1, &image(src), ContractRequest::default())
            .unwrap();
        for _ in 0..3 {
            let r = e.execute(id, &[], &[]).unwrap();
            assert_eq!(r.result, Ok(0), "stack leaked across events");
        }
    }

    #[test]
    fn arena_reuse_rebuilds_data_section() {
        let mut e = engine();
        // Increments the first word of .data and returns it: with .data
        // rebuilt per event, every run sees the initial image value.
        let src = "\
lddwd r1, 0
ldxw r2, [r1]
add32 r2, 1
stxw [r1], r2
mov r0, r2
exit";
        let mut builder = ProgramBuilder::new();
        builder.add_data(&7u32.to_le_bytes());
        let img = builder.asm(src).unwrap().build().to_bytes();
        let id = e
            .install("ctr", 1, &img, ContractRequest::default())
            .unwrap();
        for _ in 0..3 {
            assert_eq!(e.execute(id, &[], &[]).unwrap().result, Ok(8));
        }
    }

    #[test]
    fn arena_reuse_keeps_host_region_bases_stable() {
        let mut e = engine();
        // Reads the first host-granted region at its well-known base.
        let src = "\
lddw r1, 0x60000000
ldxb r0, [r1]
exit";
        let id = e
            .install("rd", 1, &image(src), ContractRequest::default())
            .unwrap();
        for v in [3u8, 9, 27] {
            let r = e
                .execute(id, &[], &[HostRegion::read_only("pkt", vec![v; 8])])
                .unwrap();
            assert_eq!(r.result, Ok(v as u64));
        }
        // And the context region does not persist into a later event
        // that grants none.
        let src_ctx = "ldxdw r0, [r1]\nexit";
        let id2 = e
            .install("c", 1, &image(src_ctx), ContractRequest::default())
            .unwrap();
        let ok = e.execute(id2, &5u64.to_le_bytes(), &[]).unwrap();
        assert_eq!(ok.result, Ok(5));
        let bad = e.execute(id2, &[], &[]).unwrap();
        assert!(
            bad.result.is_err(),
            "stale ctx region reachable: {:?}",
            bad.result
        );
    }

    #[test]
    fn all_flavors_agree_on_results() {
        let src = "\
mov r0, 0
mov r1, 25
loop: add r0, r1
sub r1, 1
jne r1, 0, loop
stxdw [r10-16], r0
ldxdw r0, [r10-16]
exit";
        let mut results = Vec::new();
        for flavor in [
            EngineFlavor::FemtoContainer,
            EngineFlavor::Rbpf,
            EngineFlavor::CertFc,
        ] {
            let mut e = HostingEngine::new(Platform::CortexM4, flavor);
            let id = e
                .install("x", 1, &image(src), ContractRequest::default())
                .unwrap();
            let r = e.execute(id, &[], &[]).unwrap();
            results.push((r.result, r.counts));
        }
        assert_eq!(results[0], results[1], "fast vs vanilla");
        assert_eq!(results[1], results[2], "vanilla vs certfc");
        assert_eq!(results[0].0, Ok(325));
    }

    #[test]
    fn replacement_install_drops_stale_attachments() {
        let mut e = engine();
        e.register_hook(
            Hook::new("narrow", HookKind::Custom, HookPolicy::First),
            ContractOffer::helpers([]), // offers no helpers
        );
        let hook = Hook::new("narrow", HookKind::Custom, HookPolicy::First).id;
        let plain = image("mov r0, 1\nexit");
        let id = e
            .install("v1", 1, &plain, ContractRequest::default())
            .unwrap();
        e.attach(id, hook).unwrap();
        // Replace the attached container with a helper-calling program:
        // the stale attachment must NOT survive, because this hook's
        // offer would have rejected it at attach time.
        let helperful = image("mov r1, 1\nmov r2, 2\ncall bpf_store_global\nmov r0, 0\nexit");
        e.install_with_id(
            id,
            "v2",
            1,
            &helperful,
            ContractRequest::helpers([ids::BPF_STORE_GLOBAL]),
        )
        .unwrap();
        assert!(e.attached(hook).is_empty(), "replacement starts detached");
        let report = e.fire_hook(hook, &[], &[]).unwrap();
        assert_eq!(report.combined, None);
        // And re-attaching re-runs the per-hook contract check.
        assert!(matches!(e.attach(id, hook), Err(EngineError::Verify(_))));
    }

    #[test]
    fn sibling_shards_share_env_and_slots_migrate() {
        let mut a = engine();
        let mut b = HostingEngine::with_env(a.platform(), a.flavor(), a.env_handle());
        let img = image("mov r1, 1\nmov r2, 2\ncall bpf_store_global\nmov r0, 0\nexit");
        let id = a
            .install(
                "x",
                1,
                &img,
                ContractRequest::helpers([ids::BPF_STORE_GLOBAL]),
            )
            .unwrap();
        // Eject from shard A, adopt on shard B: same id, same contract,
        // same (shared) stores.
        let slot = a.eject(id).unwrap();
        assert!(matches!(
            a.execute(id, &[], &[]),
            Err(EngineError::UnknownContainer(_))
        ));
        assert_eq!(b.adopt(slot), id);
        let r = b.execute(id, &[], &[]).unwrap();
        assert_eq!(r.result, Ok(0));
        assert!(r.helper_cycles > 0, "meter travels with the slot");
        // The global-store write is visible through shard A's env view.
        assert_eq!(
            a.env().stores().fetch(id, 1, fc_kvstore::Scope::Global, 1),
            2
        );
        // And a whole engine (with installed slots) can cross threads.
        let b = std::thread::spawn(move || {
            let mut b = b;
            b.execute(id, &[], &[]).unwrap().result
        })
        .join()
        .unwrap();
        assert_eq!(b, Ok(0));
    }

    #[test]
    fn fire_hook_batch_reports_identical_to_single_fires() {
        // Two engines driven over the same five events: one per-event,
        // one batched. The reports must match bit for bit — including
        // the faulting container's.
        let mk = || {
            let mut e = engine();
            e.register_hook(
                Hook::new("b", HookKind::Custom, HookPolicy::Sum),
                ContractOffer::helpers(standard_helper_ids()),
            );
            let hook = Hook::new("b", HookKind::Custom, HookPolicy::Sum).id;
            let ok = e
                .install(
                    "ok",
                    1,
                    &image("ldxdw r0, [r1]\nadd r0, 1\nexit"),
                    ContractRequest::default(),
                )
                .unwrap();
            let bad = e
                .install(
                    "bad",
                    2,
                    &image("ldxdw r0, [r10+4096]\nexit"),
                    ContractRequest::default(),
                )
                .unwrap();
            e.attach(ok, hook).unwrap();
            e.attach(bad, hook).unwrap();
            (e, hook)
        };
        let ctxs: Vec<Vec<u8>> = (0..5u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let (mut single, hook) = mk();
        let singles: Vec<HookReport> = ctxs
            .iter()
            .map(|c| single.fire_hook(hook, c, &[]).unwrap())
            .collect();
        let (mut batched, hook) = mk();
        let events: Vec<(&[u8], &[HostRegion])> =
            ctxs.iter().map(|c| (c.as_slice(), &[][..])).collect();
        let batch = batched.fire_hook_batch(hook, &events).unwrap();
        assert_eq!(singles, batch);
        assert!(batch[0].executions[1].result.is_err(), "fault exercised");
    }

    #[test]
    fn unregister_hook_returns_attachment_order_and_stops_fires() {
        let mut e = engine();
        e.register_hook(
            Hook::new("u", HookKind::Custom, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
        let hook = Hook::new("u", HookKind::Custom, HookPolicy::First).id;
        let a = e
            .install(
                "a",
                1,
                &image("mov r0, 1\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let b = e
            .install(
                "b",
                1,
                &image("mov r0, 2\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        e.attach(b, hook).unwrap();
        e.attach(a, hook).unwrap();
        let (desc, attached) = e.unregister_hook(hook).unwrap();
        assert_eq!(desc.id, hook);
        assert_eq!(attached, vec![b, a], "attachment order preserved");
        assert!(matches!(
            e.fire_hook(hook, &[], &[]),
            Err(EngineError::UnknownHook(_))
        ));
        assert!(e.unregister_hook(hook).is_none());
        // Containers survive unregistration.
        assert_eq!(e.execute(a, &[], &[]).unwrap().result, Ok(1));
    }

    #[test]
    fn infinite_loop_contained_by_budget() {
        let mut e = engine();
        e.set_exec_config(ExecConfig::new(1000, 100));
        let id = e
            .install(
                "spin",
                1,
                &image("spin: ja spin\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let r = e.execute(id, &[], &[]).unwrap();
        assert!(matches!(
            r.result,
            Err(VmError::BranchBudgetExceeded { .. } | VmError::InstructionBudgetExceeded { .. })
        ));
    }

    #[test]
    fn exec_config_change_applies_to_installed_containers() {
        let mut e = engine();
        // Installed under the default (generous) budgets…
        let id = e
            .install(
                "spin",
                1,
                &image("spin: ja spin\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        // …then the budget is tightened: the running container must be
        // contained by the *new* budget, not the one at install time.
        e.set_exec_config(ExecConfig::new(1000, 100));
        let r = e.execute(id, &[], &[]).unwrap();
        assert!(matches!(
            r.result,
            Err(VmError::BranchBudgetExceeded { .. } | VmError::InstructionBudgetExceeded { .. })
        ));
    }
}
