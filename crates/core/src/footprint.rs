//! Flash and RAM footprint models for the engine and OS images
//! (paper Tables 1 & 3, Figures 2 & 7).
//!
//! Flash follows the structural model of DESIGN.md §3: each component's
//! Cortex-M4 (Thumb-2) size is a calibrated constant derived from the
//! paper's own measurements, and other ISAs scale through
//! [`Platform::code_density_factor`]. RAM numbers come from the real
//! per-instance structures (see [`crate::engine::ContainerSlot::ram_bytes`]).

use fc_rtos::platform::{Engine, Platform};

/// Flash/RAM requirement pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Flash bytes.
    pub rom_bytes: usize,
    /// RAM bytes.
    pub ram_bytes: usize,
}

/// Engine footprint on a platform (paper Table 3 on Cortex-M4 and
/// Figure 7 across platforms).
///
/// Thumb-2 baselines: Femto-Containers 2 992 B, rBPF 3 032 B, CertFC
/// 1 378 B (the ∂x-extracted interpreter is structurally simpler — a
/// 55 % flash reduction, §10.1). RAM: 624 B per instance for FC
/// (512 B stack + 88 B registers + housekeeping), 620 B for rBPF (lighter
/// slot struct), 672 B for CertFC (~50 B of VM state kept in the context
/// struct instead of the thread stack).
pub fn engine_footprint(engine: Engine, platform: Platform) -> Footprint {
    let (rom_thumb2, ram) = match engine {
        Engine::FemtoContainer => (2992, 624),
        Engine::Rbpf => (3032, 620),
        Engine::CertFc => (1378, 672),
    };
    Footprint {
        rom_bytes: (rom_thumb2 as f64 * platform.code_density_factor()).round() as usize,
        ram_bytes: ram,
    }
}

/// One component of the OS firmware image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsComponent {
    /// Component name as in the paper's Figure 2.
    pub name: &'static str,
    /// Flash bytes on Cortex-M4.
    pub rom_bytes: usize,
}

/// The base RIOT image configured as in the paper's Appendix A
/// (6LoWPAN, CoAP, SUIT-compliant OTA — "totalling 53 kBytes in Flash").
/// The component split matches Figure 2's rBPF pie once the runtime is
/// added.
pub fn os_components() -> [OsComponent; 4] {
    [
        OsComponent {
            name: "Crypto",
            rom_bytes: 7_400,
        },
        OsComponent {
            name: "Network stack",
            rom_bytes: 20_050,
        },
        OsComponent {
            name: "Kernel",
            rom_bytes: 17_100,
        },
        OsComponent {
            name: "OTA module",
            rom_bytes: 8_200,
        },
    ]
}

/// Total flash of the base OS (Table 1's "Host OS (without VM)" row:
/// 52.5 KiB).
pub fn os_rom_bytes() -> usize {
    os_components().iter().map(|c| c.rom_bytes).sum()
}

/// Base OS RAM (Table 1: 16.3 KiB — thread stacks, network buffers,
/// kernel state).
pub fn os_ram_bytes() -> usize {
    16_690
}

/// A full firmware image: the OS plus a hosted-function runtime, for
/// Figure 2's flash-distribution comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Runtime name shown in the figure.
    pub runtime_name: String,
    /// (component, flash bytes) rows including the runtime.
    pub components: Vec<(String, usize)>,
}

impl FirmwareImage {
    /// Composes the base OS with a runtime of the given flash size.
    pub fn with_runtime(runtime_name: &str, runtime_rom: usize) -> Self {
        let mut components: Vec<(String, usize)> = os_components()
            .iter()
            .map(|c| (c.name.to_owned(), c.rom_bytes))
            .collect();
        components.push((format!("{runtime_name} runtime"), runtime_rom));
        FirmwareImage {
            runtime_name: runtime_name.to_owned(),
            components,
        }
    }

    /// Total flash of the image.
    pub fn total_rom(&self) -> usize {
        self.components.iter().map(|(_, b)| *b).sum()
    }

    /// Percentage share per component (Figure 2's pie slices).
    pub fn percentages(&self) -> Vec<(String, f64)> {
        let total = self.total_rom() as f64;
        self.components
            .iter()
            .map(|(n, b)| (n.clone(), *b as f64 * 100.0 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_rtos::platform::{ALL_ENGINES, ALL_PLATFORMS};

    #[test]
    fn table3_values_on_cortex_m4() {
        let fc = engine_footprint(Engine::FemtoContainer, Platform::CortexM4);
        let rbpf = engine_footprint(Engine::Rbpf, Platform::CortexM4);
        let cert = engine_footprint(Engine::CertFc, Platform::CortexM4);
        assert_eq!((fc.rom_bytes, fc.ram_bytes), (2992, 624));
        assert_eq!((rbpf.rom_bytes, rbpf.ram_bytes), (3032, 620));
        assert_eq!((cert.rom_bytes, cert.ram_bytes), (1378, 672));
    }

    #[test]
    fn certfc_reduces_flash_by_55_percent() {
        let fc = engine_footprint(Engine::FemtoContainer, Platform::CortexM4);
        let cert = engine_footprint(Engine::CertFc, Platform::CortexM4);
        let reduction = 1.0 - cert.rom_bytes as f64 / fc.rom_bytes as f64;
        assert!((0.50..0.60).contains(&reduction), "{reduction}");
    }

    #[test]
    fn figure7_bars_fit_axis() {
        // Figure 7's y-axis tops out at 4 500 B.
        for p in ALL_PLATFORMS {
            for e in ALL_ENGINES {
                let fp = engine_footprint(e, p);
                assert!(fp.rom_bytes <= 4_500, "{e:?}/{p:?}: {}", fp.rom_bytes);
                assert!(fp.rom_bytes >= 1_000);
            }
        }
    }

    #[test]
    fn esp32_images_are_largest() {
        for e in ALL_ENGINES {
            let cm4 = engine_footprint(e, Platform::CortexM4).rom_bytes;
            let esp = engine_footprint(e, Platform::Esp32).rom_bytes;
            let rv = engine_footprint(e, Platform::RiscV).rom_bytes;
            assert!(esp > rv && rv > cm4);
        }
    }

    #[test]
    fn base_os_matches_table1() {
        let rom_kib = os_rom_bytes() as f64 / 1024.0;
        assert!((51.0..54.0).contains(&rom_kib), "{rom_kib} KiB");
        let ram_kib = os_ram_bytes() as f64 / 1024.0;
        assert!((16.0..16.6).contains(&ram_kib), "{ram_kib} KiB");
    }

    #[test]
    fn figure2_rbpf_image_is_57kb_with_8_percent_runtime() {
        let img = FirmwareImage::with_runtime("Femto-Container (rBPF)", 4_506);
        let total_kb = img.total_rom() as f64 / 1000.0;
        assert!((55.0..60.0).contains(&total_kb), "{total_kb} kB");
        let (_, pct) = img.percentages().pop().expect("runtime row");
        assert!((6.0..10.0).contains(&pct), "runtime share {pct}%");
    }

    #[test]
    fn figure2_micropython_image_is_154kb_with_66_percent_runtime() {
        let img = FirmwareImage::with_runtime("MicroPython", 101 * 1024);
        let total_kb = img.total_rom() as f64 / 1000.0;
        assert!((150.0..160.0).contains(&total_kb), "{total_kb} kB");
        let (_, pct) = img.percentages().pop().expect("runtime row");
        assert!((63.0..69.0).contains(&pct), "runtime share {pct}%");
    }

    #[test]
    fn percentages_sum_to_100() {
        let img = FirmwareImage::with_runtime("x", 10_000);
        let sum: f64 = img.percentages().iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
