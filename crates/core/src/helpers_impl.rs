//! The standard system-call bridge between containers and the RTOS
//! (paper §7): key-value stores, time, sensors, CoAP response
//! formatting, string formatting, diagnostics.
//!
//! Each helper also carries a modeled *internal* cycle cost — the native
//! work the OS performs on the container's behalf — accumulated per
//! execution for the platform timing model (these native costs are why
//! the paper's CoAP-formatter example "depends heavily on system calls"
//! yet stays fast, §10.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fc_kvstore::{ContainerId, Scope, ShardedStores, TenantId};
use fc_rbpf::error::VmError;
use fc_rbpf::helpers::{ids, HelperRegistry};
use fc_rbpf::mem::HOST_VADDR_BASE;
use fc_rtos::saul::SaulRegistry;

use crate::contract::HelperSet;

/// Host-side state **shared across every engine shard** of a device (or
/// hosting server): the key-value stores, the sensor registry, the
/// console and the virtual clock. All interior mutability is
/// thread-safe — the stores sit behind a sharded lock
/// ([`ShardedStores`]), the SAUL registry and console behind plain
/// mutexes, the clock and RNG in atomics — so helper closures capturing
/// an `Arc<HostEnv>` are `Send` and containers can execute on worker
/// threads.
///
/// Per-execution state deliberately lives *elsewhere*: each installed
/// container carries its own [`HelperMeter`] (helper-internal cycle
/// accounting) and execution arena, so two shards never contend on
/// anything but genuinely shared stores.
#[derive(Debug)]
pub struct HostEnv {
    /// All key-value stores on the device, behind a sharded lock.
    stores: ShardedStores,
    /// The SAUL device registry.
    saul: Mutex<SaulRegistry>,
    /// Captured `bpf_printf` output.
    console: Mutex<Vec<String>>,
    /// Virtual time in microseconds (advanced by the RTOS glue).
    now_us: AtomicU64,
    /// Xorshift state for `bpf_random`.
    rng_state: AtomicU64,
}

impl Default for HostEnv {
    fn default() -> Self {
        HostEnv::new(fc_kvstore::DEFAULT_CAPACITY)
    }
}

impl HostEnv {
    /// Creates an environment with the given store capacity.
    pub fn new(store_capacity: usize) -> Self {
        HostEnv {
            stores: ShardedStores::new(store_capacity),
            saul: Mutex::new(SaulRegistry::new()),
            console: Mutex::new(Vec::new()),
            now_us: AtomicU64::new(0),
            rng_state: AtomicU64::new(0x2545_f491_4f6c_dd1d),
        }
    }

    /// The device's key-value stores.
    pub fn stores(&self) -> &ShardedStores {
        &self.stores
    }

    /// The SAUL device registry (lock to register or read devices).
    pub fn saul(&self) -> &Mutex<SaulRegistry> {
        &self.saul
    }

    /// Appends a line to the captured console.
    pub fn push_console(&self, line: String) {
        self.console.lock().expect("console lock").push(line);
    }

    /// Snapshot of the captured `bpf_printf` output.
    pub fn console_lines(&self) -> Vec<String> {
        self.console.lock().expect("console lock").clone()
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    /// Advances the virtual clock (driven by the RTOS glue).
    pub fn set_now_us(&self, now_us: u64) {
        self.now_us.store(now_us, Ordering::Relaxed);
    }

    /// Next pseudo-random value (lock-free xorshift over shared state).
    pub fn rng_next(&self) -> u64 {
        fn step(mut s: u64) -> u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
        let prev = self
            .rng_state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(step(s)))
            .expect("fetch_update with Some never fails");
        step(prev)
    }
}

/// Per-container accumulator for helper-internal cycles (the native
/// work the OS performs on the container's behalf). The meter is
/// captured by the container's helper closures at install time and
/// read by the engine after each execution; because a container
/// executes on at most one thread at a time, per-execution readings
/// are exact even on a concurrent host.
#[derive(Debug, Clone, Default)]
pub struct HelperMeter(Arc<AtomicU64>);

impl HelperMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds helper-internal cycles.
    pub fn charge(&self, cycles: u64) {
        self.0.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Zeroes the meter (start of an execution).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Modeled native cost of each helper (Cortex-M4 cycles; other
/// platforms scale through the cycle model's call factor upstream).
pub fn helper_internal_cycles(id: u32) -> u64 {
    match id {
        ids::BPF_PRINTF => 800,
        ids::BPF_PRINT_NUM => 200,
        ids::BPF_MEMCPY => 120,
        ids::BPF_FETCH_LOCAL | ids::BPF_STORE_LOCAL => 150,
        ids::BPF_FETCH_GLOBAL | ids::BPF_STORE_GLOBAL => 150,
        ids::BPF_FETCH_SHARED | ids::BPF_STORE_SHARED => 170,
        ids::BPF_NOW_MS | ids::BPF_ZTIMER_NOW => 60,
        ids::BPF_SAUL_READ => 320,
        ids::BPF_SAUL_FIND_NTH => 90,
        ids::BPF_GCOAP_RESP_INIT => 520,
        ids::BPF_COAP_ADD_FORMAT => 160,
        ids::BPF_COAP_OPT_FINISH => 140,
        ids::BPF_FMT_S16_DFP => 460,
        ids::BPF_FMT_U32_DEC => 380,
        ids::BPF_RANDOM => 80,
        _ => 100,
    }
}

/// All standard helper ids offered by the reference launchpads.
pub fn standard_helper_ids() -> HelperSet {
    [
        ids::BPF_PRINTF,
        ids::BPF_PRINT_NUM,
        ids::BPF_MEMCPY,
        ids::BPF_FETCH_LOCAL,
        ids::BPF_STORE_LOCAL,
        ids::BPF_FETCH_GLOBAL,
        ids::BPF_STORE_GLOBAL,
        ids::BPF_FETCH_SHARED,
        ids::BPF_STORE_SHARED,
        ids::BPF_NOW_MS,
        ids::BPF_ZTIMER_NOW,
        ids::BPF_SAUL_READ,
        ids::BPF_SAUL_FIND_NTH,
        ids::BPF_GCOAP_RESP_INIT,
        ids::BPF_COAP_ADD_FORMAT,
        ids::BPF_COAP_OPT_FINISH,
        ids::BPF_FMT_S16_DFP,
        ids::BPF_FMT_U32_DEC,
        ids::BPF_RANDOM,
    ]
    .into_iter()
    .collect()
}

/// Assembler name table for the standard helpers, letting application
/// sources `call` them by name.
pub fn helper_name_table() -> Vec<(String, u32)> {
    [
        ("bpf_printf", ids::BPF_PRINTF),
        ("bpf_print_num", ids::BPF_PRINT_NUM),
        ("bpf_memcpy", ids::BPF_MEMCPY),
        ("bpf_fetch_local", ids::BPF_FETCH_LOCAL),
        ("bpf_store_local", ids::BPF_STORE_LOCAL),
        ("bpf_fetch_global", ids::BPF_FETCH_GLOBAL),
        ("bpf_store_global", ids::BPF_STORE_GLOBAL),
        ("bpf_fetch_shared", ids::BPF_FETCH_SHARED),
        ("bpf_store_shared", ids::BPF_STORE_SHARED),
        ("bpf_now_ms", ids::BPF_NOW_MS),
        ("bpf_ztimer_now", ids::BPF_ZTIMER_NOW),
        ("bpf_saul_read", ids::BPF_SAUL_READ),
        ("bpf_saul_find_nth", ids::BPF_SAUL_FIND_NTH),
        ("bpf_gcoap_resp_init", ids::BPF_GCOAP_RESP_INIT),
        ("bpf_coap_add_format", ids::BPF_COAP_ADD_FORMAT),
        ("bpf_coap_opt_finish", ids::BPF_COAP_OPT_FINISH),
        ("bpf_fmt_s16_dfp", ids::BPF_FMT_S16_DFP),
        ("bpf_fmt_u32_dec", ids::BPF_FMT_U32_DEC),
        ("bpf_random", ids::BPF_RANDOM),
    ]
    .into_iter()
    .map(|(n, i)| (n.to_owned(), i))
    .collect()
}

/// Layout of the CoAP-hook context struct handed to containers:
/// `{ pkt_vaddr: u64, buf_len: u32, cursor: u32 }`. The packet buffer is
/// the first host-granted region, so its virtual address is
/// [`HOST_VADDR_BASE`].
pub fn coap_ctx_bytes(buf_len: u32) -> Vec<u8> {
    let mut ctx = Vec::with_capacity(16);
    ctx.extend_from_slice(&HOST_VADDR_BASE.to_le_bytes());
    ctx.extend_from_slice(&buf_len.to_le_bytes());
    ctx.extend_from_slice(&0u32.to_le_bytes());
    ctx
}

/// Builds the helper registry for one container, exposing only the
/// helpers granted by its contract.
///
/// The environment is shared through an atomically reference-counted
/// handle and all captured state is thread-safe, so the returned
/// registry is `'static` **and `Send`**: a hosting engine builds it
/// once per container at install time, reuses it for every event, and
/// may hand the whole container to a worker thread. Helper-internal
/// cycles are charged to the container's own `meter`.
pub fn build_registry(
    env: &Arc<HostEnv>,
    meter: &HelperMeter,
    container: ContainerId,
    tenant: TenantId,
    granted: &HelperSet,
) -> HelperRegistry<'static> {
    let mut reg = HelperRegistry::new();
    let has = |id: u32| granted.contains(&id);

    if has(ids::BPF_PRINTF) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_PRINTF, "bpf_printf", move |mem, args| {
            meter.charge(helper_internal_cycles(ids::BPF_PRINTF));
            let fmt = mem.c_string(args[0], 256)?;
            let mut out = String::new();
            let mut arg_i = 1;
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '%' {
                    match chars.next() {
                        Some('d') => {
                            out.push_str(
                                &(args.get(arg_i).copied().unwrap_or(0) as i64).to_string(),
                            );
                            arg_i += 1;
                        }
                        Some('u') => {
                            out.push_str(&args.get(arg_i).copied().unwrap_or(0).to_string());
                            arg_i += 1;
                        }
                        Some('x') => {
                            out.push_str(&format!("{:x}", args.get(arg_i).copied().unwrap_or(0)));
                            arg_i += 1;
                        }
                        Some('%') => out.push('%'),
                        Some(other) => {
                            out.push('%');
                            out.push(other);
                        }
                        None => out.push('%'),
                    }
                } else {
                    out.push(c);
                }
            }
            env.push_console(out);
            Ok(0)
        });
    }
    if has(ids::BPF_PRINT_NUM) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_PRINT_NUM, "bpf_print_num", move |_mem, args| {
            meter.charge(helper_internal_cycles(ids::BPF_PRINT_NUM));
            env.push_console(format!("{}", args[0] as i64));
            Ok(0)
        });
    }
    if has(ids::BPF_MEMCPY) {
        let meter = meter.clone();
        reg.register(ids::BPF_MEMCPY, "bpf_memcpy", move |mem, args| {
            let len = args[2] as usize;
            meter.charge(helper_internal_cycles(ids::BPF_MEMCPY) + len as u64);
            let src = mem.slice(args[1], len)?.to_vec();
            mem.slice_mut(args[0], len)?.copy_from_slice(&src);
            Ok(args[0])
        });
    }

    // Key-value store family: fetch writes a 32-bit value through a
    // pointer (matching the C API in paper Listing 2); store takes the
    // value directly.
    let mut kv = |id: u32, name: &'static str, scope: Scope, is_fetch: bool| {
        if !has(id) {
            return;
        }
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(id, name, move |mem, args| {
            meter.charge(helper_internal_cycles(id));
            let key = args[0] as u32;
            if is_fetch {
                let v = env.stores().fetch(container, tenant, scope, key);
                mem.store(args[1], 4, v as u32 as u64)?;
                Ok(0)
            } else {
                env.stores()
                    .store(container, tenant, scope, key, args[1] as u32 as i64)
                    .map_err(|e| VmError::HelperFault {
                        id,
                        reason: e.to_string(),
                    })?;
                Ok(0)
            }
        });
    };
    kv(ids::BPF_FETCH_LOCAL, "bpf_fetch_local", Scope::Local, true);
    kv(ids::BPF_STORE_LOCAL, "bpf_store_local", Scope::Local, false);
    kv(
        ids::BPF_FETCH_GLOBAL,
        "bpf_fetch_global",
        Scope::Global,
        true,
    );
    kv(
        ids::BPF_STORE_GLOBAL,
        "bpf_store_global",
        Scope::Global,
        false,
    );
    kv(
        ids::BPF_FETCH_SHARED,
        "bpf_fetch_shared",
        Scope::Tenant,
        true,
    );
    kv(
        ids::BPF_STORE_SHARED,
        "bpf_store_shared",
        Scope::Tenant,
        false,
    );

    if has(ids::BPF_NOW_MS) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_NOW_MS, "bpf_now_ms", move |_mem, _args| {
            meter.charge(helper_internal_cycles(ids::BPF_NOW_MS));
            Ok(env.now_us() / 1000)
        });
    }
    if has(ids::BPF_ZTIMER_NOW) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_ZTIMER_NOW, "bpf_ztimer_now", move |_mem, _args| {
            meter.charge(helper_internal_cycles(ids::BPF_ZTIMER_NOW));
            Ok(env.now_us())
        });
    }
    if has(ids::BPF_SAUL_FIND_NTH) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(
            ids::BPF_SAUL_FIND_NTH,
            "bpf_saul_find_nth",
            move |_mem, args| {
                meter.charge(helper_internal_cycles(ids::BPF_SAUL_FIND_NTH));
                let n = args[0] as usize;
                Ok(
                    if env.saul().lock().expect("saul lock").find_nth(n).is_some() {
                        n as u64
                    } else {
                        u64::MAX
                    },
                )
            },
        );
    }
    if has(ids::BPF_SAUL_READ) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_SAUL_READ, "bpf_saul_read", move |mem, args| {
            meter.charge(helper_internal_cycles(ids::BPF_SAUL_READ));
            let n = args[0] as usize;
            let read = env.saul().lock().expect("saul lock").read(n);
            match read {
                Some(phydat) => {
                    mem.store(args[1], 4, phydat.value as u32 as u64)?;
                    Ok(0)
                }
                None => Err(VmError::HelperFault {
                    id: ids::BPF_SAUL_READ,
                    reason: format!("no saul device {n}"),
                }),
            }
        });
    }

    // CoAP response formatting over the granted packet region. The ctx
    // struct layout is documented at `coap_ctx_bytes`.
    if has(ids::BPF_GCOAP_RESP_INIT) {
        let meter = meter.clone();
        reg.register(
            ids::BPF_GCOAP_RESP_INIT,
            "bpf_gcoap_resp_init",
            move |mem, args| {
                meter.charge(helper_internal_cycles(ids::BPF_GCOAP_RESP_INIT));
                let ctx = args[0];
                let pkt = mem.load(ctx, 8)?;
                // ACK, version 1, zero-length token; code from r2.
                mem.store(pkt, 1, 0x60)?;
                mem.store(pkt + 1, 1, args[1] & 0xff)?;
                mem.store(pkt + 2, 2, 0)?;
                mem.store(ctx + 12, 4, 4)?; // cursor
                Ok(0)
            },
        );
    }
    if has(ids::BPF_COAP_ADD_FORMAT) {
        let meter = meter.clone();
        reg.register(
            ids::BPF_COAP_ADD_FORMAT,
            "bpf_coap_add_format",
            move |mem, args| {
                meter.charge(helper_internal_cycles(ids::BPF_COAP_ADD_FORMAT));
                let ctx = args[0];
                let pkt = mem.load(ctx, 8)?;
                let cursor = mem.load(ctx + 12, 4)?;
                let fmt = args[1];
                let used = if fmt == 0 {
                    // Content-Format (12), zero-length value.
                    mem.store(pkt + cursor, 1, 0xc0)?;
                    1
                } else {
                    mem.store(pkt + cursor, 1, 0xc1)?;
                    mem.store(pkt + cursor + 1, 1, fmt & 0xff)?;
                    2
                };
                mem.store(ctx + 12, 4, cursor + used)?;
                Ok(0)
            },
        );
    }
    if has(ids::BPF_COAP_OPT_FINISH) {
        let meter = meter.clone();
        reg.register(
            ids::BPF_COAP_OPT_FINISH,
            "bpf_coap_opt_finish",
            move |mem, args| {
                meter.charge(helper_internal_cycles(ids::BPF_COAP_OPT_FINISH));
                let ctx = args[0];
                let pkt = mem.load(ctx, 8)?;
                let cursor = mem.load(ctx + 12, 4)?;
                mem.store(pkt + cursor, 1, 0xff)?;
                let payload_off = cursor + 1;
                mem.store(ctx + 12, 4, payload_off)?;
                Ok(payload_off)
            },
        );
    }
    if has(ids::BPF_FMT_U32_DEC) {
        let meter = meter.clone();
        reg.register(ids::BPF_FMT_U32_DEC, "bpf_fmt_u32_dec", move |mem, args| {
            meter.charge(helper_internal_cycles(ids::BPF_FMT_U32_DEC));
            let text = (args[1] as u32).to_string();
            let dst = mem.slice_mut(args[0], text.len())?;
            dst.copy_from_slice(text.as_bytes());
            Ok(text.len() as u64)
        });
    }
    if has(ids::BPF_FMT_S16_DFP) {
        let meter = meter.clone();
        reg.register(ids::BPF_FMT_S16_DFP, "bpf_fmt_s16_dfp", move |mem, args| {
            meter.charge(helper_internal_cycles(ids::BPF_FMT_S16_DFP));
            // Render `value × 10^scale` where scale is a small negative
            // exponent (RIOT's fmt_s16_dfp).
            let value = args[1] as u32 as i32 as i64;
            let scale = args[2] as u32 as i32;
            let text = if scale >= 0 {
                (value * 10i64.pow(scale as u32)).to_string()
            } else {
                let div = 10i64.pow((-scale) as u32);
                let sign = if value < 0 { "-" } else { "" };
                let v = value.abs();
                format!(
                    "{sign}{}.{:0width$}",
                    v / div,
                    v % div,
                    width = (-scale) as usize
                )
            };
            let dst = mem.slice_mut(args[0], text.len())?;
            dst.copy_from_slice(text.as_bytes());
            Ok(text.len() as u64)
        });
    }
    if has(ids::BPF_RANDOM) {
        let env = Arc::clone(env);
        let meter = meter.clone();
        reg.register(ids::BPF_RANDOM, "bpf_random", move |_mem, _args| {
            meter.charge(helper_internal_cycles(ids::BPF_RANDOM));
            Ok(env.rng_next())
        });
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_rbpf::mem::{MemoryMap, Perm, CTX_VADDR, STACK_VADDR};

    fn env() -> Arc<HostEnv> {
        Arc::new(HostEnv::new(32))
    }

    fn registry(
        env: &Arc<HostEnv>,
        container: ContainerId,
        tenant: TenantId,
    ) -> HelperRegistry<'static> {
        build_registry(
            env,
            &HelperMeter::new(),
            container,
            tenant,
            &standard_helper_ids(),
        )
    }

    #[test]
    fn registry_only_exposes_granted_helpers() {
        let env = env();
        let granted: HelperSet = [ids::BPF_NOW_MS].into_iter().collect();
        let reg = build_registry(&env, &HelperMeter::new(), 1, 1, &granted);
        assert_eq!(reg.granted_ids(), granted);
    }

    #[test]
    fn kv_fetch_store_round_trip_through_memory() {
        let env = env();
        let mut reg = registry(&env, 1, 7);
        let mut mem = MemoryMap::new();
        mem.add_stack(64);
        // store_global(5, 42)
        reg.call(ids::BPF_STORE_GLOBAL, &mut mem, [5, 42, 0, 0, 0])
            .unwrap();
        // fetch_global(5, stack)
        reg.call(ids::BPF_FETCH_GLOBAL, &mut mem, [5, STACK_VADDR, 0, 0, 0])
            .unwrap();
        assert_eq!(mem.load(STACK_VADDR, 4).unwrap(), 42);
    }

    #[test]
    fn tenant_scope_isolated_between_tenants() {
        let env = env();
        {
            let mut reg_a = registry(&env, 1, 100);
            let mut mem = MemoryMap::new();
            mem.add_stack(64);
            reg_a
                .call(ids::BPF_STORE_SHARED, &mut mem, [1, 11, 0, 0, 0])
                .unwrap();
        }
        let mut reg_b = registry(&env, 2, 200);
        let mut mem = MemoryMap::new();
        mem.add_stack(64);
        reg_b
            .call(ids::BPF_FETCH_SHARED, &mut mem, [1, STACK_VADDR, 0, 0, 0])
            .unwrap();
        assert_eq!(
            mem.load(STACK_VADDR, 4).unwrap(),
            0,
            "tenant B sees nothing"
        );
    }

    #[test]
    fn printf_formats_and_captures() {
        let env = env();
        let mut reg = registry(&env, 1, 1);
        let mut mem = MemoryMap::new();
        mem.add_rodata(b"t=%d hex=%x\0".to_vec());
        let rodata = fc_rbpf::mem::RODATA_VADDR;
        reg.call(ids::BPF_PRINTF, &mut mem, [rodata, 42, 255, 0, 0])
            .unwrap();
        assert_eq!(env.console_lines(), ["t=42 hex=ff"]);
    }

    #[test]
    fn saul_read_writes_sample() {
        let env = env();
        env.saul()
            .lock()
            .unwrap()
            .register("t0", fc_rtos::saul::DeviceClass::SenseTemp, || {
                fc_rtos::saul::Phydat {
                    value: 2155,
                    scale: -2,
                }
            });
        let mut reg = registry(&env, 1, 1);
        let mut mem = MemoryMap::new();
        mem.add_stack(64);
        reg.call(ids::BPF_SAUL_READ, &mut mem, [0, STACK_VADDR, 0, 0, 0])
            .unwrap();
        assert_eq!(mem.load(STACK_VADDR, 4).unwrap(), 2155);
        // Missing device faults.
        assert!(reg
            .call(ids::BPF_SAUL_READ, &mut mem, [9, STACK_VADDR, 0, 0, 0])
            .is_err());
    }

    #[test]
    fn coap_formatting_sequence_produces_valid_pdu() {
        let env = env();
        let mut reg = registry(&env, 1, 1);
        let mut mem = MemoryMap::new();
        mem.add_stack(64);
        mem.add_ctx(coap_ctx_bytes(64), Perm::RW);
        let pkt = mem.add_host_region("pkt", vec![0; 64], Perm::RW);
        reg.call(
            ids::BPF_GCOAP_RESP_INIT,
            &mut mem,
            [CTX_VADDR, 0x45, 0, 0, 0],
        )
        .unwrap();
        reg.call(ids::BPF_COAP_ADD_FORMAT, &mut mem, [CTX_VADDR, 0, 0, 0, 0])
            .unwrap();
        let off = reg
            .call(ids::BPF_COAP_OPT_FINISH, &mut mem, [CTX_VADDR, 0, 0, 0, 0])
            .unwrap();
        let pkt_addr = mem.region_vaddr(pkt);
        let len = reg
            .call(
                ids::BPF_FMT_U32_DEC,
                &mut mem,
                [pkt_addr + off, 2155, 0, 0, 0],
            )
            .unwrap();
        let total = (off + len) as usize;
        let pdu = mem.region_bytes(pkt)[..total].to_vec();
        // Header: ACK ver1 tkl0, code 2.05, then option 0xc0, 0xff, "2155".
        assert_eq!(pdu[0], 0x60);
        assert_eq!(pdu[1], 0x45);
        assert_eq!(pdu[4], 0xc0);
        assert_eq!(pdu[5], 0xff);
        assert_eq!(&pdu[6..], b"2155");
        // And it parses as a real CoAP message.
        let msg = fc_net::coap::Message::decode(&pdu).unwrap();
        assert_eq!(msg.code, fc_net::coap::Code::Content);
        assert_eq!(msg.payload, b"2155");
    }

    #[test]
    fn fmt_s16_dfp_renders_fixed_point() {
        let env = env();
        let mut reg = registry(&env, 1, 1);
        let mut mem = MemoryMap::new();
        mem.add_stack(64);
        let scale_minus_2 = (-2i32) as u32 as u64;
        let len = reg
            .call(
                ids::BPF_FMT_S16_DFP,
                &mut mem,
                [STACK_VADDR, 2155, scale_minus_2, 0, 0],
            )
            .unwrap();
        let text = &mem.region_bytes(mem.find_region("stack").unwrap())[..len as usize];
        assert_eq!(text, b"21.55");
    }

    #[test]
    fn helper_cycles_accumulate_on_the_meter() {
        let env = env();
        let meter = HelperMeter::new();
        let mut reg = build_registry(&env, &meter, 1, 1, &standard_helper_ids());
        let mut mem = MemoryMap::new();
        reg.call(ids::BPF_NOW_MS, &mut mem, [0; 5]).unwrap();
        reg.call(ids::BPF_RANDOM, &mut mem, [0; 5]).unwrap();
        assert_eq!(
            meter.get(),
            helper_internal_cycles(ids::BPF_NOW_MS) + helper_internal_cycles(ids::BPF_RANDOM)
        );
        meter.reset();
        assert_eq!(meter.get(), 0);
    }

    #[test]
    fn random_is_nonzero_and_changes() {
        let env = env();
        let mut reg = registry(&env, 1, 1);
        let mut mem = MemoryMap::new();
        let a = reg.call(ids::BPF_RANDOM, &mut mem, [0; 5]).unwrap();
        let b = reg.call(ids::BPF_RANDOM, &mut mem, [0; 5]).unwrap();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn registry_is_send_with_env_captured() {
        let env = env();
        let reg = registry(&env, 1, 1);
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&reg);
        // And actually usable from another thread.
        std::thread::spawn(move || {
            let mut reg = reg;
            let mut mem = MemoryMap::new();
            reg.call(ids::BPF_STORE_GLOBAL, &mut mem, [3, 33, 0, 0, 0])
                .unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(env.stores().fetch(1, 1, Scope::Global, 3), 33);
    }
}
