//! Launchpad hooks: the pre-determined attachment points compiled into
//! the RTOS firmware (paper §5, "Slim Event-based Launchpad Execution
//! Model", and §7 "Hooks & Event-based Execution").
//!
//! Containers can only be attached to and launched from these pads;
//! inserting a *new* pad requires a firmware update, while attaching an
//! application to an existing pad is a runtime operation driven by a
//! SUIT manifest naming the pad's UUID.

use fc_suit::Uuid;

/// The namespace for hook UUIDs (storage-location ids in manifests).
pub const HOOK_NAMESPACE: &str = "femto-container/hooks";

/// What kind of kernel event triggers a hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookKind {
    /// Fired on every scheduler thread switch (paper §8.2).
    SchedSwitch,
    /// Fired by a periodic timer (paper §8.3, sensor logic).
    Timer,
    /// Fired on an incoming CoAP request (paper §8.3, response logic).
    CoapRequest,
    /// Fired on network packet reception (firewall-style inspection).
    PacketRx,
    /// Fired by explicit firmware code (Listing 1 style).
    Custom,
}

/// How the results of multiple containers attached to one pad combine
/// into the value the firmware acts on (paper §10.3: "It depends on the
/// hook how the return value from each instance is processed further").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HookPolicy {
    /// Use the first container's result (attachment order).
    #[default]
    First,
    /// Use the last container's result.
    Last,
    /// Bitwise-or of all results (any container can assert a flag).
    Any,
    /// Sum of all results.
    Sum,
}

impl HookPolicy {
    /// Combines per-container results under this policy. `None` when no
    /// container produced a value (firmware falls back to its default
    /// flow, Figure 3 "Bypass with Default Result").
    pub fn combine(self, results: &[u64]) -> Option<u64> {
        if results.is_empty() {
            return None;
        }
        Some(match self {
            HookPolicy::First => results[0],
            HookPolicy::Last => *results.last().expect("non-empty"),
            HookPolicy::Any => results.iter().fold(0, |a, b| a | b),
            HookPolicy::Sum => results.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
        })
    }
}

/// A hook descriptor as compiled into the firmware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hook {
    /// Stable UUID (the SUIT storage location).
    pub id: Uuid,
    /// Human-readable name.
    pub name: String,
    /// Triggering event kind.
    pub kind: HookKind,
    /// Result-combination policy.
    pub policy: HookPolicy,
}

impl Hook {
    /// Creates a hook; its UUID derives deterministically from the name
    /// so maintainers can compute it offline when authoring manifests.
    pub fn new(name: &str, kind: HookKind, policy: HookPolicy) -> Self {
        Hook {
            id: Uuid::from_name(HOOK_NAMESPACE, name),
            name: name.to_owned(),
            kind,
            policy,
        }
    }
}

/// UUID of the standard scheduler-switch pad.
pub fn sched_hook_id() -> Uuid {
    Uuid::from_name(HOOK_NAMESPACE, "sched")
}

/// UUID of the standard periodic-timer pad.
pub fn timer_hook_id() -> Uuid {
    Uuid::from_name(HOOK_NAMESPACE, "timer")
}

/// UUID of the standard CoAP-request pad.
pub fn coap_hook_id() -> Uuid {
    Uuid::from_name(HOOK_NAMESPACE, "coap")
}

/// UUID of the standard packet-reception pad.
pub fn packet_hook_id() -> Uuid {
    Uuid::from_name(HOOK_NAMESPACE, "packet-rx")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_ids_are_stable_and_distinct() {
        assert_eq!(
            sched_hook_id(),
            Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First).id
        );
        let ids = [
            sched_hook_id(),
            timer_hook_id(),
            coap_hook_id(),
            packet_hook_id(),
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn policies_combine() {
        let r = [3u64, 4, 8];
        assert_eq!(HookPolicy::First.combine(&r), Some(3));
        assert_eq!(HookPolicy::Last.combine(&r), Some(8));
        assert_eq!(HookPolicy::Any.combine(&r), Some(15));
        assert_eq!(HookPolicy::Sum.combine(&r), Some(15));
        assert_eq!(HookPolicy::First.combine(&[]), None);
    }

    #[test]
    fn empty_results_mean_default_flow_for_every_policy() {
        // `None` is the firmware's "bypass with default result" signal
        // (Figure 3); all policies must produce it, never Some(0).
        for policy in [
            HookPolicy::First,
            HookPolicy::Last,
            HookPolicy::Any,
            HookPolicy::Sum,
        ] {
            assert_eq!(policy.combine(&[]), None, "{policy:?}");
        }
    }

    #[test]
    fn single_result_is_identity_for_every_policy() {
        for policy in [
            HookPolicy::First,
            HookPolicy::Last,
            HookPolicy::Any,
            HookPolicy::Sum,
        ] {
            assert_eq!(policy.combine(&[7]), Some(7), "{policy:?}");
            assert_eq!(
                policy.combine(&[0]),
                Some(0),
                "{policy:?}: a real zero is Some(0)"
            );
            assert_eq!(policy.combine(&[u64::MAX]), Some(u64::MAX), "{policy:?}");
        }
    }

    #[test]
    fn sum_wraps_on_overflow_instead_of_panicking() {
        // A malicious container returning u64::MAX must not be able to
        // panic the launchpad in a debug build: summation is defined
        // as wrapping.
        assert_eq!(HookPolicy::Sum.combine(&[u64::MAX, 2]), Some(1));
        assert_eq!(HookPolicy::Sum.combine(&[u64::MAX, 1]), Some(0));
        assert_eq!(
            HookPolicy::Sum.combine(&[u64::MAX, u64::MAX]),
            Some(u64::MAX - 1)
        );
        // Wrapping is order-independent.
        assert_eq!(
            HookPolicy::Sum.combine(&[2, u64::MAX]),
            HookPolicy::Sum.combine(&[u64::MAX, 2])
        );
    }

    #[test]
    fn any_saturates_at_all_ones_and_never_loses_bits() {
        assert_eq!(HookPolicy::Any.combine(&[u64::MAX, 5]), Some(u64::MAX));
        assert_eq!(
            HookPolicy::Any.combine(&[1 << 63, 1]),
            Some((1 << 63) | 1),
            "high and low bits both survive"
        );
        assert_eq!(HookPolicy::Any.combine(&[0, 0, 0]), Some(0));
    }
}
