//! Wiring between the hosting engine and the RTOS kernel (paper
//! Figure 3): hooks fire from kernel events, containers run as regular
//! activations, and their simulated cycles advance the kernel clock.

use std::cell::RefCell;
use std::rc::Rc;

use fc_rtos::kernel::Kernel;

use crate::engine::HostingEngine;
use crate::hooks::{sched_hook_id, timer_hook_id};

/// Shared engine handle.
pub type SharedEngine = Rc<RefCell<HostingEngine>>;

/// Attaches the engine's scheduler launchpad to the kernel's
/// thread-switch event: on every switch, containers attached to the
/// `sched` hook run with the paper's `{ previous, next }` context
/// (§8.2), and their cost is charged to the switching path.
pub fn attach_sched_hook(kernel: &mut Kernel, engine: SharedEngine) {
    kernel.on_thread_switch(move |ctx, sw| {
        let mut engine = engine.borrow_mut();
        engine.set_now_us(ctx.now_us());
        let mut bytes = Vec::with_capacity(16);
        // RIOT encodes "no previous thread" as KERNEL_PID_UNDEF; we use 0
        // and number real threads from 1 in the context struct.
        let prev = sw.previous.map(|p| p as u64 + 1).unwrap_or(0);
        bytes.extend_from_slice(&prev.to_le_bytes());
        bytes.extend_from_slice(&(sw.next as u64 + 1).to_le_bytes());
        if let Ok(report) = engine.fire_hook(sched_hook_id(), &bytes, &[]) {
            ctx.consume_cycles(report.cycles);
        }
    });
}

/// Attaches the engine's timer launchpad to a periodic kernel timer
/// (the §8.3 sensor-processing trigger).
pub fn attach_timer_hook(kernel: &mut Kernel, engine: SharedEngine, period_us: u64) {
    kernel.set_periodic_event(period_us, move |ctx| {
        let mut engine = engine.borrow_mut();
        engine.set_now_us(ctx.now_us());
        if let Ok(report) = engine.fire_hook(timer_hook_id(), &[0u8; 4], &[]) {
            ctx.consume_cycles(report.cycles);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::contract::ContractOffer;
    use crate::helpers_impl::standard_helper_ids;
    use crate::hooks::{Hook, HookKind, HookPolicy};
    use fc_rtos::kernel::ThreadAction;
    use fc_rtos::platform::{Engine, Platform};
    use fc_rtos::saul::{DeviceClass, Phydat};

    fn shared_engine() -> SharedEngine {
        let mut e = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
        e.register_hook(
            Hook::new("sched", HookKind::SchedSwitch, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
        e.register_hook(
            Hook::new("timer", HookKind::Timer, HookPolicy::First),
            ContractOffer::helpers(standard_helper_ids()),
        );
        Rc::new(RefCell::new(e))
    }

    #[test]
    fn sched_hook_counts_thread_activations_through_kernel() {
        let engine = shared_engine();
        {
            let mut e = engine.borrow_mut();
            let id = e
                .install(
                    "pid_log",
                    1,
                    &apps::thread_counter().to_bytes(),
                    apps::thread_counter_request(),
                )
                .unwrap();
            e.attach(id, sched_hook_id()).unwrap();
        }
        let mut kernel = Kernel::new(Platform::CortexM4);
        attach_sched_hook(&mut kernel, engine.clone());
        // Two threads alternating a few times.
        for name in ["a", "b"] {
            let mut left = 3;
            kernel.spawn(name, 5, 512, move |_ctx| {
                left -= 1;
                if left == 0 {
                    ThreadAction::Exit
                } else {
                    ThreadAction::Yield
                }
            });
        }
        kernel.run_until_idle(100_000_000);
        let engine = engine.borrow();
        let global = engine.env().stores().global_snapshot();
        // Context numbers threads from 1; switch count must match the
        // kernel's own bookkeeping.
        let total: i64 = (1..=2).map(|t| global.fetch(t)).sum();
        assert_eq!(total as u64, kernel.context_switches());
        assert!(total >= 2);
    }

    #[test]
    fn timer_hook_drives_sensor_pipeline() {
        let engine = shared_engine();
        {
            let mut e = engine.borrow_mut();
            e.env()
                .saul()
                .lock()
                .unwrap()
                .register("temp0", DeviceClass::SenseTemp, || Phydat {
                    value: 2100,
                    scale: -2,
                });
            let id = e
                .install(
                    "sensor",
                    2,
                    &apps::sensor_process().to_bytes(),
                    apps::sensor_process_request(),
                )
                .unwrap();
            e.attach(id, timer_hook_id()).unwrap();
        }
        let mut kernel = Kernel::new(Platform::CortexM4);
        attach_timer_hook(&mut kernel, engine.clone(), 1_000);
        kernel.run_for_us(5_500);
        let engine = engine.borrow();
        let avg = engine
            .env()
            .stores()
            .fetch(0, 2, fc_kvstore::Scope::Tenant, 1);
        assert_eq!(avg, 2100, "steady signal converges to itself");
        assert!(engine.env().saul().lock().unwrap().read_count(0).unwrap() >= 5);
    }

    #[test]
    fn hook_cost_advances_kernel_clock() {
        let engine = shared_engine();
        {
            let mut e = engine.borrow_mut();
            let id = e
                .install(
                    "pid_log",
                    1,
                    &apps::thread_counter().to_bytes(),
                    apps::thread_counter_request(),
                )
                .unwrap();
            e.attach(id, sched_hook_id()).unwrap();
        }
        let mut with_hook = Kernel::new(Platform::CortexM4);
        attach_sched_hook(&mut with_hook, engine);
        with_hook.spawn("t", 5, 512, |_| ThreadAction::Exit);
        with_hook.run_until_idle(100_000_000);

        let mut bare = Kernel::new(Platform::CortexM4);
        bare.spawn("t", 5, 512, |_| ThreadAction::Exit);
        bare.run_until_idle(100_000_000);

        assert!(
            with_hook.now_cycles() > bare.now_cycles(),
            "container work is charged to the switch path"
        );
    }
}
