//! # fc-core — the Femto-Containers middleware
//!
//! The paper's primary contribution (Zandberg et al., MIDDLEWARE 2022):
//! a hosting engine that deploys, executes and isolates small virtual
//! software functions on a low-power RTOS.
//!
//! * [`engine`] — install / attach / execute containers with memory
//!   allow-lists, finite-execution budgets and per-instance accounting;
//! * [`hooks`] — the launchpad pads compiled into the firmware;
//! * [`contract`] — request ∩ offer permission grants (§11);
//! * [`helpers_impl`] — the system-call bridge into stores, sensors,
//!   time and CoAP formatting (§7);
//! * [`apps`] — the paper's §8 prototype applications in eBPF assembly;
//! * [`deploy`] — SUIT-manifest-driven secure updates over CoAP (§5);
//! * [`integration`] — wiring hooks into the RTOS kernel (Figure 3);
//! * [`footprint`] — the flash/RAM models behind Tables 1 & 3 and
//!   Figures 2 & 7.
//!
//! ## Shared vs per-shard state (the `fc-host` concurrency boundary)
//!
//! The concurrent hosting runtime (`fc-host`) runs **N sibling
//! engines** — one per worker thread — built over one
//! [`helpers_impl::HostEnv`] via [`engine::HostingEngine::with_env`].
//! The split of state is deliberate and load-bearing:
//!
//! * **Shared, thread-safe** (`Arc<HostEnv>`): the key-value stores
//!   (global scope is the sanctioned cross-container channel, so it
//!   must stay coherent across shards — it sits behind
//!   [`fc_kvstore::ShardedStores`]' sharded locks), the SAUL sensor
//!   registry, the console, the virtual clock and the RNG (atomics).
//! * **Per shard, unlocked**: everything execution-hot — container
//!   slots, decoded programs, helper registries (whose closures are
//!   `Send` and capture the env through `Arc`), execution arenas with
//!   their buffer pools, and each slot's [`helpers_impl::HelperMeter`]
//!   for helper-cycle accounting.
//!
//! A [`engine::ContainerSlot`] is `Send` and migrates between sibling
//! engines via [`engine::HostingEngine::eject`] /
//! [`engine::HostingEngine::adopt`]; `install_with_id` lets a
//! multi-engine host assign globally unique container ids.
//!
//! ## Quick start
//!
//! ```
//! use fc_core::contract::ContractRequest;
//! use fc_core::engine::HostingEngine;
//! use fc_rbpf::program::ProgramBuilder;
//! use fc_rtos::platform::{Engine, Platform};
//!
//! let mut engine = HostingEngine::new(Platform::CortexM4, Engine::FemtoContainer);
//! let app = ProgramBuilder::new().asm("mov r0, 40\nadd r0, 2\nexit")?.build();
//! let id = engine.install("answer", 1, &app.to_bytes(), ContractRequest::default())?;
//! assert_eq!(engine.execute(id, &[], &[])?.result, Ok(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod contract;
pub mod deploy;
pub mod engine;
pub mod footprint;
pub mod helpers_impl;
pub mod hooks;
pub mod integration;

pub use contract::{Contract, ContractOffer, ContractRequest};
pub use engine::{
    ContainerId, EngineError, ExecTier, ExecutionReport, HookReport, HostRegion, HostingEngine,
};
pub use hooks::{Hook, HookKind, HookPolicy};
