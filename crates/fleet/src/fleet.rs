//! The fleet front tier: N hosting nodes behind a consistent-hash
//! ring.
//!
//! Every hook UUID is owned by exactly one node ([`crate::ring`]); the
//! front routes dispatches and deploys to the owner through the
//! [`NodeService`] boundary, so nodes may be in-process
//! ([`fc_host::LocalNode`]) or across the lossy link
//! ([`crate::node::RemoteNode`]) interchangeably.
//!
//! **Hook handoff.** The ring is rebuilt explicitly on node join/leave
//! ([`FcFleet::add_node`] / [`FcFleet::remove_node`]); each hook whose
//! owner changed is evacuated from the old node (whose `FcHost`
//! retires the container slot through the same eject/adopt machinery
//! migrations use) and re-created on the new owner: hook registration
//! from the fleet's retained spec, container from the fleet's retained
//! SUIT update — deployment state is *fleet-authoritative*, so a node
//! can leave without warning and its hooks still come back verbatim
//! elsewhere. Ordering per hook: unregister → register → re-deploy;
//! dispatches issued between those steps fail with
//! [`NodeError::UnknownHook`] and are the caller's to retry, exactly
//! like a CoAP 4.04 during a real re-home.
//!
//! **Deploy fan-out.** [`FcFleet::deploy`] pushes one signed update to
//! its component's owner (stage chunks → apply manifest, each leg with
//! retry/dedup over the link); [`FcFleet::deploy_fanout`] pushes it to
//! **every** node — the owner attaches it to the hook, the others hold
//! it as an unattached standby — and reports per-node accept/reject.
//!
//! **Concurrent windows.** Nodes that expose a
//! [`fc_host::WindowedNode`] face (the remote transport, the local
//! adapter's worker threads) are driven together: [`FcFleet::dispatch_all`]
//! partitions a mixed workload by ring owner, submits every node's
//! share into its window, and round-robins one single-threaded pump
//! loop across all of them — each node's virtual link clock advances
//! independently, no threads in the front tier — completing each
//! entry in offer order. [`FcFleet::deploy_fanout`] pushes its
//! staging/deploy sequences the same way: strictly ordered per node
//! (a staging hole is an error), concurrent across nodes.

use std::collections::HashMap;

use fc_core::contract::ContractOffer;
use fc_core::engine::{HookReport, HostRegion};
use fc_core::helpers_impl::coap_ctx_bytes;
use fc_core::hooks::Hook;
use fc_host::coap::{response_pdu, DEFAULT_PKT_LEN};
use fc_host::{
    CoapReply, CounterId, DeployReport, GaugeId, HookEvent, MetricsSnapshot, NodeError, NodeReply,
    NodeService, NodeStats, Ticket, TransportStats,
};
use fc_net::coap::Message;
use fc_suit::cbor::Value;
use fc_suit::cose::CoseSign1;
use fc_suit::{Manifest, Uuid};

use crate::ring::{HashRing, DEFAULT_VNODES};

/// One entry's outcome from [`FcFleet::dispatch_all`]: the whole entry
/// failed to reach its owner, or per-event reports in offer order.
pub type BatchOutcome = Result<Vec<Result<HookReport, NodeError>>, NodeError>;

/// Tuning for a [`FcFleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Virtual ring points per node.
    pub vnodes: usize,
    /// Response packet buffer size for [`FcFleet::serve`].
    pub pkt_len: usize,
    /// Chunk size when staging SUIT payloads onto nodes.
    pub stage_chunk: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            vnodes: DEFAULT_VNODES,
            pkt_len: DEFAULT_PKT_LEN,
            stage_chunk: 256,
        }
    }
}

/// A SUIT update the fleet retains per component — the authoritative
/// copy handoff re-deploys from.
#[derive(Debug, Clone)]
struct RetainedUpdate {
    uri: String,
    envelope: Vec<u8>,
    payload: Vec<u8>,
}

struct FleetNode {
    id: usize,
    service: Box<dyn NodeService>,
}

/// The consistent-hashing front tier over N nodes (module docs).
///
/// # Examples
///
/// ```
/// use fc_core::contract::ContractOffer;
/// use fc_core::helpers_impl::standard_helper_ids;
/// use fc_core::hooks::{Hook, HookKind, HookPolicy};
/// use fc_fleet::FcFleet;
/// use fc_host::{HostConfig, LocalNode};
/// use fc_rtos::platform::{Engine, Platform};
///
/// let mut fleet = FcFleet::new(Default::default());
/// for _ in 0..2 {
///     let node = LocalNode::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
///     fleet.add_node(Box::new(node)).unwrap();
/// }
/// let hook = Hook::new("tick", HookKind::Timer, HookPolicy::First);
/// let hook_id = hook.id;
/// fleet.register_hook(hook, ContractOffer::helpers(standard_helper_ids())).unwrap();
/// let report = fleet.dispatch(hook_id, Default::default()).unwrap();
/// assert!(report.executions.is_empty()); // nothing deployed yet
/// ```
pub struct FcFleet {
    config: FleetConfig,
    nodes: Vec<FleetNode>,
    next_id: usize,
    ring: HashRing,
    hooks: HashMap<Uuid, (Hook, ContractOffer)>,
    routes: HashMap<String, Uuid>,
    retained: HashMap<Uuid, RetainedUpdate>,
    handoffs: u64,
    /// Prebuilt [`FcFleet::serve`] event: the CoAP context bytes and
    /// the zeroed packet region are formatted once and cloned per
    /// request (one memcpy) instead of re-encoded and re-zeroed.
    serve_scratch: HookEvent,
}

impl FcFleet {
    /// Creates an empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        FcFleet {
            ring: HashRing::new(config.vnodes),
            serve_scratch: HookEvent {
                ctx: coap_ctx_bytes(config.pkt_len as u32),
                extra: vec![HostRegion::read_write("pkt", vec![0; config.pkt_len])],
            },
            config,
            nodes: Vec::new(),
            next_id: 0,
            hooks: HashMap::new(),
            routes: HashMap::new(),
            retained: HashMap::new(),
            handoffs: 0,
        }
    }

    /// Member nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registered hooks.
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Hooks re-homed by membership changes so far.
    pub fn handoff_count(&self) -> u64 {
        self.handoffs
    }

    /// The node currently owning a hook on the ring.
    pub fn owner_of(&self, hook: Uuid) -> Option<usize> {
        self.ring.owner(hook)
    }

    /// The fleet-retained hook specs, sorted by hook id — the restore
    /// input for a crashed durable node ([`fc_host::LocalNode::restore`]
    /// rebuilds its hooks from these plus its own journal).
    pub fn hook_specs(&self) -> Vec<(Hook, ContractOffer)> {
        let mut specs: Vec<(Hook, ContractOffer)> = self.hooks.values().cloned().collect();
        specs.sort_by_key(|(hook, _)| hook.id);
        specs
    }

    /// Swaps the service behind a member node **without** touching the
    /// ring — the restart-in-place seam: a crashed durable node keeps
    /// its id and its ring arcs, and its restored replacement resumes
    /// serving them. Returns the old (crashed) service.
    ///
    /// # Errors
    ///
    /// [`NodeError::Rejected`] for an unknown id.
    pub fn replace_node_service(
        &mut self,
        id: usize,
        service: Box<dyn NodeService>,
    ) -> Result<Box<dyn NodeService>, NodeError> {
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or_else(|| NodeError::Rejected(format!("node {id} is not a fleet member")))?;
        Ok(std::mem::replace(&mut node.service, service))
    }

    fn node_mut(&mut self, id: usize) -> Result<&mut Box<dyn NodeService>, NodeError> {
        self.nodes
            .iter_mut()
            .find(|n| n.id == id)
            .map(|n| &mut n.service)
            .ok_or_else(|| NodeError::Rejected(format!("node {id} is not a fleet member")))
    }

    /// Admits a node and rebuilds the ring, handing the hooks whose
    /// arcs it took over (registration + retained update) to it.
    /// Returns the new node's id.
    ///
    /// # Errors
    ///
    /// Handoff errors ([`NodeError`]); the membership change itself
    /// always lands — a hook whose handoff failed mid-way reports
    /// [`NodeError::UnknownHook`] on dispatch until re-registered.
    pub fn add_node(&mut self, service: Box<dyn NodeService>) -> Result<usize, NodeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.nodes.push(FleetNode { id, service });
        self.rebuild_ring()?;
        Ok(id)
    }

    /// Retires a node: its hooks are evacuated (gracefully while it
    /// still answers), the ring is rebuilt, and each hook is re-homed
    /// onto its new owner from the fleet's retained spec + update. The
    /// removed service is returned for inspection or disposal.
    ///
    /// # Errors
    ///
    /// [`NodeError::Rejected`] for an unknown id; handoff errors as
    /// [`FcFleet::add_node`].
    pub fn remove_node(&mut self, id: usize) -> Result<Box<dyn NodeService>, NodeError> {
        let pos = self
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or_else(|| NodeError::Rejected(format!("node {id} is not a fleet member")))?;
        // Graceful evacuation: best effort — a node being removed
        // because it died cannot answer, and does not need to (the
        // retained updates re-create everything on the new owners).
        let owned: Vec<Uuid> = self
            .hooks
            .keys()
            .copied()
            .filter(|h| self.ring.owner(*h) == Some(id))
            .collect();
        for hook in owned {
            let _ = self.nodes[pos].service.unregister_hook(hook);
        }
        let removed = self.nodes.remove(pos);
        self.rebuild_ring()?;
        Ok(removed.service)
    }

    /// Recomputes the ring over current members and re-homes every
    /// hook whose owner changed.
    fn rebuild_ring(&mut self) -> Result<(), NodeError> {
        let before: HashMap<Uuid, Option<usize>> = self
            .hooks
            .keys()
            .map(|h| (*h, self.ring.owner(*h)))
            .collect();
        let ids: Vec<usize> = self.nodes.iter().map(|n| n.id).collect();
        self.ring.rebuild(&ids);
        let mut failures: Vec<(Uuid, NodeError)> = Vec::new();
        for (hook, old) in before {
            let new = self.ring.owner(hook);
            if old == new {
                continue;
            }
            if let Err(e) = self.handoff(hook, old, new) {
                failures.push((hook, e));
            }
        }
        match failures.len() {
            0 => Ok(()),
            // Name EVERY failed hook: each one dispatches UnknownHook
            // until re-registered, and the caller must know which.
            _ => Err(NodeError::Rejected(format!(
                "handoff failed for {} hook(s): {}",
                failures.len(),
                failures
                    .iter()
                    .map(|(hook, e)| format!("{hook}: {e}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            ))),
        }
    }

    fn handoff(
        &mut self,
        hook: Uuid,
        from: Option<usize>,
        to: Option<usize>,
    ) -> Result<(), NodeError> {
        if let Some(from) = from {
            // The old owner may already be gone (remove_node evacuated
            // or the node died); evacuation is best effort.
            if let Ok(node) = self.node_mut(from) {
                let _ = node.unregister_hook(hook);
            }
        }
        let Some(to) = to else { return Ok(()) };
        let (desc, offer) = self
            .hooks
            .get(&hook)
            .cloned()
            .expect("handoff only runs for registered hooks");
        self.node_mut(to)?.register_hook(desc, offer)?;
        if let Some(update) = self.retained.get(&hook).cloned() {
            self.push_update(to, &update)?;
        }
        self.handoffs += 1;
        Ok(())
    }

    /// Registers a hook fleet-wide: the spec is retained and the
    /// hook is created on its ring owner. Returns the owner's id.
    ///
    /// # Errors
    ///
    /// [`NodeError::Rejected`] on an empty fleet; transport errors from
    /// the owner.
    pub fn register_hook(&mut self, hook: Hook, offer: ContractOffer) -> Result<usize, NodeError> {
        let owner = self
            .ring
            .owner(hook.id)
            .ok_or_else(|| NodeError::Rejected("fleet has no nodes".to_owned()))?;
        self.hooks.insert(hook.id, (hook.clone(), offer.clone()));
        self.node_mut(owner)?.register_hook(hook, offer)?;
        Ok(owner)
    }

    /// Unregisters a hook fleet-wide: evacuated from its owner,
    /// dropped from the retained specs and updates. The node is
    /// evacuated **first**: on a transport failure the fleet keeps its
    /// record of the hook, so the caller can retry instead of orphaning
    /// a still-running hook the fleet no longer knows how to reach.
    ///
    /// # Errors
    ///
    /// [`NodeError::UnknownHook`] when never registered; transport
    /// errors leave the fleet state intact for a retry.
    pub fn unregister_hook(&mut self, hook: Uuid) -> Result<(), NodeError> {
        if !self.hooks.contains_key(&hook) {
            return Err(NodeError::UnknownHook(hook));
        }
        if let Some(owner) = self.ring.owner(hook) {
            match self.node_mut(owner)?.unregister_hook(hook) {
                // The owner not knowing the hook means it is already
                // evacuated there (e.g. an earlier handoff failed after
                // the old owner let go) — exactly the state this call
                // wants, so finish the fleet-side cleanup instead of
                // failing every retry forever.
                Ok(()) | Err(NodeError::UnknownHook(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.hooks.remove(&hook);
        self.retained.remove(&hook);
        self.routes.retain(|_, h| *h != hook);
        Ok(())
    }

    /// Fires one event at a hook's owner node.
    ///
    /// # Errors
    ///
    /// [`NodeError::UnknownHook`] for an unregistered hook (or one
    /// mid-handoff), otherwise whatever the node reports.
    pub fn dispatch(&mut self, hook: Uuid, event: HookEvent) -> Result<HookReport, NodeError> {
        if !self.hooks.contains_key(&hook) {
            return Err(NodeError::UnknownHook(hook));
        }
        let owner = self.ring.owner(hook).ok_or(NodeError::UnknownHook(hook))?;
        self.node_mut(owner)?.dispatch(hook, event)
    }

    /// Fires a vector of events at a hook's owner node with the
    /// batched wire path; reports in offer order.
    ///
    /// # Errors
    ///
    /// As [`FcFleet::dispatch`].
    pub fn dispatch_batch(
        &mut self,
        hook: Uuid,
        events: Vec<HookEvent>,
    ) -> Result<Vec<Result<HookReport, NodeError>>, NodeError> {
        if !self.hooks.contains_key(&hook) {
            return Err(NodeError::UnknownHook(hook));
        }
        let owner = self.ring.owner(hook).ok_or(NodeError::UnknownHook(hook))?;
        self.node_mut(owner)?.dispatch_batch(hook, events)
    }

    /// Fires a mixed workload — `(hook, events)` entries — across the
    /// fleet **concurrently**: the work is partitioned by ring owner,
    /// each owner's share is submitted into its transport window, and
    /// one single-threaded loop pumps every node until all entries
    /// resolve. Results line up with the input entries (offer order);
    /// per-event outcomes within an entry are independent, as in
    /// [`FcFleet::dispatch_batch`]. Nodes without a windowed face are
    /// served blockingly at submission, so mixed fleets still work.
    ///
    /// Unlike the one-node-at-a-time path, entries for **different**
    /// hooks proceed in parallel: cross-entry execution order is
    /// unspecified (RFC 7252 §4.7 — NSTART > 1 relinquishes
    /// cross-message ordering). Exactly-once per event still holds.
    pub fn dispatch_all(&mut self, work: Vec<(Uuid, Vec<HookEvent>)>) -> Vec<BatchOutcome> {
        let mut results: Vec<Option<BatchOutcome>> = work.iter().map(|_| None).collect();
        // (owner node id, ticket, index into `results`)
        let mut pending: Vec<(usize, Ticket, usize)> = Vec::new();
        for (idx, (hook, events)) in work.into_iter().enumerate() {
            if !self.hooks.contains_key(&hook) {
                results[idx] = Some(Err(NodeError::UnknownHook(hook)));
                continue;
            }
            let Some(owner) = self.ring.owner(hook) else {
                results[idx] = Some(Err(NodeError::UnknownHook(hook)));
                continue;
            };
            let service = match self.node_mut(owner) {
                Ok(service) => service,
                Err(e) => {
                    results[idx] = Some(Err(e));
                    continue;
                }
            };
            match service.windowed() {
                Some(w) => match w.submit_batch(hook, events) {
                    Ok(ticket) => pending.push((owner, ticket, idx)),
                    Err(e) => results[idx] = Some(Err(e)),
                },
                None => results[idx] = Some(service.dispatch_batch(hook, events)),
            }
        }
        while !pending.is_empty() {
            let mut progressed = false;
            let mut pumped: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < pending.len() {
                let (owner, ticket, idx) = pending[i];
                let service = match self.node_mut(owner) {
                    Ok(service) => service,
                    Err(e) => {
                        // The node left the fleet mid-flight.
                        results[idx] = Some(Err(e));
                        pending.swap_remove(i);
                        continue;
                    }
                };
                let w = service
                    .windowed()
                    .expect("tickets are only issued by windowed nodes");
                // One pump per node per round, however many of its
                // tickets are outstanding.
                if !pumped.contains(&owner) {
                    pumped.push(owner);
                    if w.pump() {
                        progressed = true;
                    }
                }
                match w.take(ticket) {
                    Some(result) => {
                        results[idx] = Some(result.and_then(|reply| match reply {
                            NodeReply::Batch(items) => Ok(items),
                            other => Err(NodeError::Transport(format!(
                                "unexpected windowed reply {other:?}"
                            ))),
                        }));
                        pending.swap_remove(i);
                        progressed = true;
                    }
                    None => i += 1,
                }
            }
            if !progressed && !pending.is_empty() {
                // Every remaining entry waits on node worker threads.
                std::thread::yield_now();
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every entry resolved or failed at submission"))
            .collect()
    }

    /// Routes a CoAP resource path onto a hook (front-tier routing,
    /// for [`FcFleet::serve`]).
    pub fn add_route(&mut self, path: &str, hook: Uuid) {
        self.routes.insert(path.trim_matches('/').to_owned(), hook);
    }

    /// Serves one tenant CoAP request end to end: path → hook → owner
    /// node → formatted response, the fleet-tier analogue of
    /// [`fc_host::CoapFront::dispatch_sync`].
    ///
    /// # Errors
    ///
    /// [`NodeError::UnknownHook`] for unrouted paths; node errors
    /// otherwise.
    pub fn serve(&mut self, request: &Message) -> Result<CoapReply, NodeError> {
        let hook = *self
            .routes
            .get(request.path().trim_matches('/'))
            .ok_or_else(|| {
                NodeError::UnknownHook(Uuid::from_name("fleet/unrouted", &request.path()))
            })?;
        let event = self.serve_scratch.clone();
        let report = self.dispatch(hook, event)?;
        let pdu = response_pdu(&report);
        let message = Message::decode(&pdu).ok();
        Ok(CoapReply {
            report,
            pdu,
            message,
        })
    }

    /// Peeks the component and URI out of a manifest envelope without
    /// verifying it — routing metadata only; every node re-verifies the
    /// signature itself before installing anything.
    fn peek_manifest(envelope: &[u8]) -> Result<(Uuid, String), NodeError> {
        let cose = CoseSign1::decode(envelope)
            .map_err(|e| NodeError::Rejected(format!("manifest undecodable: {e:?}")))?;
        let value = Value::decode(&cose.payload)
            .map_err(|e| NodeError::Rejected(format!("manifest undecodable: {e:?}")))?;
        let manifest = Manifest::from_cbor(&value)
            .map_err(|e| NodeError::Rejected(format!("manifest undecodable: {e}")))?;
        Ok((manifest.component, manifest.uri))
    }

    fn push_update(
        &mut self,
        node: usize,
        update: &RetainedUpdate,
    ) -> Result<DeployReport, NodeError> {
        let chunk = self.config.stage_chunk.max(1);
        let service = self.node_mut(node)?;
        if update.payload.is_empty() {
            service.stage_chunk(&update.uri, 0, &[], true)?;
        } else {
            for (i, piece) in update.payload.chunks(chunk).enumerate() {
                service.stage_chunk(&update.uri, i * chunk, piece, i == 0)?;
            }
        }
        service.deploy(&update.envelope)
    }

    /// Deploys a signed SUIT update to its component's owner node:
    /// payload staged block-wise, manifest applied, update retained as
    /// the fleet's authoritative copy for future handoffs. Returns the
    /// owner's id and its deploy report.
    ///
    /// # Errors
    ///
    /// [`NodeError::Rejected`] with the node's verdict (signature,
    /// rollback, digest, rate limit, engine), or transport errors.
    pub fn deploy(
        &mut self,
        envelope: &[u8],
        payload: &[u8],
    ) -> Result<(usize, DeployReport), NodeError> {
        let (component, uri) = Self::peek_manifest(envelope)?;
        let owner = self
            .ring
            .owner(component)
            .ok_or_else(|| NodeError::Rejected("fleet has no nodes".to_owned()))?;
        let update = RetainedUpdate {
            uri,
            envelope: envelope.to_vec(),
            payload: payload.to_vec(),
        };
        let report = self.push_update(owner, &update)?;
        self.retained.insert(component, update);
        Ok((owner, report))
    }

    /// Fans a signed SUIT update out to **every** node, reporting each
    /// node's accept/reject individually: the component's owner
    /// attaches it to the hook, the other nodes install an unattached
    /// standby copy (their engines have no such hook registered). The
    /// update is retained when at least one node accepted.
    ///
    /// Windowed nodes are pushed **concurrently**: each node walks its
    /// own stage → … → deploy sequence strictly in order (a staging
    /// hole is an error, so steps never overlap within one node), but
    /// all nodes walk at once under one pump loop. Nodes without a
    /// windowed face are pushed blockingly first.
    pub fn deploy_fanout(
        &mut self,
        envelope: &[u8],
        payload: &[u8],
    ) -> Vec<(usize, Result<DeployReport, NodeError>)> {
        let (component, uri) = match Self::peek_manifest(envelope) {
            Ok(peeked) => peeked,
            Err(e) => return self.nodes.iter().map(|n| (n.id, Err(e.clone()))).collect(),
        };
        let update = RetainedUpdate {
            uri,
            envelope: envelope.to_vec(),
            payload: payload.to_vec(),
        };
        // The per-node script: staging chunks in offset order, then
        // the deploy (one step past the last chunk).
        let chunk = self.config.stage_chunk.max(1);
        let steps: Vec<(usize, &[u8], bool)> = if update.payload.is_empty() {
            vec![(0, &[][..], true)]
        } else {
            update
                .payload
                .chunks(chunk)
                .enumerate()
                .map(|(i, piece)| (i * chunk, piece, i == 0))
                .collect()
        };
        struct Run {
            id: usize,
            next_step: usize,
            ticket: Option<Ticket>,
            done: Option<Result<DeployReport, NodeError>>,
        }
        let mut runs: Vec<Run> = self
            .nodes
            .iter()
            .map(|n| Run {
                id: n.id,
                next_step: 0,
                ticket: None,
                done: None,
            })
            .collect();
        // Nodes without a windowed face get the blocking push now.
        for run in &mut runs {
            let windowed = self
                .node_mut(run.id)
                .map(|service| service.windowed().is_some())
                .unwrap_or(false);
            if !windowed {
                run.done = Some(self.push_update(run.id, &update));
            }
        }
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for run in &mut runs {
                if run.done.is_some() {
                    continue;
                }
                all_done = false;
                let service = match self.node_mut(run.id) {
                    Ok(service) => service,
                    Err(e) => {
                        run.done = Some(Err(e));
                        continue;
                    }
                };
                let w = service
                    .windowed()
                    .expect("non-windowed nodes were resolved blockingly above");
                if run.ticket.is_none() {
                    let submitted = if run.next_step < steps.len() {
                        let (offset, piece, restart) = steps[run.next_step];
                        w.submit_stage(&update.uri, offset, piece, restart)
                    } else {
                        w.submit_deploy(&update.envelope)
                    };
                    match submitted {
                        Ok(ticket) => {
                            run.ticket = Some(ticket);
                            progressed = true;
                        }
                        Err(e) => {
                            run.done = Some(Err(e));
                            continue;
                        }
                    }
                }
                if w.pump() {
                    progressed = true;
                }
                let ticket = run.ticket.expect("submitted above");
                if let Some(result) = w.take(ticket) {
                    progressed = true;
                    run.ticket = None;
                    match result {
                        Ok(NodeReply::Staged) => run.next_step += 1,
                        Ok(NodeReply::Deploy(report)) => run.done = Some(Ok(report)),
                        Ok(other) => {
                            run.done = Some(Err(NodeError::Transport(format!(
                                "unexpected windowed reply {other:?}"
                            ))));
                        }
                        Err(e) => run.done = Some(Err(e)),
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
        let outcomes: Vec<(usize, Result<DeployReport, NodeError>)> = runs
            .into_iter()
            .map(|r| (r.id, r.done.expect("loop exits only when all done")))
            .collect();
        if outcomes.iter().any(|(_, r)| r.is_ok()) {
            self.retained.insert(component, update);
        }
        outcomes
    }

    /// Stats/health snapshots from every node.
    pub fn stats(&mut self) -> Vec<(usize, Result<NodeStats, NodeError>)> {
        let ids: Vec<usize> = self.nodes.iter().map(|n| n.id).collect();
        ids.into_iter()
            .map(|id| {
                let stats = self.node_mut(id).and_then(|service| service.stats());
                (id, stats)
            })
            .collect()
    }

    /// Full telemetry snapshots scraped from every node over its own
    /// transport — the deep companion to [`FcFleet::stats`]. Each
    /// snapshot crosses the (possibly lossy) wire in the snapshot's
    /// own binary format nested inside the node-op codec, so a scrape
    /// enjoys the same retry/dedup discipline as any other operation.
    pub fn metrics(&mut self) -> Vec<(usize, Result<MetricsSnapshot, NodeError>)> {
        let ids: Vec<usize> = self.nodes.iter().map(|n| n.id).collect();
        ids.into_iter()
            .map(|id| {
                let snapshot = self.node_mut(id).and_then(|service| service.metrics());
                (id, snapshot)
            })
            .collect()
    }

    /// One fleet-wide telemetry view: every node scraped
    /// ([`FcFleet::metrics`]), each snapshot retagged with the node's
    /// fleet id, then merged — counters sum, gauges max, histograms
    /// add bucket-wise — with each node's transport counters
    /// (retransmits, coalesced frames, in-flight high-water, smoothed
    /// RTT) overlaid so the wire itself shows up in the same view.
    /// Nodes that fail to answer are skipped and reported alongside.
    pub fn merged_metrics(&mut self) -> (MetricsSnapshot, Vec<(usize, NodeError)>) {
        let mut merged = MetricsSnapshot::default();
        let mut failed: Vec<(usize, NodeError)> = Vec::new();
        for (id, scraped) in self.metrics() {
            match scraped {
                Ok(mut snapshot) => {
                    snapshot.retag_node(id as u32);
                    merged.merge(&snapshot);
                }
                Err(e) => failed.push((id, e)),
            }
        }
        for (_, t) in self.transport_stats() {
            merged.add_counter(CounterId::Retransmits, t.retransmits);
            merged.add_counter(CounterId::CoalescedFrames, t.coalesced_frames);
            merged.gauge_max(GaugeId::InFlightHwm, t.in_flight_hwm);
            merged.gauge_max(GaugeId::SrttUs, t.srtt_us);
            merged.gauge_max(GaugeId::VirtualNowUs, t.virtual_now_us);
        }
        (merged, failed)
    }

    /// Transport counters from every node's windowed face — the
    /// observability companion to [`FcFleet::stats`]. Nodes without
    /// one (pure blocking adapters) report zeros.
    pub fn transport_stats(&mut self) -> Vec<(usize, TransportStats)> {
        let ids: Vec<usize> = self.nodes.iter().map(|n| n.id).collect();
        ids.into_iter()
            .map(|id| {
                let stats = self
                    .node_mut(id)
                    .ok()
                    .and_then(|service| service.windowed().map(|w| w.transport_stats()))
                    .unwrap_or_default();
                (id, stats)
            })
            .collect()
    }
}

impl std::fmt::Debug for FcFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FcFleet")
            .field("nodes", &self.nodes.len())
            .field("hooks", &self.hooks.len())
            .field("handoffs", &self.handoffs)
            .finish()
    }
}
