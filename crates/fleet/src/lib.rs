//! # fc-fleet — the multi-node fleet tier
//!
//! The paper deploys tenant functions onto *one* constrained device;
//! its end state is fleets of them behind a deployment middleware.
//! This crate is that tier: **N hosting nodes behind a
//! consistent-hashing front**, every node driven through the
//! transport-agnostic [`fc_host::NodeService`] boundary so the front
//! cannot tell an in-process node ([`fc_host::LocalNode`]) from one
//! across the lossy low-power link ([`node::RemoteNode`]).
//!
//! ```text
//!        CoAP requests / SUIT updates
//!                 │
//!             FcFleet            consistent-hash ring (hook UUID →
//!                 │              node, virtual points; explicit
//!      ┌──────────┼──────────┐   rebuild + hook handoff on join/leave)
//!      ▼          ▼          ▼
//!  NodeService NodeService NodeService      (the boundary)
//!      │          │          │
//!  LocalNode   RemoteNode  RemoteNode ──── CoAP codec + retry/dedup
//!      │          │  ╲          ╲          tokens over fc_net::link
//!   FcHost    NodeEndpoint  NodeEndpoint   (loss, duplication,
//!                 │              │          reordering first-class)
//!              FcHost         FcHost
//! ```
//!
//! What each module owns:
//!
//! * [`ring`] — the consistent-hash ring: hook UUIDs → node ids over
//!   virtual points; membership changes move only the affected arcs.
//! * [`wire`] — the lossless binary codec shipping every
//!   `NodeService` operation and result (full
//!   [`fc_core::engine::HookReport`]s included) inside CoAP payloads.
//! * [`node`] — the codec adapter: [`node::NodeEndpoint`] executes
//!   decoded operations **exactly once** (request-token dedup cache),
//!   [`node::RemoteNode`] keeps a **window** of concurrent exchanges
//!   in flight (CoAP NSTART > 1) with selective, capped-back-off
//!   retransmission over the seeded lossy link.
//! * [`fleet`] — [`FcFleet`]: routing, membership + hook handoff
//!   (fleet-retained hook specs and SUIT updates re-create a hook on
//!   its new owner), fleet-wide deploy fan-out with per-node
//!   accept/reject, stats.
//!
//! The load-bearing guarantee, pinned by `tests/host_differential.rs`
//! at the workspace root: a 1-node fleet routed through the codec
//! adapter over a lossless link produces per-event reports
//! **bit-identical** to a bare [`fc_host::FcHost`], and a lossy run
//! (drops + duplicates + reorders) neither loses nor double-executes
//! any event.

#![deny(missing_docs)]

pub mod fleet;
pub mod node;
pub mod ring;
pub mod wire;

pub use fleet::{BatchOutcome, FcFleet, FleetConfig};
pub use node::{
    NodeEndpoint, RemoteConfig, RemoteNode, FLEET_MTU, MAX_TRANSMIT_WAIT_US, NODE_OP_PATH,
};
pub use ring::HashRing;
pub use wire::{NodeOp, ReplyBody, WireError, BUNDLE_MAGIC};
