//! The message-codec [`NodeService`] adapter: the same operations the
//! in-process adapter performs, serialized as CoAP messages over a
//! [`LossyLink`] — loss, reordering and duplication first-class on
//! every node interaction.
//!
//! Two halves share this module:
//!
//! * [`NodeEndpoint`] — the node-side server. Decodes an operation off
//!   a CoAP request, executes it on the wrapped [`NodeService`], and
//!   replies. Its **dedup cache** (request token → cached response) is
//!   what turns at-least-once delivery into exactly-once effect: a
//!   retransmitted or link-duplicated request replays the recorded
//!   response instead of re-executing the operation. Batch dispatches
//!   additionally run **deferred** when the wrapped service has a
//!   windowed face: the endpoint submits them to the node's worker
//!   threads and replies when they finish, so the event loop never
//!   blocks inside an exchange.
//! * [`RemoteNode`] — the front-tier client. A **windowed**,
//!   multiplexed CoAP endpoint: an exchange table keyed by the dedup
//!   tokens holds up to [`RemoteConfig::window`] concurrent
//!   confirmable exchanges (the NSTART > 1 relaxation of RFC 7252
//!   §4.7), each with its own exponential back-off capped at
//!   [`RemoteConfig::max_transmit_wait_us`] and **selective**
//!   per-token retransmission. Replies complete exchanges in whatever
//!   order the link delivers them; the dedup discipline makes that
//!   reordering safe. Same-tick frames headed the same way coalesce
//!   into one datagram under the MTU ([`wire::encode_bundle`]);
//!   singleton frames stay raw, so `window = 1` — the default — is
//!   wire-identical to the original stop-and-wait transport.
//!
//! The simulation couples both halves around one seeded link, driving
//! virtual time exactly like [`fc_net::endpoint::CoapClient`]; the
//! codec, window and dedup discipline are what a real deployment would
//! keep. One rule anchors the virtual clock: **execution takes zero
//! virtual time**. The clock only advances while no deferred batch is
//! executing on the node's (real) worker threads, so a reply is always
//! sent at the virtual instant its request arrived — which is also
//! what keeps `window = 1` timing identical to the stop-and-wait
//! transport it replaces.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fc_core::contract::ContractOffer;
use fc_core::engine::HookReport;
use fc_core::hooks::Hook;
use fc_host::{
    DeployReport, HookEvent, MetricsSnapshot, NodeError, NodeReply, NodeService, NodeStats, Ticket,
    TraceEvent, TraceKind, TraceRing, TransportStats, WindowedNode,
};
use fc_net::coap::{Code, Message};
use fc_net::endpoint::{ACK_TIMEOUT_US, MAX_RETRANSMIT};
use fc_net::link::{Addr, Datagram, LinkConfig, LossyLink};
use fc_suit::Uuid;

use crate::wire::{self, NodeOp, ReplyBody};

/// The CoAP resource path carrying node operations.
pub const NODE_OP_PATH: &str = "fc/op";

/// Default bound on remembered (token → response) pairs.
pub const DEFAULT_DEDUP_CACHE: usize = 128;

/// Default MTU for the front-tier ↔ node leg: a backhaul-class
/// datagram path rather than the 802.15.4 last hop, sized so a
/// sub-batch of reports fits one datagram.
pub const FLEET_MTU: usize = 4096;

/// Default cap on one exchange's retransmission interval, in virtual
/// µs — the RFC 7252 `MAX_TRANSMIT_WAIT` role: back-off grows
/// exponentially up to this bound, never past it, so a dead link
/// yields [`NodeError::Timeout`] in bounded virtual time.
pub const MAX_TRANSMIT_WAIT_US: u64 = 10_000_000;

/// Capacity of a [`RemoteNode`]'s transport trace ring: enough to
/// hold the retransmission history of a whole windowed burst without
/// growing on the hot path.
pub const TRANSPORT_TRACE_CAPACITY: usize = 256;

/// Headroom reserved for CoAP framing around an encoded operation
/// (4-byte header, 8-byte token, `fc/op` path options, payload
/// marker) when checking a datagram against the link MTU.
const FRAME_OVERHEAD: usize = 32;

/// Reply-size headroom per dispatched event beyond the echoed request
/// payload: result, op counts, cycles, region framing. A reply echoes
/// the event's context and regions back (≈ the request payload) plus
/// this much bookkeeping, so event-carrying requests are budgeted at
/// `2 × request + REPLY_PER_EVENT × events + REPLY_BASE` against the
/// MTU — conservatively, since a reply the node cannot send is an
/// operation whose outcome the caller can never learn.
const REPLY_PER_EVENT: usize = 192;

/// Fixed reply-size headroom (report envelope, combined result).
const REPLY_BASE: usize = 128;

/// A batch dispatch the endpoint handed to the node's workers and has
/// not yet answered.
#[derive(Debug)]
struct Deferred {
    /// The request's dedup token — retransmissions arriving while the
    /// batch executes match here and are suppressed, not re-executed.
    token: Vec<u8>,
    /// The request message, kept to build the eventual response; its
    /// `message_id` tracks the **latest** transmission seen, so the
    /// reply acknowledges the copy the client is still waiting on.
    request: Message,
    /// The windowed submission to collect the result from.
    ticket: Ticket,
    /// The collected outcome, buffered until the whole cohort of
    /// deferred batches has one (see [`NodeEndpoint::poll_ready`]).
    done: Option<Result<NodeReply, NodeError>>,
}

/// Node-side server: executes decoded operations with exactly-once
/// effect (module docs).
#[derive(Debug)]
pub struct NodeEndpoint<S> {
    inner: S,
    seen: VecDeque<(Vec<u8>, Message)>,
    cache: usize,
    in_progress: Vec<Deferred>,
    served: u64,
    deduped: u64,
}

impl<S: NodeService> NodeEndpoint<S> {
    /// Wraps a node service with the default dedup cache.
    pub fn new(inner: S) -> Self {
        NodeEndpoint {
            inner,
            seen: VecDeque::new(),
            cache: DEFAULT_DEDUP_CACHE,
            in_progress: Vec::new(),
            served: 0,
            deduped: 0,
        }
    }

    /// Overrides the dedup-cache bound (clamped to at least 1). The
    /// cache must cover the client's retransmission window; it should
    /// comfortably exceed [`RemoteConfig::window`].
    pub fn with_cache(mut self, entries: usize) -> Self {
        self.cache = entries.max(1);
        self
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped service (tests, provisioning).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Replaces the wrapped service — the restart seam after a crash:
    /// the caller restores a node from its durable media (e.g.
    /// [`fc_host::LocalNode::restore`]) and swaps it in here. The
    /// volatile endpoint state dies with the old process image: the
    /// dedup cache and deferred batches are cleared, so post-restart
    /// exactly-once rests entirely on the restored node's journal
    /// resume state. Returns the old (crashed) service.
    pub fn restart(&mut self, inner: S) -> S {
        self.seen.clear();
        self.in_progress.clear();
        std::mem::replace(&mut self.inner, inner)
    }

    /// Operations actually executed (dedup replays excluded).
    pub fn served_count(&self) -> u64 {
        self.served
    }

    /// Requests answered from the dedup cache — or suppressed because
    /// the operation is still executing — without re-executing.
    pub fn deduped_count(&self) -> u64 {
        self.deduped
    }

    /// Deferred batches currently executing on the node's workers.
    pub fn pending_count(&self) -> usize {
        self.in_progress.len()
    }

    /// Answers a request from the dedup cache, if its token was served
    /// before. The replay answers THIS transmission.
    fn replay(&mut self, request: &Message) -> Option<Message> {
        let (_, cached) = self.seen.iter().find(|(t, _)| *t == request.token)?;
        self.deduped += 1;
        let mut replay = cached.clone();
        replay.message_id = request.message_id;
        Some(replay)
    }

    /// Builds the 2.05 response for a finished operation and records
    /// it in the dedup cache.
    fn finish(&mut self, request: &Message, reply: &Result<ReplyBody, NodeError>) -> Message {
        let mut resp = Message::response_to(request, Code::Content);
        resp.payload = wire::encode_reply(reply);
        if self.seen.len() >= self.cache {
            self.seen.pop_front();
        }
        self.seen.push_back((request.token.clone(), resp.clone()));
        resp
    }

    /// Serves one decoded CoAP request synchronously. Unknown paths
    /// get 4.04; an undecodable operation gets 4.00; everything else
    /// returns 2.05 with the encoded reply ([`wire::encode_reply`]) as
    /// payload — node-side rejections ride *inside* that payload, so
    /// the transport cannot confuse them with its own failures.
    pub fn handle(&mut self, request: &Message) -> Message {
        if request.path() != NODE_OP_PATH {
            return Message::response_to(request, Code::NotFound);
        }
        if let Some(replay) = self.replay(request) {
            return replay;
        }
        let op = match wire::decode_op(&request.payload) {
            Ok(op) => op,
            Err(_) => return Message::response_to(request, Code::BadRequest),
        };
        self.served += 1;
        let reply = self.execute(op, &request.token);
        self.finish(request, &reply)
    }

    /// Serves one request, deferring batch dispatches to the node's
    /// workers when the wrapped service has a windowed face: `None`
    /// means the reply will come from a later [`NodeEndpoint::poll_ready`].
    /// Everything else (cache replays, non-batch operations, services
    /// without a windowed face) answers immediately, exactly like
    /// [`NodeEndpoint::handle`].
    pub fn handle_deferred(&mut self, request: &Message) -> Option<Message> {
        // A crash-stopped node is powered off: it answers nothing at
        // all (not even 4.04) until the caller restores it and swaps
        // the restored service in through [`NodeEndpoint::restart`].
        if self.inner.crashed() {
            return None;
        }
        if request.path() != NODE_OP_PATH {
            return Some(Message::response_to(request, Code::NotFound));
        }
        if let Some(replay) = self.replay(request) {
            return Some(replay);
        }
        if let Some(pending) = self
            .in_progress
            .iter_mut()
            .find(|p| p.token == request.token)
        {
            // A retransmission of a batch still executing: suppress it
            // (the work must not run twice) and remember the new
            // message id so the eventual reply answers this copy.
            pending.request.message_id = request.message_id;
            self.deduped += 1;
            return None;
        }
        let op = match wire::decode_op(&request.payload) {
            Ok(op) => op,
            Err(_) => return Some(Message::response_to(request, Code::BadRequest)),
        };
        self.served += 1;
        if let NodeOp::Batch { hook, events } = op {
            if self.inner.windowed().is_some() {
                let submitted = self
                    .inner
                    .windowed()
                    .expect("windowed face checked above")
                    .submit_batch_tagged(hook, events, &request.token);
                return match submitted {
                    Ok(ticket) => {
                        self.in_progress.push(Deferred {
                            token: request.token.clone(),
                            request: request.clone(),
                            ticket,
                            done: None,
                        });
                        None
                    }
                    // Rejected at submission (unknown hook): a normal
                    // node-side error reply, cached like any other.
                    Err(e) => Some(self.finish(request, &Err(e))),
                };
            }
            let reply = self
                .inner
                .dispatch_batch_tagged(hook, events, &request.token)
                .map(ReplyBody::Batch);
            if self.inner.crashed() {
                return None;
            }
            return Some(self.finish(request, &reply));
        }
        let reply = self.execute(op, &request.token);
        // A crash **during** the operation (fault injection at a
        // commit seam) suppresses the reply: the record may or may not
        // be durable, but the client must learn the verdict only from
        // the restored node's journal, never from a dying reply.
        if self.inner.crashed() {
            return None;
        }
        Some(self.finish(request, &reply))
    }

    /// Pumps the wrapped service's workers and, once **every** deferred
    /// batch has finished, returns their responses in submission order.
    /// Each response enters the dedup cache as it is built.
    pub fn poll_ready(&mut self) -> Vec<Message> {
        if self.in_progress.is_empty() {
            return Vec::new();
        }
        let Some(w) = self.inner.windowed() else {
            return Vec::new();
        };
        w.pump();
        for pending in &mut self.in_progress {
            if pending.done.is_none() {
                pending.done = self
                    .inner
                    .windowed()
                    .expect("windowed face exists while batches are in progress")
                    .take(pending.ticket);
            }
        }
        // Release only when the WHOLE cohort has finished, in
        // submission order. Every deferred batch shares one frozen
        // virtual instant (the clock cannot advance while work is
        // pending), so waiting for stragglers costs no virtual time —
        // and emitting the cohort as one group keeps reply datagram
        // bundling (hence the link's RNG draw order) independent of
        // real worker scheduling: lossy runs stay deterministic per
        // seed.
        if self.in_progress.iter().any(|p| p.done.is_none()) {
            return Vec::new();
        }
        if self.inner.crashed() {
            // The node died while the cohort executed: every reply is
            // suppressed (and not cached) — the deferred work's fate is
            // whatever the journal committed before the power cut.
            self.in_progress.clear();
            return Vec::new();
        }
        let cohort: Vec<Deferred> = self.in_progress.drain(..).collect();
        cohort
            .into_iter()
            .map(|pending| {
                let reply = match pending.done.expect("cohort is complete") {
                    Ok(NodeReply::Batch(items)) => Ok(ReplyBody::Batch(items)),
                    Ok(other) => Err(NodeError::Transport(format!(
                        "unexpected windowed reply {other:?}"
                    ))),
                    Err(e) => Err(e),
                };
                self.finish(&pending.request, &reply)
            })
            .collect()
    }

    fn execute(&mut self, op: NodeOp, token: &[u8]) -> Result<ReplyBody, NodeError> {
        match op {
            NodeOp::RegisterHook { hook, offer } => self
                .inner
                .register_hook(hook, offer)
                .map(|()| ReplyBody::Unit),
            NodeOp::UnregisterHook { hook } => {
                self.inner.unregister_hook(hook).map(|()| ReplyBody::Unit)
            }
            // Dispatches and deploys carry the request's dedup token
            // into the node as the **durable** exchange identity: a
            // durable node commits under it before replying, and a
            // restored node answers a pre-crash token from its journal
            // instead of re-executing (the endpoint's own dedup cache
            // is volatile and dies with a crash).
            NodeOp::Dispatch { hook, event } => self
                .inner
                .dispatch_tagged(hook, event, token)
                .map(ReplyBody::Report),
            NodeOp::Batch { hook, events } => self
                .inner
                .dispatch_batch_tagged(hook, events, token)
                .map(ReplyBody::Batch),
            NodeOp::StageChunk {
                uri,
                offset,
                restart,
                chunk,
            } => self
                .inner
                .stage_chunk(&uri, offset as usize, &chunk, restart)
                .map(|()| ReplyBody::Unit),
            NodeOp::Deploy { envelope } => self
                .inner
                .deploy_tagged(&envelope, token)
                .map(ReplyBody::Deploy),
            NodeOp::Stats => self.inner.stats().map(ReplyBody::Stats),
            NodeOp::Metrics => self
                .inner
                .metrics()
                .map(|snap| ReplyBody::Metrics(Box::new(snap))),
        }
    }
}

/// Tuning for a [`RemoteNode`]'s transport.
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// The simulated link between the front tier and the node.
    pub link: LinkConfig,
    /// Events per wire message on the batch path; larger batches are
    /// split transparently (exactly-once still holds per sub-batch via
    /// its token) and the sub-batches feed the window.
    pub max_events_per_message: usize,
    /// Initial retransmission timeout in microseconds.
    pub ack_timeout_us: u64,
    /// Retransmissions before the exchange reports
    /// [`NodeError::Timeout`].
    pub max_retransmit: u32,
    /// Concurrent confirmable exchanges the client keeps in flight
    /// (CoAP NSTART). `1` — the default — degenerates to the
    /// stop-and-wait transport, bit-identical on the wire.
    pub window: usize,
    /// Upper bound on one exchange's back-off interval in virtual µs
    /// (RFC 7252 `MAX_TRANSMIT_WAIT` role): `timeout` doubles per
    /// retransmission but never past this.
    pub max_transmit_wait_us: u64,
    /// First exchange token this client draws (tokens count up from
    /// here). A durable node's journal answers retransmissions by
    /// token identity, so a **fresh** front tier attached to a
    /// restored node must pick a token space disjoint from its
    /// predecessor's — real CoAP clients start from a random token
    /// for the same reason. Irrelevant when the same client survives
    /// the node's restart ([`NodeEndpoint::restart`]), whose token
    /// counter simply keeps counting.
    pub initial_token: u64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            link: LinkConfig {
                mtu: FLEET_MTU,
                ..LinkConfig::default()
            },
            max_events_per_message: 8,
            ack_timeout_us: ACK_TIMEOUT_US,
            max_retransmit: MAX_RETRANSMIT,
            window: 1,
            max_transmit_wait_us: MAX_TRANSMIT_WAIT_US,
            initial_token: 1,
        }
    }
}

/// One confirmable exchange in flight.
#[derive(Debug)]
struct Exchange {
    /// The full encoded request frame, resent verbatim (same message
    /// id, same token) on retransmission.
    frame: Vec<u8>,
    /// Transmissions so far (the launch counts as the first).
    attempts: u32,
    /// Current back-off interval.
    timeout_us: u64,
    /// Virtual deadline of the next retransmission.
    retx_at: u64,
    /// Virtual time of the latest transmission (RTT sampling).
    sent_at: u64,
    /// Whether any retransmission happened — Karn's rule: such an
    /// exchange never updates the smoothed RTT, since a reply cannot
    /// be attributed to one specific transmission.
    retransmitted: bool,
    /// Launch order, for out-of-order completion accounting.
    launch_seq: u64,
}

/// What a resolved ticket's parts assemble into.
#[derive(Debug, Clone, Copy)]
enum TicketKind {
    Batch,
    Stage,
    Deploy,
}

/// One windowed submission: the exchanges it split into, in offer
/// order.
#[derive(Debug)]
struct PendingTicket {
    kind: TicketKind,
    parts: Vec<u64>,
}

/// Front-tier proxy for one node across the lossy link (module docs).
/// Implements [`NodeService`], so a fleet cannot tell it from an
/// in-process node — except through [`NodeError::Timeout`] — and
/// [`WindowedNode`], which is how the fleet keeps its window full
/// without blocking.
#[derive(Debug)]
pub struct RemoteNode<S> {
    endpoint: NodeEndpoint<S>,
    link: LossyLink,
    client_addr: Addr,
    node_addr: Addr,
    now_us: u64,
    next_token: u64,
    next_mid: u16,
    next_ticket: Ticket,
    launch_seq: u64,
    /// Highest launch sequence among completed exchanges, to detect
    /// completions that overtook an earlier launch.
    completed_seq_hwm: u64,
    /// Submitted operations waiting for a window slot, in submission
    /// order: encoded operation payloads keyed by their dedup token.
    backlog: VecDeque<(u64, Vec<u8>)>,
    /// The exchange table: token → in-flight exchange. A `BTreeMap`
    /// keeps retransmission scans in token order, so the link's RNG
    /// draws stay deterministic.
    exchanges: BTreeMap<u64, Exchange>,
    /// Finished exchanges awaiting collection: token → flattened
    /// outcome (transport failures and node-side errors both collapse
    /// to [`NodeError`], as in the blocking API).
    completed: HashMap<u64, Result<ReplyBody, NodeError>>,
    tickets: HashMap<Ticket, PendingTicket>,
    tstats: TransportStats,
    /// Transport-side event trace: retransmissions and exchange
    /// timeouts, stamped with this link's virtual clock.
    trace: TraceRing,
    config: RemoteConfig,
}

impl<S: NodeService> RemoteNode<S> {
    /// Couples a node service to the front tier over a fresh link.
    pub fn new(service: S, config: RemoteConfig) -> Self {
        RemoteNode {
            endpoint: NodeEndpoint::new(service),
            link: LossyLink::new(config.link),
            client_addr: Addr::new(1, 40_000),
            node_addr: Addr::new(2, 5683),
            now_us: 0,
            next_token: config.initial_token.max(1),
            next_mid: 1,
            next_ticket: 0,
            launch_seq: 0,
            completed_seq_hwm: 0,
            backlog: VecDeque::new(),
            exchanges: BTreeMap::new(),
            completed: HashMap::new(),
            tickets: HashMap::new(),
            tstats: TransportStats::default(),
            trace: TraceRing::new(TRANSPORT_TRACE_CAPACITY),
            config,
        }
    }

    /// The node-side endpoint (dedup counters, wrapped service).
    pub fn endpoint(&self) -> &NodeEndpoint<S> {
        &self.endpoint
    }

    /// Mutable access to the node-side endpoint.
    pub fn endpoint_mut(&mut self) -> &mut NodeEndpoint<S> {
        &mut self.endpoint
    }

    /// The link statistics (sent/dropped/duplicated).
    pub fn link(&self) -> &LossyLink {
        &self.link
    }

    /// Current virtual time on this node's link, microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The transport-side trace: one [`TraceKind::Retransmit`] event
    /// per resent frame, stamped with this link's virtual clock
    /// (`a` = exchange token, `b` = transmission attempt).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// Whether an event-carrying request of `encoded_len` bytes fits
    /// the link both ways: request with framing out, and the reply —
    /// which echoes the events' payload back plus per-event
    /// bookkeeping — on the return leg.
    fn fits_with_reply(&self, encoded_len: usize, events: usize) -> bool {
        encoded_len
            .saturating_mul(2)
            .saturating_add(REPLY_PER_EVENT.saturating_mul(events))
            .saturating_add(REPLY_BASE + FRAME_OVERHEAD)
            <= self.config.link.mtu
    }

    /// Queues one encoded operation for the window, returning its
    /// dedup token (the exchange-table key).
    ///
    /// # Errors
    ///
    /// [`NodeError::Transport`] when the framed request cannot fit the
    /// link MTU.
    fn submit_payload(&mut self, payload: Vec<u8>) -> Result<u64, NodeError> {
        // The check covers the framed datagram, not just the payload.
        if payload.len() + FRAME_OVERHEAD > self.config.link.mtu {
            return Err(NodeError::Transport(format!(
                "operation of {} bytes exceeds link mtu {} (incl. framing)",
                payload.len(),
                self.config.link.mtu
            )));
        }
        let token = self.next_token;
        self.next_token += 1;
        self.backlog.push_back((token, payload));
        Ok(token)
    }

    /// Splits a batch into encoded sub-batch payloads, each fitting
    /// the MTU **both ways**, in offer order.
    ///
    /// # Errors
    ///
    /// [`NodeError::Transport`] when a single event cannot fit.
    fn split_batch(&self, hook: Uuid, events: Vec<HookEvent>) -> Result<Vec<Vec<u8>>, NodeError> {
        let per_message = self.config.max_events_per_message.max(1);
        let mut queue: VecDeque<Vec<HookEvent>> = events
            .chunks(per_message)
            .map(<[HookEvent]>::to_vec)
            .collect();
        if queue.is_empty() {
            queue.push_back(Vec::new());
        }
        let mut out = Vec::new();
        while let Some(chunk) = queue.pop_front() {
            // A sub-batch splits in two while either its own framed
            // datagram or its projected reply would not fit the MTU; a
            // single oversized event is a hard transport error. The
            // encoding is produced once and shipped as-is.
            let events_in_chunk = chunk.len();
            let op = NodeOp::Batch {
                hook,
                events: chunk,
            };
            let encoded = wire::encode_op(&op);
            if !self.fits_with_reply(encoded.len(), events_in_chunk) {
                let NodeOp::Batch {
                    events: mut chunk, ..
                } = op
                else {
                    unreachable!("op was built as a batch above");
                };
                if chunk.len() <= 1 {
                    return Err(NodeError::Transport(
                        "single event exceeds link mtu".to_owned(),
                    ));
                }
                let tail = chunk.split_off(chunk.len() / 2);
                queue.push_front(tail);
                queue.push_front(chunk);
                continue;
            }
            out.push(encoded);
        }
        Ok(out)
    }

    /// Sends `frames` towards `dst`, coalescing under the MTU budget:
    /// consecutive frames share a datagram while the bundle still
    /// fits; a frame that will not join the current bundle starts the
    /// next one. Singleton bundles go raw ([`wire::encode_bundle`]).
    fn flush(&mut self, src: Addr, dst: Addr, frames: Vec<Vec<u8>>) -> Result<(), NodeError> {
        let mut group: Vec<Vec<u8>> = Vec::new();
        // Bundle overhead: magic + count, then a u32 length per frame.
        let mut group_len = 2usize;
        for frame in frames {
            let framed = frame.len() + 4;
            if !group.is_empty()
                && (group_len + framed > self.config.link.mtu || group.len() == 255)
            {
                self.send_group(src, dst, std::mem::take(&mut group))?;
                group_len = 2;
            }
            group_len += framed;
            group.push(frame);
        }
        if !group.is_empty() {
            self.send_group(src, dst, group)?;
        }
        Ok(())
    }

    fn send_group(&mut self, src: Addr, dst: Addr, group: Vec<Vec<u8>>) -> Result<(), NodeError> {
        self.tstats.coalesced_frames += group.len() as u64 - 1;
        let payload = wire::encode_bundle(&group);
        self.link
            .send(self.now_us, Datagram { src, dst, payload })
            .map_err(|e| NodeError::Transport(e.to_string()))
    }

    /// Records an exchange's outcome and retires it from the table.
    fn complete(&mut self, token: u64, seq: u64, outcome: Result<ReplyBody, NodeError>) {
        if seq < self.completed_seq_hwm {
            self.tstats.completed_out_of_order += 1;
        } else {
            self.completed_seq_hwm = seq;
        }
        self.completed.insert(token, outcome);
    }

    /// One event-loop step (module docs for the clock rule): launch
    /// backlog into free window slots, deliver and serve node-side
    /// datagrams, collect finished deferred batches, deliver
    /// client-side replies, retransmit due exchanges — and only when
    /// none of that moved anything **and** no batch is executing,
    /// advance the virtual clock to the next scheduled event.
    fn step(&mut self) -> bool {
        let mut progressed = false;
        let window = self.config.window.max(1);

        // Launch queued operations into free window slots.
        let mut to_node: Vec<Vec<u8>> = Vec::new();
        while self.exchanges.len() < window {
            let Some((token, payload)) = self.backlog.pop_front() else {
                break;
            };
            let mid = self.next_mid;
            self.next_mid = self.next_mid.wrapping_add(1);
            let mut request = Message::request(Code::Post, mid, &token.to_be_bytes());
            request.set_path(NODE_OP_PATH);
            request.payload = payload;
            let frame = request.encode();
            self.launch_seq += 1;
            self.exchanges.insert(
                token,
                Exchange {
                    frame: frame.clone(),
                    attempts: 1,
                    timeout_us: self.config.ack_timeout_us,
                    retx_at: self.now_us + self.config.ack_timeout_us,
                    sent_at: self.now_us,
                    retransmitted: false,
                    launch_seq: self.launch_seq,
                },
            );
            to_node.push(frame);
            progressed = true;
        }
        self.tstats.in_flight_hwm = self.tstats.in_flight_hwm.max(self.exchanges.len() as u64);

        // Deliver the node's datagrams and serve the requests inside.
        let mut replies: Vec<Vec<u8>> = Vec::new();
        for dgram in self.link.poll_ready(self.node_addr.node, self.now_us) {
            progressed = true;
            let Ok(frames) = wire::split_datagram(&dgram.payload) else {
                continue;
            };
            for frame in frames {
                if let Ok(req) = Message::decode(&frame) {
                    if let Some(resp) = self.endpoint.handle_deferred(&req) {
                        replies.push(resp.encode());
                    }
                }
            }
        }

        // Collect deferred batches the workers have finished.
        for resp in self.endpoint.poll_ready() {
            replies.push(resp.encode());
            progressed = true;
        }
        // A reply the link refuses (oversized despite the request-side
        // budget) is dropped: with many exchanges multiplexed there is
        // no single caller to charge the error to, so the exchange
        // simply times out.
        let _ = self.flush(self.node_addr, self.client_addr, replies);

        // Deliver replies to the client side and complete exchanges.
        for dgram in self.link.poll_ready(self.client_addr.node, self.now_us) {
            progressed = true;
            let Ok(frames) = wire::split_datagram(&dgram.payload) else {
                continue;
            };
            for frame in frames {
                let Ok(resp) = Message::decode(&frame) else {
                    continue;
                };
                let Some(token) = resp
                    .token
                    .as_slice()
                    .try_into()
                    .ok()
                    .map(u64::from_be_bytes)
                else {
                    continue;
                };
                let Some(ex) = self.exchanges.remove(&token) else {
                    continue; // duplicate reply of a finished exchange
                };
                if !ex.retransmitted {
                    // Karn: only clean exchanges sample the RTT.
                    let rtt = self.now_us.saturating_sub(ex.sent_at);
                    self.tstats.srtt_us = if self.tstats.srtt_us == 0 {
                        rtt
                    } else {
                        (7 * self.tstats.srtt_us + rtt) / 8
                    };
                }
                let outcome = if resp.code == Code::Content {
                    match wire::decode_reply(&resp.payload) {
                        Ok(reply) => reply,
                        Err(e) => Err(NodeError::from(e)),
                    }
                } else {
                    Err(NodeError::Transport(format!(
                        "node answered {:?}",
                        resp.code
                    )))
                };
                self.complete(token, ex.launch_seq, outcome);
            }
        }

        // Selective retransmission: only the exchanges whose own
        // deadline passed resend; back-off doubles per exchange, capped
        // at max_transmit_wait_us.
        let mut retx: Vec<Vec<u8>> = Vec::new();
        let mut dead: Vec<(u64, u64)> = Vec::new();
        for (&token, ex) in &mut self.exchanges {
            if ex.retx_at > self.now_us {
                continue;
            }
            if ex.attempts > self.config.max_retransmit {
                dead.push((token, ex.launch_seq));
                continue;
            }
            ex.attempts += 1;
            ex.retransmitted = true;
            ex.timeout_us = (ex.timeout_us * 2).min(self.config.max_transmit_wait_us.max(1));
            ex.sent_at = self.now_us;
            ex.retx_at = self.now_us + ex.timeout_us;
            retx.push(ex.frame.clone());
            self.tstats.retransmits += 1;
            self.trace.record(
                self.now_us,
                TraceKind::Retransmit,
                token,
                u64::from(ex.attempts),
            );
            progressed = true;
        }
        for (token, seq) in dead {
            self.exchanges.remove(&token);
            self.complete(token, seq, Err(NodeError::Timeout));
            progressed = true;
        }
        to_node.extend(retx);
        self.flush(self.client_addr, self.node_addr, to_node)
            .expect("submit_payload budgeted every request frame against the MTU");

        if progressed {
            self.tstats.virtual_now_us = self.now_us;
            return true;
        }

        // Nothing moved. While a deferred batch executes on real
        // worker threads the virtual clock holds still (execution is
        // instantaneous in virtual time) — the caller should yield and
        // pump again. Otherwise jump to the next scheduled event.
        if self.endpoint.pending_count() > 0 {
            return false;
        }
        let next = self
            .link
            .next_delivery_us(self.node_addr.node)
            .into_iter()
            .chain(self.link.next_delivery_us(self.client_addr.node))
            .chain(self.exchanges.values().map(|ex| ex.retx_at))
            .min();
        if let Some(next) = next {
            if next > self.now_us {
                self.now_us = next;
                self.tstats.virtual_now_us = self.now_us;
                return true;
            }
        }
        false
    }

    /// Drives the window until `token` resolves — the blocking facade
    /// over the windowed core.
    fn await_token(&mut self, token: u64) -> Result<ReplyBody, NodeError> {
        loop {
            let progressed = self.step();
            if let Some(outcome) = self.completed.remove(&token) {
                return outcome;
            }
            if !progressed {
                // Waiting on the node's worker threads.
                std::thread::yield_now();
            }
        }
    }

    /// One blocking confirmable exchange: submit, drive, decode.
    fn exchange(&mut self, op: &NodeOp) -> Result<ReplyBody, NodeError> {
        let token = self.submit_payload(wire::encode_op(op))?;
        self.await_token(token)
    }

    fn expect_unit(&mut self, op: &NodeOp) -> Result<(), NodeError> {
        match self.exchange(op)? {
            ReplyBody::Unit => Ok(()),
            other => Err(unexpected_body(&other)),
        }
    }

    fn issue_ticket(&mut self, kind: TicketKind, parts: Vec<u64>) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.tickets.insert(ticket, PendingTicket { kind, parts });
        ticket
    }
}

fn unexpected_body(body: &ReplyBody) -> NodeError {
    NodeError::Transport(format!("unexpected reply body {body:?}"))
}

impl<S: NodeService> WindowedNode for RemoteNode<S> {
    fn submit_batch(&mut self, hook: Uuid, events: Vec<HookEvent>) -> Result<Ticket, NodeError> {
        let payloads = self.split_batch(hook, events)?;
        let parts = payloads
            .into_iter()
            .map(|p| self.submit_payload(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.issue_ticket(TicketKind::Batch, parts))
    }

    fn submit_stage(
        &mut self,
        uri: &str,
        offset: usize,
        chunk: &[u8],
        restart: bool,
    ) -> Result<Ticket, NodeError> {
        let payload = wire::encode_op(&NodeOp::StageChunk {
            uri: uri.to_owned(),
            offset: offset as u64,
            restart,
            chunk: chunk.to_vec(),
        });
        let token = self.submit_payload(payload)?;
        Ok(self.issue_ticket(TicketKind::Stage, vec![token]))
    }

    fn submit_deploy(&mut self, envelope: &[u8]) -> Result<Ticket, NodeError> {
        let payload = wire::encode_op(&NodeOp::Deploy {
            envelope: envelope.to_vec(),
        });
        let token = self.submit_payload(payload)?;
        Ok(self.issue_ticket(TicketKind::Deploy, vec![token]))
    }

    fn pump(&mut self) -> bool {
        self.step()
    }

    fn take(&mut self, ticket: Ticket) -> Option<Result<NodeReply, NodeError>> {
        let pending = self.tickets.get(&ticket)?;
        if !pending.parts.iter().all(|t| self.completed.contains_key(t)) {
            return None;
        }
        let pending = self.tickets.remove(&ticket)?;
        let mut parts = Vec::with_capacity(pending.parts.len());
        for token in pending.parts {
            parts.push(self.completed.remove(&token).expect("checked above"));
        }
        Some(match pending.kind {
            TicketKind::Batch => {
                let mut out = Vec::new();
                for part in parts {
                    match part {
                        Ok(ReplyBody::Batch(items)) => out.extend(items),
                        Ok(other) => return Some(Err(unexpected_body(&other))),
                        Err(e) => return Some(Err(e)),
                    }
                }
                Ok(NodeReply::Batch(out))
            }
            TicketKind::Stage => match parts.remove(0) {
                Ok(ReplyBody::Unit) => Ok(NodeReply::Staged),
                Ok(other) => Err(unexpected_body(&other)),
                Err(e) => Err(e),
            },
            TicketKind::Deploy => match parts.remove(0) {
                Ok(ReplyBody::Deploy(report)) => Ok(NodeReply::Deploy(report)),
                Ok(other) => Err(unexpected_body(&other)),
                Err(e) => Err(e),
            },
        })
    }

    fn transport_stats(&self) -> TransportStats {
        self.tstats
    }
}

impl<S: NodeService> NodeService for RemoteNode<S> {
    fn register_hook(&mut self, hook: Hook, offer: ContractOffer) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::RegisterHook { hook, offer })
    }

    fn unregister_hook(&mut self, hook: Uuid) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::UnregisterHook { hook })
    }

    fn dispatch(&mut self, hook: Uuid, event: HookEvent) -> Result<HookReport, NodeError> {
        let encoded = wire::encode_op(&NodeOp::Dispatch { hook, event });
        // Refuse up front when the REPLY could not make it back: the
        // node would execute the event but the caller could never
        // learn the outcome, retrying (and re-executing) forever.
        if !self.fits_with_reply(encoded.len(), 1) {
            return Err(NodeError::Transport(
                "event too large for link mtu (reply included)".to_owned(),
            ));
        }
        let token = self.submit_payload(encoded)?;
        match self.await_token(token)? {
            ReplyBody::Report(report) => Ok(report),
            other => Err(unexpected_body(&other)),
        }
    }

    fn dispatch_batch(
        &mut self,
        hook: Uuid,
        events: Vec<HookEvent>,
    ) -> Result<Vec<Result<HookReport, NodeError>>, NodeError> {
        let ticket = self.submit_batch(hook, events)?;
        loop {
            let progressed = self.step();
            if let Some(result) = WindowedNode::take(self, ticket) {
                return match result? {
                    NodeReply::Batch(items) => Ok(items),
                    other => Err(NodeError::Transport(format!(
                        "unexpected windowed reply {other:?}"
                    ))),
                };
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
    }

    fn stage_chunk(
        &mut self,
        uri: &str,
        offset: usize,
        chunk: &[u8],
        restart: bool,
    ) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::StageChunk {
            uri: uri.to_owned(),
            offset: offset as u64,
            restart,
            chunk: chunk.to_vec(),
        })
    }

    fn deploy(&mut self, envelope: &[u8]) -> Result<DeployReport, NodeError> {
        match self.exchange(&NodeOp::Deploy {
            envelope: envelope.to_vec(),
        })? {
            ReplyBody::Deploy(report) => Ok(report),
            other => Err(unexpected_body(&other)),
        }
    }

    fn stats(&mut self) -> Result<NodeStats, NodeError> {
        match self.exchange(&NodeOp::Stats)? {
            ReplyBody::Stats(stats) => Ok(stats),
            other => Err(unexpected_body(&other)),
        }
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot, NodeError> {
        match self.exchange(&NodeOp::Metrics)? {
            ReplyBody::Metrics(snapshot) => Ok(*snapshot),
            other => Err(unexpected_body(&other)),
        }
    }

    fn windowed(&mut self) -> Option<&mut dyn WindowedNode> {
        Some(self)
    }
}
