//! The message-codec [`NodeService`] adapter: the same operations the
//! in-process adapter performs, serialized as CoAP messages over a
//! [`LossyLink`] — loss, reordering and duplication first-class on
//! every node interaction.
//!
//! Two halves share this module:
//!
//! * [`NodeEndpoint`] — the node-side server. Decodes an operation off
//!   a CoAP request, executes it on the wrapped [`NodeService`], and
//!   replies. Its **dedup cache** (request token → cached response) is
//!   what turns at-least-once delivery into exactly-once effect: a
//!   retransmitted or link-duplicated request replays the recorded
//!   response instead of re-executing the operation.
//! * [`RemoteNode`] — the front-tier client. Implements `NodeService`
//!   by encoding each operation, exchanging it confirmably
//!   (retransmission with exponential back-off, RFC 7252 §4.2 style)
//!   and decoding the reply. Each request carries a fresh token — the
//!   retry/dedup token — reused verbatim across its retransmissions.
//!
//! The simulation couples both halves around one seeded link, driving
//! virtual time exactly like [`fc_net::endpoint::CoapClient`]; the
//! codec and dedup discipline are what a real deployment would keep.

use std::collections::VecDeque;

use fc_core::contract::ContractOffer;
use fc_core::engine::HookReport;
use fc_core::hooks::Hook;
use fc_host::{DeployReport, HookEvent, NodeError, NodeService, NodeStats};
use fc_net::coap::{Code, Message};
use fc_net::endpoint::{ACK_TIMEOUT_US, MAX_RETRANSMIT};
use fc_net::link::{Addr, Datagram, LinkConfig, LossyLink};
use fc_suit::Uuid;

use crate::wire::{self, NodeOp, ReplyBody};

/// The CoAP resource path carrying node operations.
pub const NODE_OP_PATH: &str = "fc/op";

/// Default bound on remembered (token → response) pairs.
pub const DEFAULT_DEDUP_CACHE: usize = 128;

/// Default MTU for the front-tier ↔ node leg: a backhaul-class
/// datagram path rather than the 802.15.4 last hop, sized so a
/// sub-batch of reports fits one datagram.
pub const FLEET_MTU: usize = 4096;

/// Headroom reserved for CoAP framing around an encoded operation
/// (4-byte header, 8-byte token, `fc/op` path options, payload
/// marker) when checking a datagram against the link MTU.
const FRAME_OVERHEAD: usize = 32;

/// Reply-size headroom per dispatched event beyond the echoed request
/// payload: result, op counts, cycles, region framing. A reply echoes
/// the event's context and regions back (≈ the request payload) plus
/// this much bookkeeping, so event-carrying requests are budgeted at
/// `2 × request + REPLY_PER_EVENT × events + REPLY_BASE` against the
/// MTU — conservatively, since a reply the node cannot send is an
/// operation whose outcome the caller can never learn.
const REPLY_PER_EVENT: usize = 192;

/// Fixed reply-size headroom (report envelope, combined result).
const REPLY_BASE: usize = 128;

/// Node-side server: executes decoded operations with exactly-once
/// effect (module docs).
#[derive(Debug)]
pub struct NodeEndpoint<S> {
    inner: S,
    seen: VecDeque<(Vec<u8>, Message)>,
    cache: usize,
    served: u64,
    deduped: u64,
}

impl<S: NodeService> NodeEndpoint<S> {
    /// Wraps a node service with the default dedup cache.
    pub fn new(inner: S) -> Self {
        NodeEndpoint {
            inner,
            seen: VecDeque::new(),
            cache: DEFAULT_DEDUP_CACHE,
            served: 0,
            deduped: 0,
        }
    }

    /// Overrides the dedup-cache bound (clamped to at least 1). The
    /// cache must cover the client's retransmission window; with the
    /// front tier's one-exchange-at-a-time discipline even a handful
    /// suffices.
    pub fn with_cache(mut self, entries: usize) -> Self {
        self.cache = entries.max(1);
        self
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped service (tests, provisioning).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Operations actually executed (dedup replays excluded).
    pub fn served_count(&self) -> u64 {
        self.served
    }

    /// Requests answered from the dedup cache without re-executing.
    pub fn deduped_count(&self) -> u64 {
        self.deduped
    }

    /// Serves one decoded CoAP request. Unknown paths get 4.04; an
    /// undecodable operation gets 4.00; everything else returns 2.05
    /// with the encoded reply ([`wire::encode_reply`]) as payload —
    /// node-side rejections ride *inside* that payload, so the
    /// transport cannot confuse them with its own failures.
    pub fn handle(&mut self, request: &Message) -> Message {
        if request.path() != NODE_OP_PATH {
            return Message::response_to(request, Code::NotFound);
        }
        if let Some((_, cached)) = self.seen.iter().find(|(t, _)| *t == request.token) {
            self.deduped += 1;
            let mut replay = cached.clone();
            // The replay answers THIS transmission.
            replay.message_id = request.message_id;
            return replay;
        }
        let op = match wire::decode_op(&request.payload) {
            Ok(op) => op,
            Err(_) => return Message::response_to(request, Code::BadRequest),
        };
        self.served += 1;
        let reply = self.execute(op);
        let mut resp = Message::response_to(request, Code::Content);
        resp.payload = wire::encode_reply(&reply);
        if self.seen.len() >= self.cache {
            self.seen.pop_front();
        }
        self.seen.push_back((request.token.clone(), resp.clone()));
        resp
    }

    fn execute(&mut self, op: NodeOp) -> Result<ReplyBody, NodeError> {
        match op {
            NodeOp::RegisterHook { hook, offer } => self
                .inner
                .register_hook(hook, offer)
                .map(|()| ReplyBody::Unit),
            NodeOp::UnregisterHook { hook } => {
                self.inner.unregister_hook(hook).map(|()| ReplyBody::Unit)
            }
            NodeOp::Dispatch { hook, event } => {
                self.inner.dispatch(hook, event).map(ReplyBody::Report)
            }
            NodeOp::Batch { hook, events } => self
                .inner
                .dispatch_batch(hook, events)
                .map(ReplyBody::Batch),
            NodeOp::StageChunk {
                uri,
                offset,
                restart,
                chunk,
            } => self
                .inner
                .stage_chunk(&uri, offset as usize, &chunk, restart)
                .map(|()| ReplyBody::Unit),
            NodeOp::Deploy { envelope } => self.inner.deploy(&envelope).map(ReplyBody::Deploy),
            NodeOp::Stats => self.inner.stats().map(ReplyBody::Stats),
        }
    }
}

/// Tuning for a [`RemoteNode`]'s transport.
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// The simulated link between the front tier and the node.
    pub link: LinkConfig,
    /// Events per wire message on the batch path; larger batches are
    /// split transparently (exactly-once still holds per sub-batch via
    /// its token).
    pub max_events_per_message: usize,
    /// Initial retransmission timeout in microseconds.
    pub ack_timeout_us: u64,
    /// Retransmissions before the exchange reports
    /// [`NodeError::Timeout`].
    pub max_retransmit: u32,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            link: LinkConfig {
                mtu: FLEET_MTU,
                ..LinkConfig::default()
            },
            max_events_per_message: 8,
            ack_timeout_us: ACK_TIMEOUT_US,
            max_retransmit: MAX_RETRANSMIT,
        }
    }
}

/// Front-tier proxy for one node across the lossy link (module docs).
/// Implements [`NodeService`], so a fleet cannot tell it from an
/// in-process node — except through [`NodeError::Timeout`].
#[derive(Debug)]
pub struct RemoteNode<S> {
    endpoint: NodeEndpoint<S>,
    link: LossyLink,
    client_addr: Addr,
    node_addr: Addr,
    now_us: u64,
    next_token: u64,
    next_mid: u16,
    config: RemoteConfig,
}

impl<S: NodeService> RemoteNode<S> {
    /// Couples a node service to the front tier over a fresh link.
    pub fn new(service: S, config: RemoteConfig) -> Self {
        RemoteNode {
            endpoint: NodeEndpoint::new(service),
            link: LossyLink::new(config.link),
            client_addr: Addr::new(1, 40_000),
            node_addr: Addr::new(2, 5683),
            now_us: 0,
            next_token: 1,
            next_mid: 1,
            config,
        }
    }

    /// The node-side endpoint (dedup counters, wrapped service).
    pub fn endpoint(&self) -> &NodeEndpoint<S> {
        &self.endpoint
    }

    /// Mutable access to the node-side endpoint.
    pub fn endpoint_mut(&mut self) -> &mut NodeEndpoint<S> {
        &mut self.endpoint
    }

    /// The link statistics (sent/dropped/duplicated).
    pub fn link(&self) -> &LossyLink {
        &self.link
    }

    /// Current virtual time on this node's link, microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// One confirmable exchange: send, retransmit with back-off, match
    /// the response by token, decode the reply payload.
    fn exchange(&mut self, op: &NodeOp) -> Result<Result<ReplyBody, NodeError>, NodeError> {
        self.exchange_encoded(wire::encode_op(op))
    }

    /// Whether an event-carrying request of `encoded_len` bytes fits
    /// the link both ways: request with framing out, and the reply —
    /// which echoes the events' payload back plus per-event
    /// bookkeeping — on the return leg.
    fn fits_with_reply(&self, encoded_len: usize, events: usize) -> bool {
        encoded_len
            .saturating_mul(2)
            .saturating_add(REPLY_PER_EVENT.saturating_mul(events))
            .saturating_add(REPLY_BASE + FRAME_OVERHEAD)
            <= self.config.link.mtu
    }

    /// [`RemoteNode::exchange`] over an already-encoded operation —
    /// callers that must size-check the encoding (the batch splitter)
    /// pass it through so it is serialized exactly once.
    fn exchange_encoded(
        &mut self,
        payload: Vec<u8>,
    ) -> Result<Result<ReplyBody, NodeError>, NodeError> {
        // The check covers the framed datagram, not just the payload.
        if payload.len() + FRAME_OVERHEAD > self.config.link.mtu {
            return Err(NodeError::Transport(format!(
                "operation of {} bytes exceeds link mtu {} (incl. framing)",
                payload.len(),
                self.config.link.mtu
            )));
        }
        let token = self.next_token.to_be_bytes().to_vec();
        self.next_token += 1;
        let mid = self.next_mid;
        self.next_mid = self.next_mid.wrapping_add(1);
        let mut request = Message::request(Code::Post, mid, &token);
        request.set_path(NODE_OP_PATH);
        request.payload = payload;
        let encoded = request.encode();

        let mut timeout = self.config.ack_timeout_us;
        for _attempt in 0..=self.config.max_retransmit {
            self.link
                .send(
                    self.now_us,
                    Datagram {
                        src: self.client_addr,
                        dst: self.node_addr,
                        payload: encoded.clone(),
                    },
                )
                .map_err(|e| NodeError::Transport(e.to_string()))?;
            let deadline = self.now_us + timeout;
            while self.now_us < deadline {
                let step = self
                    .link
                    .next_delivery_us(self.node_addr.node)
                    .into_iter()
                    .chain(self.link.next_delivery_us(self.client_addr.node))
                    .min()
                    .unwrap_or(deadline)
                    .max(self.now_us);
                if step >= deadline {
                    self.now_us = deadline;
                    break;
                }
                self.now_us = step;
                while let Some(d) = self.link.poll(self.node_addr.node, self.now_us) {
                    if let Ok(req) = Message::decode(&d.payload) {
                        let resp = self.endpoint.handle(&req);
                        self.link
                            .send(
                                self.now_us,
                                Datagram {
                                    src: self.node_addr,
                                    dst: d.src,
                                    payload: resp.encode(),
                                },
                            )
                            .map_err(|e| NodeError::Transport(e.to_string()))?;
                    }
                }
                while let Some(d) = self.link.poll(self.client_addr.node, self.now_us) {
                    if let Ok(resp) = Message::decode(&d.payload) {
                        if resp.token == token {
                            if resp.code != Code::Content {
                                return Err(NodeError::Transport(format!(
                                    "node answered {:?}",
                                    resp.code
                                )));
                            }
                            return wire::decode_reply(&resp.payload).map_err(NodeError::from);
                        }
                    }
                }
            }
            timeout *= 2;
        }
        Err(NodeError::Timeout)
    }

    fn expect_unit(&mut self, op: &NodeOp) -> Result<(), NodeError> {
        match self.exchange(op)?? {
            ReplyBody::Unit => Ok(()),
            other => Err(NodeError::Transport(format!(
                "unexpected reply body {other:?}"
            ))),
        }
    }
}

impl<S: NodeService> NodeService for RemoteNode<S> {
    fn register_hook(&mut self, hook: Hook, offer: ContractOffer) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::RegisterHook { hook, offer })
    }

    fn unregister_hook(&mut self, hook: Uuid) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::UnregisterHook { hook })
    }

    fn dispatch(&mut self, hook: Uuid, event: HookEvent) -> Result<HookReport, NodeError> {
        let encoded = wire::encode_op(&NodeOp::Dispatch { hook, event });
        // Refuse up front when the REPLY could not make it back: the
        // node would execute the event but the caller could never
        // learn the outcome, retrying (and re-executing) forever.
        if !self.fits_with_reply(encoded.len(), 1) {
            return Err(NodeError::Transport(
                "event too large for link mtu (reply included)".to_owned(),
            ));
        }
        match self.exchange_encoded(encoded)?? {
            ReplyBody::Report(report) => Ok(report),
            other => Err(NodeError::Transport(format!(
                "unexpected reply body {other:?}"
            ))),
        }
    }

    fn dispatch_batch(
        &mut self,
        hook: Uuid,
        events: Vec<HookEvent>,
    ) -> Result<Vec<Result<HookReport, NodeError>>, NodeError> {
        let mut out = Vec::with_capacity(events.len());
        let per_message = self.config.max_events_per_message.max(1);
        let mut queue: VecDeque<Vec<HookEvent>> = events
            .chunks(per_message)
            .map(<[HookEvent]>::to_vec)
            .collect();
        if queue.is_empty() {
            queue.push_back(Vec::new());
        }
        while let Some(chunk) = queue.pop_front() {
            // A sub-batch splits in two while either its own framed
            // datagram or its projected reply would not fit the MTU; a
            // single oversized event is a hard transport error. The
            // encoding is produced once and shipped as-is.
            let events_in_chunk = chunk.len();
            let op = NodeOp::Batch {
                hook,
                events: chunk,
            };
            let encoded = wire::encode_op(&op);
            if !self.fits_with_reply(encoded.len(), events_in_chunk) {
                let NodeOp::Batch {
                    events: mut chunk, ..
                } = op
                else {
                    unreachable!("op was built as a batch above");
                };
                if chunk.len() <= 1 {
                    return Err(NodeError::Transport(
                        "single event exceeds link mtu".to_owned(),
                    ));
                }
                let tail = chunk.split_off(chunk.len() / 2);
                queue.push_front(tail);
                queue.push_front(chunk);
                continue;
            }
            match self.exchange_encoded(encoded)?? {
                ReplyBody::Batch(items) => out.extend(items),
                other => {
                    return Err(NodeError::Transport(format!(
                        "unexpected reply body {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    fn stage_chunk(
        &mut self,
        uri: &str,
        offset: usize,
        chunk: &[u8],
        restart: bool,
    ) -> Result<(), NodeError> {
        self.expect_unit(&NodeOp::StageChunk {
            uri: uri.to_owned(),
            offset: offset as u64,
            restart,
            chunk: chunk.to_vec(),
        })
    }

    fn deploy(&mut self, envelope: &[u8]) -> Result<DeployReport, NodeError> {
        match self.exchange(&NodeOp::Deploy {
            envelope: envelope.to_vec(),
        })?? {
            ReplyBody::Deploy(report) => Ok(report),
            other => Err(NodeError::Transport(format!(
                "unexpected reply body {other:?}"
            ))),
        }
    }

    fn stats(&mut self) -> Result<NodeStats, NodeError> {
        match self.exchange(&NodeOp::Stats)?? {
            ReplyBody::Stats(stats) => Ok(stats),
            other => Err(NodeError::Transport(format!(
                "unexpected reply body {other:?}"
            ))),
        }
    }
}
