//! The consistent-hash ring assigning hooks to nodes.
//!
//! Every hook UUID hashes to a point on a 64-bit ring; each node
//! contributes `vnodes` virtual points, and a hook belongs to the node
//! owning the first point clockwise from the hook's hash. Membership
//! changes therefore move only the hooks whose arc changed owner —
//! O(hooks/nodes) per join/leave instead of a full reshuffle — which
//! is what keeps fleet hook handoff cheap.
//!
//! The ring is **explicitly rebuilt** on membership change
//! ([`HashRing::rebuild`]); lookups between rebuilds are pure reads.

use fc_suit::sha256::sha256;
use fc_suit::Uuid;

/// Default virtual points per node — enough to keep the expected
/// per-node share within a few percent of uniform at small fleets.
pub const DEFAULT_VNODES: usize = 64;

fn point_hash(node: usize, replica: usize) -> u64 {
    let mut input = [0u8; 26];
    input[..10].copy_from_slice(b"fleet-ring");
    input[10..18].copy_from_slice(&(node as u64).to_be_bytes());
    input[18..26].copy_from_slice(&(replica as u64).to_be_bytes());
    u64::from_be_bytes(sha256(&input)[..8].try_into().expect("8 bytes"))
}

fn key_hash(key: Uuid) -> u64 {
    let mut input = [0u8; 25];
    input[..9].copy_from_slice(b"fleet-key");
    input[9..25].copy_from_slice(key.as_bytes());
    u64::from_be_bytes(sha256(&input)[..8].try_into().expect("8 bytes"))
}

/// A consistent-hash ring over node ids (module docs).
///
/// # Examples
///
/// ```
/// use fc_fleet::ring::HashRing;
/// use fc_suit::Uuid;
///
/// let mut ring = HashRing::new(64);
/// ring.rebuild(&[0, 1, 2]);
/// let hook = Uuid::from_name("hooks", "t0");
/// let owner = ring.owner(hook).unwrap();
/// // Removing an unrelated node leaves this hook's owner unchanged.
/// let survivors: Vec<usize> = (0..3).filter(|n| *n != (owner + 1) % 3).collect();
/// ring.rebuild(&survivors);
/// assert_eq!(ring.owner(hook), Some(owner));
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Creates an empty ring with `vnodes` virtual points per node
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            points: Vec::new(),
        }
    }

    /// Rebuilds the ring over the given node ids — the explicit
    /// membership-change step. Duplicated ids are collapsed.
    pub fn rebuild(&mut self, nodes: &[usize]) {
        self.points.clear();
        let mut seen = std::collections::HashSet::new();
        for &node in nodes {
            if !seen.insert(node) {
                continue;
            }
            for replica in 0..self.vnodes {
                self.points.push((point_hash(node, replica), node));
            }
        }
        // Ties (vanishingly rare) resolve to the smaller node id,
        // deterministically.
        self.points.sort_unstable();
    }

    /// The node owning a key: the first virtual point clockwise from
    /// the key's hash. `None` on an empty ring.
    pub fn owner(&self, key: Uuid) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = key_hash(key);
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, node) = self.points[idx % self.points.len()];
        Some(node)
    }

    /// Number of distinct member nodes.
    pub fn node_count(&self) -> usize {
        self.points.len() / self.vnodes.max(1)
    }

    /// True when no node is a member.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Uuid> {
        (0..n)
            .map(|i| Uuid::from_name("ring-test", &format!("hook-{i}")))
            .collect()
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let mut a = HashRing::new(64);
        let mut b = HashRing::new(64);
        a.rebuild(&[0, 1, 2, 3]);
        b.rebuild(&[3, 2, 1, 0]);
        for k in keys(200) {
            assert_eq!(a.owner(k), b.owner(k), "order of members is irrelevant");
            assert!(a.owner(k).unwrap() < 4);
        }
        assert_eq!(a.node_count(), 4);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(Uuid::nil()), None);
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let mut ring = HashRing::new(64);
        ring.rebuild(&[0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for k in keys(2000) {
            counts[ring.owner(k).unwrap()] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (250..=750).contains(&c),
                "node {node} owns {c} of 2000 keys"
            );
        }
    }

    #[test]
    fn join_moves_only_a_bounded_fraction() {
        let mut ring = HashRing::new(64);
        ring.rebuild(&[0, 1, 2]);
        let ks = keys(1000);
        let before: Vec<_> = ks.iter().map(|k| ring.owner(*k).unwrap()).collect();
        ring.rebuild(&[0, 1, 2, 3]);
        let moved = ks
            .iter()
            .zip(&before)
            .filter(|(k, old)| ring.owner(**k).unwrap() != **old)
            .count();
        // Expected ~1/4; anything near a full reshuffle is a bug.
        assert!((100..=450).contains(&moved), "moved {moved} of 1000");
        // Every moved key moved TO the new node.
        for (k, old) in ks.iter().zip(&before) {
            let now = ring.owner(*k).unwrap();
            assert!(now == *old || now == 3, "key moved between old nodes");
        }
    }

    #[test]
    fn leave_reassigns_only_the_leavers_keys() {
        let mut ring = HashRing::new(64);
        ring.rebuild(&[0, 1, 2, 3]);
        let ks = keys(1000);
        let before: Vec<_> = ks.iter().map(|k| ring.owner(*k).unwrap()).collect();
        ring.rebuild(&[0, 1, 3]);
        for (k, old) in ks.iter().zip(&before) {
            let now = ring.owner(*k).unwrap();
            if *old != 2 {
                assert_eq!(now, *old, "a surviving node's key must not move");
            } else {
                assert_ne!(now, 2);
            }
        }
    }

    #[test]
    fn duplicate_ids_collapse() {
        let mut ring = HashRing::new(16);
        ring.rebuild(&[5, 5, 5]);
        assert_eq!(ring.node_count(), 1);
        assert_eq!(ring.owner(Uuid::nil()), Some(5));
    }
}
