//! The node-operation wire codec: every [`fc_host::NodeService`]
//! operation and result as a compact binary payload inside a CoAP
//! message.
//!
//! The codec is **lossless** for everything semantics depend on —
//! [`HookReport`]s round-trip bit-identically (per-container results,
//! op counts, cycles, region contents, faults), which is what lets the
//! differential suite prove that a node driven over the link behaves
//! exactly like one called in-process. Errors travel as a discriminant
//! plus their fields; node-side verdicts are carried as text, matching
//! the in-process adapter's rendering.
//!
//! Framing is length-prefixed little-endian; strings are UTF-8 byte
//! runs. Decoding is total: truncated or mistagged input yields a
//! [`WireError`], never a panic.

use fc_core::contract::ContractOffer;
use fc_core::engine::{ExecutionReport, HookReport, HostRegion};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_host::{DeployReport, HookEvent, MetricsSnapshot, NodeError, NodeStats};
use fc_rbpf::error::VmError;
use fc_rbpf::vm::OpCounts;
use fc_suit::Uuid;

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// An enum tag byte was outside its legal range.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire payload"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadString => write!(f, "non-utf8 wire string"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for NodeError {
    fn from(e: WireError) -> Self {
        NodeError::Transport(e.to_string())
    }
}

/// One [`fc_host::NodeService`] operation, as shipped to a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOp {
    /// [`fc_host::NodeService::register_hook`].
    RegisterHook {
        /// The hook descriptor.
        hook: Hook,
        /// The launchpad's helper offer.
        offer: ContractOffer,
    },
    /// [`fc_host::NodeService::unregister_hook`].
    UnregisterHook {
        /// The hook to evacuate.
        hook: Uuid,
    },
    /// [`fc_host::NodeService::dispatch`].
    Dispatch {
        /// Target hook.
        hook: Uuid,
        /// The event.
        event: HookEvent,
    },
    /// [`fc_host::NodeService::dispatch_batch`].
    Batch {
        /// Target hook.
        hook: Uuid,
        /// The events, in offer order.
        events: Vec<HookEvent>,
    },
    /// [`fc_host::NodeService::stage_chunk`].
    StageChunk {
        /// Payload URI.
        uri: String,
        /// Byte offset of this chunk.
        offset: u64,
        /// Whether this chunk restarts the transfer (Block1 num 0).
        restart: bool,
        /// The chunk bytes.
        chunk: Vec<u8>,
    },
    /// [`fc_host::NodeService::deploy`].
    Deploy {
        /// The signed SUIT manifest envelope.
        envelope: Vec<u8>,
    },
    /// [`fc_host::NodeService::stats`].
    Stats,
    /// [`fc_host::NodeService::metrics`].
    Metrics,
}

/// The body of a successful reply; which variant is legal is implied
/// by the operation the requester sent.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Register/unregister/stage succeeded.
    Unit,
    /// A dispatch's report.
    Report(HookReport),
    /// A batch's per-event outcomes, in offer order.
    Batch(Vec<Result<HookReport, NodeError>>),
    /// A deploy's report.
    Deploy(DeployReport),
    /// A stats snapshot.
    Stats(NodeStats),
    /// A full telemetry snapshot (boxed: it dwarfs every other
    /// variant).
    Metrics(Box<MetricsSnapshot>),
}

// ---------------------------------------------------------------- put

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

fn put_uuid(buf: &mut Vec<u8>, v: Uuid) {
    buf.extend_from_slice(v.as_bytes());
}

// ---------------------------------------------------------------- get

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadString)
    }

    fn uuid(&mut self) -> Result<Uuid, WireError> {
        Ok(Uuid::from_slice(self.take(16)?).expect("16 bytes"))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

// ------------------------------------------------------- leaf structs

fn put_event(buf: &mut Vec<u8>, e: &HookEvent) {
    put_bytes(buf, &e.ctx);
    put_u32(buf, e.extra.len() as u32);
    for region in &e.extra {
        put_str(buf, &region.name);
        put_bytes(buf, &region.data);
        put_bool(buf, region.writable);
    }
}

fn get_event(r: &mut Reader) -> Result<HookEvent, WireError> {
    let ctx = r.bytes()?;
    let n = r.u32()? as usize;
    let mut extra = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = r.string()?;
        let data = r.bytes()?;
        let writable = r.bool()?;
        extra.push(HostRegion {
            name,
            data,
            writable,
        });
    }
    Ok(HookEvent { ctx, extra })
}

fn put_vm_error(buf: &mut Vec<u8>, e: &VmError) {
    match e {
        VmError::InvalidMemoryAccess { addr, len, write } => {
            put_u8(buf, 0);
            put_u64(buf, *addr);
            put_u64(buf, *len as u64);
            put_bool(buf, *write);
        }
        VmError::DivisionByZero { pc } => {
            put_u8(buf, 1);
            put_u64(buf, *pc as u64);
        }
        VmError::UnknownOpcode { pc, opcode } => {
            put_u8(buf, 2);
            put_u64(buf, *pc as u64);
            put_u8(buf, *opcode);
        }
        VmError::UnknownHelper { id } => {
            put_u8(buf, 3);
            put_u32(buf, *id);
        }
        VmError::HelperDenied { id } => {
            put_u8(buf, 4);
            put_u32(buf, *id);
        }
        VmError::HelperFault { id, reason } => {
            put_u8(buf, 5);
            put_u32(buf, *id);
            put_str(buf, reason);
        }
        VmError::InstructionBudgetExceeded { budget } => {
            put_u8(buf, 6);
            put_u32(buf, *budget);
        }
        VmError::BranchBudgetExceeded { budget } => {
            put_u8(buf, 7);
            put_u32(buf, *budget);
        }
        VmError::JumpOutOfBounds { pc, target } => {
            put_u8(buf, 8);
            put_u64(buf, *pc as u64);
            put_u64(buf, *target as u64);
        }
        VmError::PcOutOfBounds { pc } => {
            put_u8(buf, 9);
            put_u64(buf, *pc as u64);
        }
        VmError::TruncatedWideInstruction { pc } => {
            put_u8(buf, 10);
            put_u64(buf, *pc as u64);
        }
        VmError::WriteToReadOnlyRegister { pc } => {
            put_u8(buf, 11);
            put_u64(buf, *pc as u64);
        }
        VmError::InvalidShift { pc } => {
            put_u8(buf, 12);
            put_u64(buf, *pc as u64);
        }
    }
}

fn get_vm_error(r: &mut Reader) -> Result<VmError, WireError> {
    Ok(match r.u8()? {
        0 => VmError::InvalidMemoryAccess {
            addr: r.u64()?,
            len: r.u64()? as usize,
            write: r.bool()?,
        },
        1 => VmError::DivisionByZero {
            pc: r.u64()? as usize,
        },
        2 => VmError::UnknownOpcode {
            pc: r.u64()? as usize,
            opcode: r.u8()?,
        },
        3 => VmError::UnknownHelper { id: r.u32()? },
        4 => VmError::HelperDenied { id: r.u32()? },
        5 => VmError::HelperFault {
            id: r.u32()?,
            reason: r.string()?,
        },
        6 => VmError::InstructionBudgetExceeded { budget: r.u32()? },
        7 => VmError::BranchBudgetExceeded { budget: r.u32()? },
        8 => VmError::JumpOutOfBounds {
            pc: r.u64()? as usize,
            target: r.u64()? as i64,
        },
        9 => VmError::PcOutOfBounds {
            pc: r.u64()? as usize,
        },
        10 => VmError::TruncatedWideInstruction {
            pc: r.u64()? as usize,
        },
        11 => VmError::WriteToReadOnlyRegister {
            pc: r.u64()? as usize,
        },
        12 => VmError::InvalidShift {
            pc: r.u64()? as usize,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_counts(buf: &mut Vec<u8>, c: &OpCounts) {
    for v in [
        c.alu32,
        c.alu64,
        c.mul,
        c.div,
        c.load,
        c.store,
        c.branch_taken,
        c.branch_not_taken,
        c.helper_call,
        c.wide_load,
        c.exit,
    ] {
        put_u64(buf, v);
    }
}

fn get_counts(r: &mut Reader) -> Result<OpCounts, WireError> {
    Ok(OpCounts {
        alu32: r.u64()?,
        alu64: r.u64()?,
        mul: r.u64()?,
        div: r.u64()?,
        load: r.u64()?,
        store: r.u64()?,
        branch_taken: r.u64()?,
        branch_not_taken: r.u64()?,
        helper_call: r.u64()?,
        wide_load: r.u64()?,
        exit: r.u64()?,
    })
}

fn put_execution(buf: &mut Vec<u8>, e: &ExecutionReport) {
    put_u32(buf, e.container);
    match &e.result {
        Ok(v) => {
            put_u8(buf, 0);
            put_u64(buf, *v);
        }
        Err(err) => {
            put_u8(buf, 1);
            put_vm_error(buf, err);
        }
    }
    put_counts(buf, &e.counts);
    put_u64(buf, e.vm_cycles);
    put_u64(buf, e.helper_cycles);
    put_bytes(buf, &e.ctx_back);
    put_u32(buf, e.regions_back.len() as u32);
    for (name, data) in &e.regions_back {
        put_str(buf, name);
        put_bytes(buf, data);
    }
}

fn get_execution(r: &mut Reader) -> Result<ExecutionReport, WireError> {
    let container = r.u32()?;
    let result = match r.u8()? {
        0 => Ok(r.u64()?),
        1 => Err(get_vm_error(r)?),
        t => return Err(WireError::BadTag(t)),
    };
    let counts = get_counts(r)?;
    let vm_cycles = r.u64()?;
    let helper_cycles = r.u64()?;
    let ctx_back = r.bytes()?;
    let n = r.u32()? as usize;
    let mut regions_back = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = r.string()?;
        let data = r.bytes()?;
        regions_back.push((name, data));
    }
    Ok(ExecutionReport {
        container,
        result,
        counts,
        vm_cycles,
        helper_cycles,
        ctx_back,
        regions_back,
    })
}

fn put_report(buf: &mut Vec<u8>, report: &HookReport) {
    match report.combined {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
    put_u64(buf, report.cycles);
    put_u32(buf, report.executions.len() as u32);
    for e in &report.executions {
        put_execution(buf, e);
    }
}

fn get_report(r: &mut Reader) -> Result<HookReport, WireError> {
    let combined = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        t => return Err(WireError::BadTag(t)),
    };
    let cycles = r.u64()?;
    let n = r.u32()? as usize;
    let mut executions = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        executions.push(get_execution(r)?);
    }
    Ok(HookReport {
        executions,
        combined,
        cycles,
    })
}

fn put_node_error(buf: &mut Vec<u8>, e: &NodeError) {
    match e {
        NodeError::UnknownHook(u) => {
            put_u8(buf, 0);
            put_uuid(buf, *u);
        }
        NodeError::Shed => put_u8(buf, 1),
        NodeError::Rejected(reason) => {
            put_u8(buf, 2);
            put_str(buf, reason);
        }
        NodeError::Timeout => put_u8(buf, 3),
        NodeError::Transport(reason) => {
            put_u8(buf, 4);
            put_str(buf, reason);
        }
    }
}

fn get_node_error(r: &mut Reader) -> Result<NodeError, WireError> {
    Ok(match r.u8()? {
        0 => NodeError::UnknownHook(r.uuid()?),
        1 => NodeError::Shed,
        2 => NodeError::Rejected(r.string()?),
        3 => NodeError::Timeout,
        4 => NodeError::Transport(r.string()?),
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_deploy_report(buf: &mut Vec<u8>, d: &DeployReport) {
    put_u32(buf, d.container);
    put_uuid(buf, d.component);
    put_u64(buf, d.shard as u64);
    put_u64(buf, d.sequence);
    put_bool(buf, d.attached);
    match d.replaced {
        Some(old) => {
            put_u8(buf, 1);
            put_u32(buf, old);
        }
        None => put_u8(buf, 0),
    }
}

fn get_deploy_report(r: &mut Reader) -> Result<DeployReport, WireError> {
    let container = r.u32()?;
    let component = r.uuid()?;
    let shard = r.u64()? as usize;
    let sequence = r.u64()?;
    let attached = r.bool()?;
    let replaced = match r.u8()? {
        0 => None,
        1 => Some(r.u32()?),
        t => return Err(WireError::BadTag(t)),
    };
    Ok(DeployReport {
        container,
        component,
        shard,
        sequence,
        attached,
        replaced,
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &NodeStats) {
    for v in [
        s.dispatched,
        s.shed,
        s.deploys_accepted,
        s.deploys_rejected,
        s.hooks,
        s.p50_ns,
        s.p99_ns,
        s.max_shard_busy_cycles,
    ] {
        put_u64(buf, v);
    }
}

fn get_stats(r: &mut Reader) -> Result<NodeStats, WireError> {
    Ok(NodeStats {
        dispatched: r.u64()?,
        shed: r.u64()?,
        deploys_accepted: r.u64()?,
        deploys_rejected: r.u64()?,
        hooks: r.u64()?,
        p50_ns: r.u64()?,
        p99_ns: r.u64()?,
        max_shard_busy_cycles: r.u64()?,
    })
}

fn hook_kind_tag(kind: HookKind) -> u8 {
    match kind {
        HookKind::SchedSwitch => 0,
        HookKind::Timer => 1,
        HookKind::CoapRequest => 2,
        HookKind::PacketRx => 3,
        HookKind::Custom => 4,
    }
}

fn hook_kind_from(tag: u8) -> Result<HookKind, WireError> {
    Ok(match tag {
        0 => HookKind::SchedSwitch,
        1 => HookKind::Timer,
        2 => HookKind::CoapRequest,
        3 => HookKind::PacketRx,
        4 => HookKind::Custom,
        t => return Err(WireError::BadTag(t)),
    })
}

fn hook_policy_tag(policy: HookPolicy) -> u8 {
    match policy {
        HookPolicy::First => 0,
        HookPolicy::Last => 1,
        HookPolicy::Any => 2,
        HookPolicy::Sum => 3,
    }
}

fn hook_policy_from(tag: u8) -> Result<HookPolicy, WireError> {
    Ok(match tag {
        0 => HookPolicy::First,
        1 => HookPolicy::Last,
        2 => HookPolicy::Any,
        3 => HookPolicy::Sum,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_hook(buf: &mut Vec<u8>, hook: &Hook) {
    put_uuid(buf, hook.id);
    put_str(buf, &hook.name);
    put_u8(buf, hook_kind_tag(hook.kind));
    put_u8(buf, hook_policy_tag(hook.policy));
}

fn get_hook(r: &mut Reader) -> Result<Hook, WireError> {
    let id = r.uuid()?;
    let name = r.string()?;
    let kind = hook_kind_from(r.u8()?)?;
    let policy = hook_policy_from(r.u8()?)?;
    Ok(Hook {
        id,
        name,
        kind,
        policy,
    })
}

fn put_offer(buf: &mut Vec<u8>, offer: &ContractOffer) {
    let mut helpers: Vec<u32> = offer.helpers.iter().copied().collect();
    helpers.sort_unstable();
    put_u32(buf, helpers.len() as u32);
    for id in helpers {
        put_u32(buf, id);
    }
    put_u64(buf, offer.max_extra_stack as u64);
}

fn get_offer(r: &mut Reader) -> Result<ContractOffer, WireError> {
    let n = r.u32()? as usize;
    let mut helpers = std::collections::HashSet::with_capacity(n.min(256));
    for _ in 0..n {
        helpers.insert(r.u32()?);
    }
    let max_extra_stack = r.u64()? as usize;
    Ok(ContractOffer {
        helpers,
        max_extra_stack,
    })
}

// ------------------------------------------------------------ top-level

/// Encodes an operation for the wire.
pub fn encode_op(op: &NodeOp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match op {
        NodeOp::RegisterHook { hook, offer } => {
            put_u8(&mut buf, 0);
            put_hook(&mut buf, hook);
            put_offer(&mut buf, offer);
        }
        NodeOp::UnregisterHook { hook } => {
            put_u8(&mut buf, 1);
            put_uuid(&mut buf, *hook);
        }
        NodeOp::Dispatch { hook, event } => {
            put_u8(&mut buf, 2);
            put_uuid(&mut buf, *hook);
            put_event(&mut buf, event);
        }
        NodeOp::Batch { hook, events } => {
            put_u8(&mut buf, 3);
            put_uuid(&mut buf, *hook);
            put_u32(&mut buf, events.len() as u32);
            for e in events {
                put_event(&mut buf, e);
            }
        }
        NodeOp::StageChunk {
            uri,
            offset,
            restart,
            chunk,
        } => {
            put_u8(&mut buf, 4);
            put_str(&mut buf, uri);
            put_u64(&mut buf, *offset);
            put_bool(&mut buf, *restart);
            put_bytes(&mut buf, chunk);
        }
        NodeOp::Deploy { envelope } => {
            put_u8(&mut buf, 5);
            put_bytes(&mut buf, envelope);
        }
        NodeOp::Stats => put_u8(&mut buf, 6),
        NodeOp::Metrics => put_u8(&mut buf, 7),
    }
    buf
}

/// Decodes an operation off the wire.
///
/// # Errors
///
/// [`WireError`] on truncated or mistagged input.
pub fn decode_op(bytes: &[u8]) -> Result<NodeOp, WireError> {
    let mut r = Reader::new(bytes);
    let op = match r.u8()? {
        0 => NodeOp::RegisterHook {
            hook: get_hook(&mut r)?,
            offer: get_offer(&mut r)?,
        },
        1 => NodeOp::UnregisterHook { hook: r.uuid()? },
        2 => NodeOp::Dispatch {
            hook: r.uuid()?,
            event: get_event(&mut r)?,
        },
        3 => {
            let hook = r.uuid()?;
            let n = r.u32()? as usize;
            let mut events = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                events.push(get_event(&mut r)?);
            }
            NodeOp::Batch { hook, events }
        }
        4 => NodeOp::StageChunk {
            uri: r.string()?,
            offset: r.u64()?,
            restart: r.bool()?,
            chunk: r.bytes()?,
        },
        5 => NodeOp::Deploy {
            envelope: r.bytes()?,
        },
        6 => NodeOp::Stats,
        7 => NodeOp::Metrics,
        t => return Err(WireError::BadTag(t)),
    };
    r.done()?;
    Ok(op)
}

/// Encodes an operation outcome for the wire.
pub fn encode_reply(reply: &Result<ReplyBody, NodeError>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match reply {
        Err(e) => {
            put_u8(&mut buf, 0);
            put_node_error(&mut buf, e);
        }
        Ok(body) => {
            put_u8(&mut buf, 1);
            match body {
                ReplyBody::Unit => put_u8(&mut buf, 0),
                ReplyBody::Report(report) => {
                    put_u8(&mut buf, 1);
                    put_report(&mut buf, report);
                }
                ReplyBody::Batch(items) => {
                    put_u8(&mut buf, 2);
                    put_u32(&mut buf, items.len() as u32);
                    for item in items {
                        match item {
                            Ok(report) => {
                                put_u8(&mut buf, 1);
                                put_report(&mut buf, report);
                            }
                            Err(e) => {
                                put_u8(&mut buf, 0);
                                put_node_error(&mut buf, e);
                            }
                        }
                    }
                }
                ReplyBody::Deploy(report) => {
                    put_u8(&mut buf, 3);
                    put_deploy_report(&mut buf, report);
                }
                ReplyBody::Stats(stats) => {
                    put_u8(&mut buf, 4);
                    put_stats(&mut buf, stats);
                }
                ReplyBody::Metrics(snapshot) => {
                    put_u8(&mut buf, 5);
                    // The snapshot owns its wire format; nest it as one
                    // opaque length-prefixed run so the codecs version
                    // independently.
                    put_bytes(&mut buf, &snapshot.encode());
                }
            }
        }
    }
    buf
}

/// Decodes an operation outcome off the wire.
///
/// # Errors
///
/// [`WireError`] on truncated or mistagged input.
pub fn decode_reply(bytes: &[u8]) -> Result<Result<ReplyBody, NodeError>, WireError> {
    let mut r = Reader::new(bytes);
    let reply = match r.u8()? {
        0 => Err(get_node_error(&mut r)?),
        1 => Ok(match r.u8()? {
            0 => ReplyBody::Unit,
            1 => ReplyBody::Report(get_report(&mut r)?),
            2 => {
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    items.push(match r.u8()? {
                        0 => Err(get_node_error(&mut r)?),
                        1 => Ok(get_report(&mut r)?),
                        t => return Err(WireError::BadTag(t)),
                    });
                }
                ReplyBody::Batch(items)
            }
            3 => ReplyBody::Deploy(get_deploy_report(&mut r)?),
            4 => ReplyBody::Stats(get_stats(&mut r)?),
            5 => {
                let raw = r.bytes()?;
                let snapshot = MetricsSnapshot::decode(&raw).map_err(|_| WireError::Truncated)?;
                ReplyBody::Metrics(Box::new(snapshot))
            }
            t => return Err(WireError::BadTag(t)),
        }),
        t => return Err(WireError::BadTag(t)),
    };
    r.done()?;
    Ok(reply)
}

// ------------------------------------------------------------- bundles

/// First byte of a coalesced multi-message datagram. A CoAP message's
/// first byte is `0x40 | type<<4 | token_length` with version 1 and
/// token lengths ≤ 8, i.e. always in `0x40..0x60`, so this magic can
/// never collide with a raw single message — which is how
/// [`split_datagram`] tells the two framings apart, and why a
/// singleton "bundle" is sent raw and stays byte-identical to the
/// pre-windowed wire format.
pub const BUNDLE_MAGIC: u8 = 0xB7;

/// Packs CoAP message frames into one datagram payload. One frame is
/// passed through unchanged (the window=1 degenerate case keeps the
/// stop-and-wait wire format); two or more are framed as
/// `BUNDLE_MAGIC, count:u8, (len:u32, bytes)×count`.
///
/// # Panics
///
/// When `frames` is empty or holds more than 255 frames — the caller
/// coalesces under an MTU budget that keeps counts far below that.
pub fn encode_bundle(frames: &[Vec<u8>]) -> Vec<u8> {
    assert!(
        !frames.is_empty() && frames.len() <= 255,
        "bundle of {} frames",
        frames.len()
    );
    if frames.len() == 1 {
        return frames[0].clone();
    }
    let mut buf = Vec::with_capacity(frames.iter().map(|f| f.len() + 5).sum::<usize>() + 2);
    put_u8(&mut buf, BUNDLE_MAGIC);
    put_u8(&mut buf, frames.len() as u8);
    for frame in frames {
        put_bytes(&mut buf, frame);
    }
    buf
}

/// Splits a datagram payload into its CoAP message frames: a bundle
/// into its parts, anything else (a raw single message) into a
/// one-frame vector.
///
/// # Errors
///
/// [`WireError`] when a bundle header announces more than the payload
/// carries.
pub fn split_datagram(payload: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    if payload.first() != Some(&BUNDLE_MAGIC) {
        return Ok(vec![payload.to_vec()]);
    }
    let mut r = Reader::new(payload);
    r.u8()?; // magic
    let n = r.u8()? as usize;
    if n == 0 {
        return Err(WireError::BadTag(0));
    }
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        frames.push(r.bytes()?);
    }
    r.done()?;
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HookReport {
        HookReport {
            executions: vec![
                ExecutionReport {
                    container: 7,
                    result: Ok(0x1234_5678_9abc_def0),
                    counts: OpCounts {
                        alu32: 1,
                        alu64: 2,
                        mul: 3,
                        div: 4,
                        load: 5,
                        store: 6,
                        branch_taken: 7,
                        branch_not_taken: 8,
                        helper_call: 9,
                        wide_load: 10,
                        exit: 1,
                    },
                    vm_cycles: 999,
                    helper_cycles: 111,
                    ctx_back: vec![1, 2, 3],
                    regions_back: vec![("pkt".into(), vec![9; 32]), ("aux".into(), vec![])],
                },
                ExecutionReport {
                    container: 8,
                    result: Err(VmError::HelperFault {
                        id: 52,
                        reason: "sensor gone".into(),
                    }),
                    counts: OpCounts::default(),
                    vm_cycles: 0,
                    helper_cycles: 0,
                    ctx_back: Vec::new(),
                    regions_back: Vec::new(),
                },
            ],
            combined: Some(42),
            cycles: 123_456,
        }
    }

    fn sample_metrics() -> fc_host::MetricsSnapshot {
        use fc_host::{CounterId, GaugeId, HistogramSnapshot, TenantMetrics};
        let mut snap = fc_host::MetricsSnapshot {
            nodes: 1,
            ..Default::default()
        };
        snap.set_counter(CounterId::Dispatched, 240);
        snap.set_counter(CounterId::Shed, 3);
        snap.gauge_max(GaugeId::QueueDepthMax, 17);
        snap.latency.0[12] = 200;
        snap.latency.0[13] = 40;
        let mut latency = HistogramSnapshot::default();
        latency.0[9] = 120;
        snap.tenants.push(TenantMetrics {
            tenant: 7,
            executions: 120,
            insns: 4800,
            latency,
        });
        snap
    }

    #[test]
    fn ops_round_trip() {
        let hook = Hook::new("wire-h", HookKind::CoapRequest, HookPolicy::Sum);
        let ops = vec![
            NodeOp::RegisterHook {
                hook: hook.clone(),
                offer: ContractOffer::helpers([1, 2, 3, 99]),
            },
            NodeOp::UnregisterHook { hook: hook.id },
            NodeOp::Dispatch {
                hook: hook.id,
                event: HookEvent {
                    ctx: vec![5; 16],
                    extra: vec![HostRegion::read_write("pkt", vec![0; 64])],
                },
            },
            NodeOp::Batch {
                hook: hook.id,
                events: vec![HookEvent::default(), HookEvent::new(&[1], &[])],
            },
            NodeOp::StageChunk {
                uri: "img-v1".into(),
                offset: 64,
                restart: false,
                chunk: vec![7; 32],
            },
            NodeOp::Deploy {
                envelope: vec![0xca; 100],
            },
            NodeOp::Stats,
            NodeOp::Metrics,
        ];
        for op in ops {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn replies_round_trip_bit_identically() {
        let replies: Vec<Result<ReplyBody, NodeError>> = vec![
            Ok(ReplyBody::Unit),
            Ok(ReplyBody::Report(sample_report())),
            Ok(ReplyBody::Batch(vec![
                Ok(sample_report()),
                Err(NodeError::Shed),
                Err(NodeError::UnknownHook(Uuid::from_name("w", "x"))),
            ])),
            Ok(ReplyBody::Deploy(DeployReport {
                container: 3,
                component: Uuid::from_name("w", "c"),
                shard: 2,
                sequence: 9,
                attached: true,
                replaced: Some(1),
            })),
            Ok(ReplyBody::Stats(NodeStats {
                dispatched: 1,
                shed: 2,
                deploys_accepted: 3,
                deploys_rejected: 4,
                hooks: 5,
                p50_ns: 6,
                p99_ns: 7,
                max_shard_busy_cycles: 8,
            })),
            Ok(ReplyBody::Metrics(Box::new(sample_metrics()))),
            Err(NodeError::Rejected("bad image".into())),
            Err(NodeError::Timeout),
            Err(NodeError::Transport("mtu".into())),
        ];
        for reply in replies {
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn metrics_reply_rejects_corrupt_inner_snapshot() {
        let reply = Ok(ReplyBody::Metrics(Box::new(sample_metrics())));
        let mut bytes = encode_reply(&reply);
        // Flip the nested snapshot's version byte (outer tag bytes and
        // inner length prefix come first: reply=1, body=5, len:u32).
        bytes[6] = 0xff;
        assert!(decode_reply(&bytes).is_err());
    }

    #[test]
    fn every_vm_error_round_trips() {
        let errors = vec![
            VmError::InvalidMemoryAccess {
                addr: 0xdead,
                len: 8,
                write: true,
            },
            VmError::DivisionByZero { pc: 4 },
            VmError::UnknownOpcode {
                pc: 5,
                opcode: 0x99,
            },
            VmError::UnknownHelper { id: 77 },
            VmError::HelperDenied { id: 78 },
            VmError::HelperFault {
                id: 79,
                reason: "r".into(),
            },
            VmError::InstructionBudgetExceeded { budget: 1000 },
            VmError::BranchBudgetExceeded { budget: 100 },
            VmError::JumpOutOfBounds { pc: 1, target: -5 },
            VmError::PcOutOfBounds { pc: 2 },
            VmError::TruncatedWideInstruction { pc: 3 },
            VmError::WriteToReadOnlyRegister { pc: 6 },
            VmError::InvalidShift { pc: 7 },
        ];
        for e in errors {
            let mut report = sample_report();
            report.executions[1].result = Err(e);
            let reply = Ok(ReplyBody::Report(report));
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn decode_is_total_on_garbage() {
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[200]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[1, 99]).is_err());
        let mut good = encode_op(&NodeOp::Deploy {
            envelope: vec![1, 2, 3],
        });
        good.truncate(good.len() - 1);
        assert_eq!(decode_op(&good), Err(WireError::Truncated));
        // Trailing junk is rejected, not silently ignored.
        let mut padded = encode_op(&NodeOp::Stats);
        padded.push(0);
        assert_eq!(decode_op(&padded), Err(WireError::Truncated));
    }

    #[test]
    fn bundles_round_trip_and_singletons_stay_raw() {
        let a = vec![0x45, 1, 2, 3];
        let b = vec![0x52, 9];
        let c = vec![0x40];
        assert_eq!(encode_bundle(std::slice::from_ref(&a)), a, "singleton raw");
        assert_eq!(split_datagram(&a).unwrap(), vec![a.clone()]);
        let packed = encode_bundle(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(packed[0], BUNDLE_MAGIC);
        assert_eq!(split_datagram(&packed).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn bundle_split_is_total_on_garbage() {
        assert!(split_datagram(&[BUNDLE_MAGIC]).is_err());
        assert!(split_datagram(&[BUNDLE_MAGIC, 0]).is_err());
        assert!(split_datagram(&[BUNDLE_MAGIC, 2, 1, 0, 0, 0, 7]).is_err());
        let mut packed = encode_bundle(&[vec![0x45; 4], vec![0x52; 2]]);
        packed.push(0); // trailing junk
        assert_eq!(split_datagram(&packed), Err(WireError::Truncated));
    }
}
