//! The node-operation wire codec: every [`fc_host::NodeService`]
//! operation and result as a compact binary payload inside a CoAP
//! message.
//!
//! The codec is **lossless** for everything semantics depend on —
//! [`HookReport`]s round-trip bit-identically (per-container results,
//! op counts, cycles, region contents, faults), which is what lets the
//! differential suite prove that a node driven over the link behaves
//! exactly like one called in-process. Errors travel as a discriminant
//! plus their fields; node-side verdicts are carried as text, matching
//! the in-process adapter's rendering.
//!
//! Framing is length-prefixed little-endian; strings are UTF-8 byte
//! runs. Decoding is total: truncated or mistagged input yields a
//! [`WireError`], never a panic.

use fc_core::contract::ContractOffer;
use fc_core::engine::HookReport;
use fc_core::hooks::Hook;
use fc_host::{DeployReport, HookEvent, MetricsSnapshot, NodeError, NodeStats};
use fc_suit::Uuid;

// The leaf codec (length-prefixed little-endian primitives plus the
// report/error/hook encoders) moved to `fc_host::wire` so the
// durability journal shares it; the wire format is byte-identical.
pub use fc_host::wire::WireError;
use fc_host::wire::{
    get_deploy_report, get_event, get_hook, get_node_error, get_offer, get_report, get_stats,
    put_bool, put_bytes, put_deploy_report, put_event, put_hook, put_node_error, put_offer,
    put_report, put_stats, put_str, put_u32, put_u64, put_u8, put_uuid, Reader,
};

/// One [`fc_host::NodeService`] operation, as shipped to a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOp {
    /// [`fc_host::NodeService::register_hook`].
    RegisterHook {
        /// The hook descriptor.
        hook: Hook,
        /// The launchpad's helper offer.
        offer: ContractOffer,
    },
    /// [`fc_host::NodeService::unregister_hook`].
    UnregisterHook {
        /// The hook to evacuate.
        hook: Uuid,
    },
    /// [`fc_host::NodeService::dispatch`].
    Dispatch {
        /// Target hook.
        hook: Uuid,
        /// The event.
        event: HookEvent,
    },
    /// [`fc_host::NodeService::dispatch_batch`].
    Batch {
        /// Target hook.
        hook: Uuid,
        /// The events, in offer order.
        events: Vec<HookEvent>,
    },
    /// [`fc_host::NodeService::stage_chunk`].
    StageChunk {
        /// Payload URI.
        uri: String,
        /// Byte offset of this chunk.
        offset: u64,
        /// Whether this chunk restarts the transfer (Block1 num 0).
        restart: bool,
        /// The chunk bytes.
        chunk: Vec<u8>,
    },
    /// [`fc_host::NodeService::deploy`].
    Deploy {
        /// The signed SUIT manifest envelope.
        envelope: Vec<u8>,
    },
    /// [`fc_host::NodeService::stats`].
    Stats,
    /// [`fc_host::NodeService::metrics`].
    Metrics,
}

/// The body of a successful reply; which variant is legal is implied
/// by the operation the requester sent.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Register/unregister/stage succeeded.
    Unit,
    /// A dispatch's report.
    Report(HookReport),
    /// A batch's per-event outcomes, in offer order.
    Batch(Vec<Result<HookReport, NodeError>>),
    /// A deploy's report.
    Deploy(DeployReport),
    /// A stats snapshot.
    Stats(NodeStats),
    /// A full telemetry snapshot (boxed: it dwarfs every other
    /// variant).
    Metrics(Box<MetricsSnapshot>),
}

// ------------------------------------------------------------ top-level

/// Encodes an operation for the wire.
pub fn encode_op(op: &NodeOp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match op {
        NodeOp::RegisterHook { hook, offer } => {
            put_u8(&mut buf, 0);
            put_hook(&mut buf, hook);
            put_offer(&mut buf, offer);
        }
        NodeOp::UnregisterHook { hook } => {
            put_u8(&mut buf, 1);
            put_uuid(&mut buf, *hook);
        }
        NodeOp::Dispatch { hook, event } => {
            put_u8(&mut buf, 2);
            put_uuid(&mut buf, *hook);
            put_event(&mut buf, event);
        }
        NodeOp::Batch { hook, events } => {
            put_u8(&mut buf, 3);
            put_uuid(&mut buf, *hook);
            put_u32(&mut buf, events.len() as u32);
            for e in events {
                put_event(&mut buf, e);
            }
        }
        NodeOp::StageChunk {
            uri,
            offset,
            restart,
            chunk,
        } => {
            put_u8(&mut buf, 4);
            put_str(&mut buf, uri);
            put_u64(&mut buf, *offset);
            put_bool(&mut buf, *restart);
            put_bytes(&mut buf, chunk);
        }
        NodeOp::Deploy { envelope } => {
            put_u8(&mut buf, 5);
            put_bytes(&mut buf, envelope);
        }
        NodeOp::Stats => put_u8(&mut buf, 6),
        NodeOp::Metrics => put_u8(&mut buf, 7),
    }
    buf
}

/// Decodes an operation off the wire.
///
/// # Errors
///
/// [`WireError`] on truncated or mistagged input.
pub fn decode_op(bytes: &[u8]) -> Result<NodeOp, WireError> {
    let mut r = Reader::new(bytes);
    let op = match r.u8()? {
        0 => NodeOp::RegisterHook {
            hook: get_hook(&mut r)?,
            offer: get_offer(&mut r)?,
        },
        1 => NodeOp::UnregisterHook { hook: r.uuid()? },
        2 => NodeOp::Dispatch {
            hook: r.uuid()?,
            event: get_event(&mut r)?,
        },
        3 => {
            let hook = r.uuid()?;
            let n = r.u32()? as usize;
            let mut events = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                events.push(get_event(&mut r)?);
            }
            NodeOp::Batch { hook, events }
        }
        4 => NodeOp::StageChunk {
            uri: r.string()?,
            offset: r.u64()?,
            restart: r.bool()?,
            chunk: r.bytes()?,
        },
        5 => NodeOp::Deploy {
            envelope: r.bytes()?,
        },
        6 => NodeOp::Stats,
        7 => NodeOp::Metrics,
        t => return Err(WireError::BadTag(t)),
    };
    r.done()?;
    Ok(op)
}

/// Encodes an operation outcome for the wire.
pub fn encode_reply(reply: &Result<ReplyBody, NodeError>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match reply {
        Err(e) => {
            put_u8(&mut buf, 0);
            put_node_error(&mut buf, e);
        }
        Ok(body) => {
            put_u8(&mut buf, 1);
            match body {
                ReplyBody::Unit => put_u8(&mut buf, 0),
                ReplyBody::Report(report) => {
                    put_u8(&mut buf, 1);
                    put_report(&mut buf, report);
                }
                ReplyBody::Batch(items) => {
                    put_u8(&mut buf, 2);
                    put_u32(&mut buf, items.len() as u32);
                    for item in items {
                        match item {
                            Ok(report) => {
                                put_u8(&mut buf, 1);
                                put_report(&mut buf, report);
                            }
                            Err(e) => {
                                put_u8(&mut buf, 0);
                                put_node_error(&mut buf, e);
                            }
                        }
                    }
                }
                ReplyBody::Deploy(report) => {
                    put_u8(&mut buf, 3);
                    put_deploy_report(&mut buf, report);
                }
                ReplyBody::Stats(stats) => {
                    put_u8(&mut buf, 4);
                    put_stats(&mut buf, stats);
                }
                ReplyBody::Metrics(snapshot) => {
                    put_u8(&mut buf, 5);
                    // The snapshot owns its wire format; nest it as one
                    // opaque length-prefixed run so the codecs version
                    // independently.
                    put_bytes(&mut buf, &snapshot.encode());
                }
            }
        }
    }
    buf
}

/// Decodes an operation outcome off the wire.
///
/// # Errors
///
/// [`WireError`] on truncated or mistagged input.
pub fn decode_reply(bytes: &[u8]) -> Result<Result<ReplyBody, NodeError>, WireError> {
    let mut r = Reader::new(bytes);
    let reply = match r.u8()? {
        0 => Err(get_node_error(&mut r)?),
        1 => Ok(match r.u8()? {
            0 => ReplyBody::Unit,
            1 => ReplyBody::Report(get_report(&mut r)?),
            2 => {
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    items.push(match r.u8()? {
                        0 => Err(get_node_error(&mut r)?),
                        1 => Ok(get_report(&mut r)?),
                        t => return Err(WireError::BadTag(t)),
                    });
                }
                ReplyBody::Batch(items)
            }
            3 => ReplyBody::Deploy(get_deploy_report(&mut r)?),
            4 => ReplyBody::Stats(get_stats(&mut r)?),
            5 => {
                let raw = r.bytes()?;
                let snapshot = MetricsSnapshot::decode(&raw).map_err(|_| WireError::Truncated)?;
                ReplyBody::Metrics(Box::new(snapshot))
            }
            t => return Err(WireError::BadTag(t)),
        }),
        t => return Err(WireError::BadTag(t)),
    };
    r.done()?;
    Ok(reply)
}

// ------------------------------------------------------------- bundles

/// First byte of a coalesced multi-message datagram. A CoAP message's
/// first byte is `0x40 | type<<4 | token_length` with version 1 and
/// token lengths ≤ 8, i.e. always in `0x40..0x60`, so this magic can
/// never collide with a raw single message — which is how
/// [`split_datagram`] tells the two framings apart, and why a
/// singleton "bundle" is sent raw and stays byte-identical to the
/// pre-windowed wire format.
pub const BUNDLE_MAGIC: u8 = 0xB7;

/// Packs CoAP message frames into one datagram payload. One frame is
/// passed through unchanged (the window=1 degenerate case keeps the
/// stop-and-wait wire format); two or more are framed as
/// `BUNDLE_MAGIC, count:u8, (len:u32, bytes)×count`.
///
/// # Panics
///
/// When `frames` is empty or holds more than 255 frames — the caller
/// coalesces under an MTU budget that keeps counts far below that.
pub fn encode_bundle(frames: &[Vec<u8>]) -> Vec<u8> {
    assert!(
        !frames.is_empty() && frames.len() <= 255,
        "bundle of {} frames",
        frames.len()
    );
    if frames.len() == 1 {
        return frames[0].clone();
    }
    let mut buf = Vec::with_capacity(frames.iter().map(|f| f.len() + 5).sum::<usize>() + 2);
    put_u8(&mut buf, BUNDLE_MAGIC);
    put_u8(&mut buf, frames.len() as u8);
    for frame in frames {
        put_bytes(&mut buf, frame);
    }
    buf
}

/// Splits a datagram payload into its CoAP message frames: a bundle
/// into its parts, anything else (a raw single message) into a
/// one-frame vector.
///
/// # Errors
///
/// [`WireError`] when a bundle header announces more than the payload
/// carries.
pub fn split_datagram(payload: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    if payload.first() != Some(&BUNDLE_MAGIC) {
        return Ok(vec![payload.to_vec()]);
    }
    let mut r = Reader::new(payload);
    r.u8()?; // magic
    let n = r.u8()? as usize;
    if n == 0 {
        return Err(WireError::BadTag(0));
    }
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        frames.push(r.bytes()?);
    }
    r.done()?;
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_core::engine::{ExecutionReport, HostRegion};
    use fc_core::hooks::{HookKind, HookPolicy};
    use fc_host::{DeployReport, NodeStats};
    use fc_rbpf::error::VmError;
    use fc_rbpf::vm::OpCounts;

    fn sample_report() -> HookReport {
        HookReport {
            executions: vec![
                ExecutionReport {
                    container: 7,
                    result: Ok(0x1234_5678_9abc_def0),
                    counts: OpCounts {
                        alu32: 1,
                        alu64: 2,
                        mul: 3,
                        div: 4,
                        load: 5,
                        store: 6,
                        branch_taken: 7,
                        branch_not_taken: 8,
                        helper_call: 9,
                        wide_load: 10,
                        exit: 1,
                    },
                    vm_cycles: 999,
                    helper_cycles: 111,
                    ctx_back: vec![1, 2, 3],
                    regions_back: vec![("pkt".into(), vec![9; 32]), ("aux".into(), vec![])],
                },
                ExecutionReport {
                    container: 8,
                    result: Err(VmError::HelperFault {
                        id: 52,
                        reason: "sensor gone".into(),
                    }),
                    counts: OpCounts::default(),
                    vm_cycles: 0,
                    helper_cycles: 0,
                    ctx_back: Vec::new(),
                    regions_back: Vec::new(),
                },
            ],
            combined: Some(42),
            cycles: 123_456,
        }
    }

    fn sample_metrics() -> fc_host::MetricsSnapshot {
        use fc_host::{CounterId, GaugeId, HistogramSnapshot, TenantMetrics};
        let mut snap = fc_host::MetricsSnapshot {
            nodes: 1,
            ..Default::default()
        };
        snap.set_counter(CounterId::Dispatched, 240);
        snap.set_counter(CounterId::Shed, 3);
        snap.gauge_max(GaugeId::QueueDepthMax, 17);
        snap.latency.0[12] = 200;
        snap.latency.0[13] = 40;
        let mut latency = HistogramSnapshot::default();
        latency.0[9] = 120;
        snap.tenants.push(TenantMetrics {
            tenant: 7,
            executions: 120,
            insns: 4800,
            latency,
        });
        snap
    }

    #[test]
    fn ops_round_trip() {
        let hook = Hook::new("wire-h", HookKind::CoapRequest, HookPolicy::Sum);
        let ops = vec![
            NodeOp::RegisterHook {
                hook: hook.clone(),
                offer: ContractOffer::helpers([1, 2, 3, 99]),
            },
            NodeOp::UnregisterHook { hook: hook.id },
            NodeOp::Dispatch {
                hook: hook.id,
                event: HookEvent {
                    ctx: vec![5; 16],
                    extra: vec![HostRegion::read_write("pkt", vec![0; 64])],
                },
            },
            NodeOp::Batch {
                hook: hook.id,
                events: vec![HookEvent::default(), HookEvent::new(&[1], &[])],
            },
            NodeOp::StageChunk {
                uri: "img-v1".into(),
                offset: 64,
                restart: false,
                chunk: vec![7; 32],
            },
            NodeOp::Deploy {
                envelope: vec![0xca; 100],
            },
            NodeOp::Stats,
            NodeOp::Metrics,
        ];
        for op in ops {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn replies_round_trip_bit_identically() {
        let replies: Vec<Result<ReplyBody, NodeError>> = vec![
            Ok(ReplyBody::Unit),
            Ok(ReplyBody::Report(sample_report())),
            Ok(ReplyBody::Batch(vec![
                Ok(sample_report()),
                Err(NodeError::Shed),
                Err(NodeError::UnknownHook(Uuid::from_name("w", "x"))),
            ])),
            Ok(ReplyBody::Deploy(DeployReport {
                container: 3,
                component: Uuid::from_name("w", "c"),
                shard: 2,
                sequence: 9,
                attached: true,
                replaced: Some(1),
            })),
            Ok(ReplyBody::Stats(NodeStats {
                dispatched: 1,
                shed: 2,
                deploys_accepted: 3,
                deploys_rejected: 4,
                hooks: 5,
                p50_ns: 6,
                p99_ns: 7,
                max_shard_busy_cycles: 8,
            })),
            Ok(ReplyBody::Metrics(Box::new(sample_metrics()))),
            Err(NodeError::Rejected("bad image".into())),
            Err(NodeError::Timeout),
            Err(NodeError::Transport("mtu".into())),
        ];
        for reply in replies {
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn metrics_reply_rejects_corrupt_inner_snapshot() {
        let reply = Ok(ReplyBody::Metrics(Box::new(sample_metrics())));
        let mut bytes = encode_reply(&reply);
        // Flip the nested snapshot's version byte (outer tag bytes and
        // inner length prefix come first: reply=1, body=5, len:u32).
        bytes[6] = 0xff;
        assert!(decode_reply(&bytes).is_err());
    }

    #[test]
    fn every_vm_error_round_trips() {
        let errors = vec![
            VmError::InvalidMemoryAccess {
                addr: 0xdead,
                len: 8,
                write: true,
            },
            VmError::DivisionByZero { pc: 4 },
            VmError::UnknownOpcode {
                pc: 5,
                opcode: 0x99,
            },
            VmError::UnknownHelper { id: 77 },
            VmError::HelperDenied { id: 78 },
            VmError::HelperFault {
                id: 79,
                reason: "r".into(),
            },
            VmError::InstructionBudgetExceeded { budget: 1000 },
            VmError::BranchBudgetExceeded { budget: 100 },
            VmError::JumpOutOfBounds { pc: 1, target: -5 },
            VmError::PcOutOfBounds { pc: 2 },
            VmError::TruncatedWideInstruction { pc: 3 },
            VmError::WriteToReadOnlyRegister { pc: 6 },
            VmError::InvalidShift { pc: 7 },
        ];
        for e in errors {
            let mut report = sample_report();
            report.executions[1].result = Err(e);
            let reply = Ok(ReplyBody::Report(report));
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn decode_is_total_on_garbage() {
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[200]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[1, 99]).is_err());
        let mut good = encode_op(&NodeOp::Deploy {
            envelope: vec![1, 2, 3],
        });
        good.truncate(good.len() - 1);
        assert_eq!(decode_op(&good), Err(WireError::Truncated));
        // Trailing junk is rejected, not silently ignored.
        let mut padded = encode_op(&NodeOp::Stats);
        padded.push(0);
        assert_eq!(decode_op(&padded), Err(WireError::Truncated));
    }

    #[test]
    fn bundles_round_trip_and_singletons_stay_raw() {
        let a = vec![0x45, 1, 2, 3];
        let b = vec![0x52, 9];
        let c = vec![0x40];
        assert_eq!(encode_bundle(std::slice::from_ref(&a)), a, "singleton raw");
        assert_eq!(split_datagram(&a).unwrap(), vec![a.clone()]);
        let packed = encode_bundle(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(packed[0], BUNDLE_MAGIC);
        assert_eq!(split_datagram(&packed).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn bundle_split_is_total_on_garbage() {
        assert!(split_datagram(&[BUNDLE_MAGIC]).is_err());
        assert!(split_datagram(&[BUNDLE_MAGIC, 0]).is_err());
        assert!(split_datagram(&[BUNDLE_MAGIC, 2, 1, 0, 0, 0, 7]).is_err());
        let mut packed = encode_bundle(&[vec![0x45; 4], vec![0x52; 2]]);
        packed.push(0); // trailing junk
        assert_eq!(split_datagram(&packed), Err(WireError::Truncated));
    }
}
