//! Fleet-tier integration: a mixed fleet (in-process and codec-adapter
//! nodes), ring routing, node join/leave with hook handoff, and
//! fleet-wide SUIT deploy fan-out with per-node accept/reject.

use fc_core::contract::ContractOffer;
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_fleet::node::{RemoteConfig, RemoteNode, FLEET_MTU};
use fc_fleet::{FcFleet, FleetConfig};
use fc_host::{HookEvent, HostConfig, LocalNode, NodeError};
use fc_net::link::LinkConfig;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::{SigningKey, Uuid};

fn echo_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm("ldxb r0, [r1]\nexit")
        .expect("assembles")
        .build()
}

fn provisioned_local(key: &SigningKey) -> LocalNode {
    let mut node = LocalNode::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig {
            workers: 2,
            ..HostConfig::default()
        },
    );
    node.updates_mut()
        .provision_tenant(b"fleet-tenant", key.verifying_key(), 1);
    node
}

fn lossy_remote(key: &SigningKey, seed: u64) -> RemoteNode<LocalNode> {
    RemoteNode::new(
        provisioned_local(key),
        RemoteConfig {
            link: LinkConfig {
                loss: 0.1,
                duplicate: 0.1,
                jitter_us: 20_000,
                mtu: FLEET_MTU,
                seed,
                ..LinkConfig::default()
            },
            max_retransmit: 8,
            window: 4,
            ..RemoteConfig::default()
        },
    )
}

fn signed_update(key: &SigningKey, hook: Uuid, version: u64) -> (Vec<u8>, Vec<u8>) {
    author_update(
        &echo_program(),
        hook,
        version,
        &format!("fleet-{hook}-v{version}"),
        key,
        b"fleet-tenant",
    )
}

struct Deployed {
    fleet: FcFleet,
    hooks: Vec<Uuid>,
}

/// A 3-node fleet (one in-process, two across lossy links) with 8
/// deployed echo hooks.
fn deployed_fleet(key: &SigningKey) -> Deployed {
    let mut fleet = FcFleet::new(FleetConfig::default());
    fleet.add_node(Box::new(provisioned_local(key))).unwrap();
    fleet
        .add_node(Box::new(lossy_remote(key, 0x000f_1ee1)))
        .unwrap();
    fleet
        .add_node(Box::new(lossy_remote(key, 0x000f_1ee2)))
        .unwrap();
    let mut hooks = Vec::new();
    for t in 0..8 {
        let hook = Hook::new(
            &format!("fleet-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        hooks.push(hook.id);
        fleet
            .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .unwrap();
        let (envelope, payload) = signed_update(key, hooks[t], 1);
        let (owner, report) = fleet.deploy(&envelope, &payload).unwrap();
        assert_eq!(
            Some(owner),
            fleet.owner_of(hooks[t]),
            "deploy lands on the owner"
        );
        assert!(report.attached);
    }
    Deployed { fleet, hooks }
}

fn assert_all_serve(fleet: &mut FcFleet, hooks: &[Uuid]) {
    for (t, &hook) in hooks.iter().enumerate() {
        let report = fleet
            .dispatch(hook, HookEvent::new(&[t as u8 + 1], &[]))
            .unwrap_or_else(|e| panic!("hook {t} failed: {e}"));
        assert_eq!(report.combined, Some(t as u64 + 1), "hook {t} echoes");
        assert_eq!(report.executions.len(), 1, "exactly one container serves");
    }
}

#[test]
fn ring_routes_hooks_across_mixed_nodes() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    assert_eq!(fleet.node_count(), 3);
    assert_eq!(fleet.hook_count(), 8);
    // With 8 hooks over 3 nodes, at least two nodes own something.
    let owners: std::collections::HashSet<usize> =
        hooks.iter().map(|h| fleet.owner_of(*h).unwrap()).collect();
    assert!(owners.len() >= 2, "hooks spread over the ring: {owners:?}");
    assert_all_serve(&mut fleet, &hooks);
    // Batched dispatch through the owner, in offer order.
    let events: Vec<HookEvent> = (1..=20u8).map(|i| HookEvent::new(&[i], &[])).collect();
    let replies = fleet.dispatch_batch(hooks[0], events).unwrap();
    for (i, reply) in replies.into_iter().enumerate() {
        assert_eq!(reply.unwrap().combined, Some(i as u64 + 1));
    }
    // Unknown hooks are refused at the front.
    let ghost = Uuid::from_name("fleet", "ghost");
    assert_eq!(
        fleet.dispatch(ghost, HookEvent::default()),
        Err(NodeError::UnknownHook(ghost))
    );
}

#[test]
fn node_join_hands_off_hooks_with_their_deployments() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    let before: Vec<usize> = hooks.iter().map(|h| fleet.owner_of(*h).unwrap()).collect();
    let new_id = fleet
        .add_node(Box::new(lossy_remote(&key, 0x000f_1ee3)))
        .unwrap();
    let after: Vec<usize> = hooks.iter().map(|h| fleet.owner_of(*h).unwrap()).collect();
    let moved: Vec<usize> = (0..hooks.len())
        .filter(|i| before[*i] != after[*i])
        .collect();
    // Consistent hashing: moved hooks moved TO the joiner only.
    for &i in &moved {
        assert_eq!(after[i], new_id, "hook {i} moved to the new node only");
    }
    assert!(
        fleet.handoff_count() >= moved.len() as u64,
        "handoffs recorded"
    );
    // Every hook — moved or not — still serves with its deployment.
    assert_all_serve(&mut fleet, &hooks);
}

#[test]
fn node_leave_rehomes_its_hooks_from_retained_updates() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    let before: Vec<usize> = hooks.iter().map(|h| fleet.owner_of(*h).unwrap()).collect();
    // Remove a node that actually owns hooks.
    let leaver = before[0];
    fleet.remove_node(leaver).unwrap();
    assert_eq!(fleet.node_count(), 2);
    for (i, &hook) in hooks.iter().enumerate() {
        let now = fleet.owner_of(hook).unwrap();
        assert_ne!(now, leaver);
        if before[i] != leaver {
            assert_eq!(now, before[i], "survivors' hooks must not move");
        }
    }
    // The leaver's hooks serve again from the retained updates.
    assert_all_serve(&mut fleet, &hooks);
    // Removing an unknown node is refused.
    assert!(matches!(fleet.remove_node(99), Err(NodeError::Rejected(_))));
}

#[test]
fn deploy_fanout_reports_per_node_accept_reject() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    // Fan a v2 of hook 0's component out to every node: the owner
    // attaches it, the others hold an unattached standby.
    let owner = fleet.owner_of(hooks[0]).unwrap();
    let (envelope, payload) = signed_update(&key, hooks[0], 2);
    let outcomes = fleet.deploy_fanout(&envelope, &payload);
    assert_eq!(outcomes.len(), 3);
    for (node, outcome) in &outcomes {
        let report = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("node {node}: {e}"));
        assert_eq!(report.sequence, 2);
        assert_eq!(
            report.attached,
            *node == owner,
            "only the owner attaches; the rest hold standbys"
        );
    }
    // The owner serves v2 (same echo behaviour, new container).
    assert_all_serve(&mut fleet, &hooks);

    // A fan-out whose signature no node trusts is rejected everywhere,
    // each rejection reported per node.
    let attacker = SigningKey::from_seed(b"attacker");
    let (bad_envelope, bad_payload) = author_update(
        &echo_program(),
        hooks[1],
        3,
        "evil",
        &attacker,
        b"fleet-tenant",
    );
    let outcomes = fleet.deploy_fanout(&bad_envelope, &bad_payload);
    assert_eq!(outcomes.len(), 3);
    for (node, outcome) in outcomes {
        assert!(
            matches!(outcome, Err(NodeError::Rejected(_))),
            "node {node} must reject the forgery"
        );
    }
    // And the forgery did not disturb the running hooks.
    assert_all_serve(&mut fleet, &hooks);
}

/// The fan-out × membership composition: a standby copy (installed by
/// a fan-out while the hook lived elsewhere) must not poison a later
/// handoff — re-homing registers the hook, retires the standby, clears
/// its rollback state, and re-deploys the retained update at the very
/// same sequence.
#[test]
fn handoff_after_fanout_rehomes_standby_components() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    // v2 of EVERY component on EVERY node: each non-owner now holds an
    // unattached standby with installed sequence 2.
    for &hook in &hooks {
        let (envelope, payload) = signed_update(&key, hook, 2);
        for (node, outcome) in fleet.deploy_fanout(&envelope, &payload) {
            outcome.unwrap_or_else(|e| panic!("node {node} rejected fan-out: {e}"));
        }
    }
    // Join: moved hooks re-deploy sequence 2 onto the joiner (no
    // standby there — the plain handoff path still works).
    fleet
        .add_node(Box::new(lossy_remote(&key, 0x000f_1ee4)))
        .unwrap();
    assert_all_serve(&mut fleet, &hooks);
    // Leave: the leaver's hooks re-home onto survivors that DO hold
    // same-sequence standby copies — this used to be rejected as a
    // SUIT rollback, stranding the hook with zero attached containers.
    let leaver = fleet.owner_of(hooks[0]).unwrap();
    fleet.remove_node(leaver).unwrap();
    assert_all_serve(&mut fleet, &hooks);
}

/// A failed evacuation must not orphan the hook: when the node cannot
/// be reached, the fleet keeps its record so the caller can retry —
/// instead of forgetting a hook that is still running remotely.
#[test]
fn failed_unregister_keeps_fleet_state_for_retry() {
    struct FlakyUnregister {
        inner: LocalNode,
        fail_next: bool,
    }
    impl fc_host::NodeService for FlakyUnregister {
        fn register_hook(&mut self, hook: Hook, offer: ContractOffer) -> Result<(), NodeError> {
            self.inner.register_hook(hook, offer)
        }
        fn unregister_hook(&mut self, hook: fc_suit::Uuid) -> Result<(), NodeError> {
            if self.fail_next {
                self.fail_next = false;
                return Err(NodeError::Timeout);
            }
            self.inner.unregister_hook(hook)
        }
        fn dispatch(
            &mut self,
            hook: fc_suit::Uuid,
            event: HookEvent,
        ) -> Result<fc_core::engine::HookReport, NodeError> {
            self.inner.dispatch(hook, event)
        }
        fn dispatch_batch(
            &mut self,
            hook: fc_suit::Uuid,
            events: Vec<HookEvent>,
        ) -> Result<Vec<Result<fc_core::engine::HookReport, NodeError>>, NodeError> {
            self.inner.dispatch_batch(hook, events)
        }
        fn stage_chunk(
            &mut self,
            uri: &str,
            offset: usize,
            chunk: &[u8],
            restart: bool,
        ) -> Result<(), NodeError> {
            self.inner.stage_chunk(uri, offset, chunk, restart)
        }
        fn deploy(&mut self, envelope: &[u8]) -> Result<fc_host::DeployReport, NodeError> {
            self.inner.deploy(envelope)
        }
        fn stats(&mut self) -> Result<fc_host::NodeStats, NodeError> {
            self.inner.stats()
        }
    }

    let key = SigningKey::from_seed(b"fleet-maintainer");
    let mut fleet = FcFleet::new(FleetConfig::default());
    fleet
        .add_node(Box::new(FlakyUnregister {
            inner: provisioned_local(&key),
            fail_next: true,
        }))
        .unwrap();
    let hook = Hook::new("flaky", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    fleet
        .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    let (envelope, payload) = signed_update(&key, hook_id, 1);
    fleet.deploy(&envelope, &payload).unwrap();
    // The first evacuation attempt times out — the fleet must still
    // know the hook (and keep serving it)...
    assert_eq!(fleet.unregister_hook(hook_id), Err(NodeError::Timeout));
    assert_eq!(fleet.hook_count(), 1);
    assert!(fleet
        .dispatch(hook_id, HookEvent::default())
        .is_ok_and(|r| r.executions.len() == 1));
    // ...so the retry can actually retire it.
    fleet.unregister_hook(hook_id).unwrap();
    assert_eq!(fleet.hook_count(), 0);
    assert!(matches!(
        fleet.dispatch(hook_id, HookEvent::default()),
        Err(NodeError::UnknownHook(_))
    ));
}

#[test]
fn fleet_serves_coap_requests_end_to_end() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    fleet.add_route("t0/echo", hooks[0]);
    let mut req = fc_net::coap::Message::request(fc_net::coap::Code::Get, 7, b"t");
    req.set_path("t0/echo");
    let reply = fleet.serve(&req).unwrap();
    assert_eq!(reply.report.executions.len(), 1);
    let mut unrouted = fc_net::coap::Message::request(fc_net::coap::Code::Get, 8, b"u");
    unrouted.set_path("no/where");
    assert!(matches!(
        fleet.serve(&unrouted),
        Err(NodeError::UnknownHook(_))
    ));
}

/// The concurrent front tier: one `dispatch_all` wave carries a batch
/// for every hook — owners both in-process and across lossy windowed
/// links — and the fleet drives all owners' transport windows from one
/// loop. Results come back indexed by offer position, per-hook offer
/// order intact, with an exactly-once ledger across the whole fleet.
#[test]
fn dispatch_all_drives_mixed_fleet_windows_concurrently() {
    let key = SigningKey::from_seed(b"fleet-maintainer");
    let Deployed { mut fleet, hooks } = deployed_fleet(&key);
    let ghost = Uuid::from_name("fleet", "ghost");
    let mut work: Vec<(Uuid, Vec<HookEvent>)> = hooks
        .iter()
        .map(|&hook| {
            (
                hook,
                (1..=10u8).map(|i| HookEvent::new(&[i], &[])).collect(),
            )
        })
        .collect();
    work.insert(3, (ghost, vec![HookEvent::default()]));

    let results = fleet.dispatch_all(work);
    assert_eq!(results.len(), hooks.len() + 1);
    for (pos, result) in results.into_iter().enumerate() {
        if pos == 3 {
            assert_eq!(
                result.unwrap_err(),
                NodeError::UnknownHook(ghost),
                "the unknown hook fails at its offer position without sinking the wave"
            );
            continue;
        }
        let replies = result.unwrap_or_else(|e| panic!("offer {pos} failed: {e}"));
        assert_eq!(replies.len(), 10);
        for (i, reply) in replies.into_iter().enumerate() {
            assert_eq!(
                reply.unwrap().combined,
                Some(i as u64 + 1),
                "offer {pos}: per-hook replies stay in offer order"
            );
        }
    }
    // Exactly-once across the mixed fleet: 8 hooks · 10 events, no
    // event lost to the lossy links, none executed twice, none shed.
    let mut dispatched = 0;
    let mut shed = 0;
    for (node, stats) in fleet.stats() {
        let stats = stats.unwrap_or_else(|e| panic!("node {node} stats: {e}"));
        dispatched += stats.dispatched;
        shed += stats.shed;
    }
    assert_eq!(dispatched, 80);
    assert_eq!(shed, 0);
}
