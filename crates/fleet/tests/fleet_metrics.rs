//! Fleet-wide observability: every node scraped over its own lossy
//! link ([`fc_fleet::FcFleet::metrics`]), snapshots decoded off the
//! wire and merged — counters sum, gauges max, histograms add — into
//! one fleet view whose numbers reconcile **exactly** with the
//! authoritative `HostStats` / `TransportStats` ledgers.

use fc_core::contract::ContractOffer;
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_fleet::node::{RemoteConfig, RemoteNode, FLEET_MTU};
use fc_fleet::{FcFleet, FleetConfig};
use fc_host::{
    CounterId, CrashPlan, CrashPoint, DurabilityConfig, GaugeId, HookEvent, HostConfig,
    JournalMedia, LocalNode, MetricsSnapshot, NodeError,
};
use fc_net::link::LinkConfig;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::{SigningKey, Uuid};

fn echo_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm("ldxb r0, [r1]\nexit")
        .expect("assembles")
        .build()
}

/// A provisioned node behind a 5%-loss link.
fn lossy_node(key: &SigningKey, seed: u64, config: HostConfig) -> RemoteNode<LocalNode> {
    let mut node = LocalNode::new(Platform::CortexM4, Engine::FemtoContainer, config);
    node.updates_mut()
        .provision_tenant(b"metrics-tenant", key.verifying_key(), 1);
    RemoteNode::new(
        node,
        RemoteConfig {
            link: LinkConfig {
                loss: 0.05,
                duplicate: 0.05,
                jitter_us: 20_000,
                mtu: FLEET_MTU,
                seed,
                ..LinkConfig::default()
            },
            max_retransmit: 8,
            window: 4,
            ..RemoteConfig::default()
        },
    )
}

fn signed_update(key: &SigningKey, hook: Uuid, version: u64) -> (Vec<u8>, Vec<u8>) {
    author_update(
        &echo_program(),
        hook,
        version,
        &format!("metrics-{hook}-v{version}"),
        key,
        b"metrics-tenant",
    )
}

/// Registers `n` hooks spread across the ring and deploys the echo
/// container on each owner. Returns the hooks in registration order.
fn deploy_hooks(fleet: &mut FcFleet, key: &SigningKey, n: usize) -> Vec<Uuid> {
    let mut hooks = Vec::new();
    for t in 0..n {
        let hook = Hook::new(
            &format!("metrics-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        hooks.push(hook.id);
        fleet
            .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .unwrap();
        let (envelope, payload) = signed_update(key, hooks[t], 1);
        fleet.deploy(&envelope, &payload).unwrap();
    }
    hooks
}

/// The ledger truth to reconcile a merged snapshot against: summed
/// `NodeStats` over the wire plus summed local transport counters.
struct Ledger {
    dispatched: u64,
    shed: u64,
    retransmits: u64,
    coalesced: u64,
}

fn ledger_of(fleet: &mut FcFleet) -> Ledger {
    let mut ledger = Ledger {
        dispatched: 0,
        shed: 0,
        retransmits: 0,
        coalesced: 0,
    };
    // Transport counters FIRST: fleet.stats() itself crosses the wire
    // and may retransmit, which would desynchronize the comparison
    // with a snapshot merged beforehand.
    for (_, t) in fleet.transport_stats() {
        ledger.retransmits += t.retransmits;
        ledger.coalesced += t.coalesced_frames;
    }
    for (node, stats) in fleet.stats() {
        let stats = stats.unwrap_or_else(|e| panic!("node {node} stats: {e}"));
        ledger.dispatched += stats.dispatched;
        ledger.shed += stats.shed;
    }
    ledger
}

/// CI smoke: a 2-node fleet under the loss link answers a metrics
/// scrape on every node, the snapshots decode off the wire, and the
/// merged dispatched/offered/shed counters reconcile with the fleet's
/// stats ledger.
#[test]
fn two_node_scrape_decodes_and_reconciles_with_ledger() {
    let key = SigningKey::from_seed(b"metrics-maintainer");
    let mut fleet = FcFleet::new(FleetConfig::default());
    for seed in [0x5c0b_e001u64, 0x5c0b_e002] {
        fleet
            .add_node(Box::new(lossy_node(&key, seed, HostConfig::default())))
            .unwrap();
    }
    let hooks = deploy_hooks(&mut fleet, &key, 4);
    for (t, &hook) in hooks.iter().enumerate() {
        for i in 1..=5u8 {
            let report = fleet.dispatch(hook, HookEvent::new(&[i], &[])).unwrap();
            assert_eq!(report.combined, Some(u64::from(i)), "hook {t} echoes");
        }
    }

    let (merged, failed) = fleet.merged_metrics();
    assert!(failed.is_empty(), "every node answered: {failed:?}");
    assert_eq!(merged.nodes, 2, "both nodes merged");
    let ledger = ledger_of(&mut fleet);
    assert_eq!(merged.counter(CounterId::Dispatched), 20);
    assert_eq!(merged.counter(CounterId::Dispatched), ledger.dispatched);
    assert_eq!(
        merged.counter(CounterId::Enqueued),
        merged.counter(CounterId::Dispatched),
        "everything offered was dispatched"
    );
    assert_eq!(merged.counter(CounterId::Shed), ledger.shed);
    assert_eq!(ledger.shed, 0);

    // The snapshot wire format is lossless: the merged view survives
    // another encode/decode round trip bit for bit.
    assert_eq!(
        MetricsSnapshot::decode(&merged.encode()).unwrap(),
        merged,
        "fleet-merged snapshot round-trips"
    );
}

/// The acceptance scenario: a 4-node fleet over 5%-loss links serves
/// metrics end to end — per-tenant interpolated p50/p99, per-shard
/// queue depth, and shed + rate-limited + retransmit counters that
/// reconcile exactly with the `HostStats` / `TransportStats` ledgers.
#[test]
fn four_node_lossy_fleet_merged_view_reconciles_exactly() {
    let key = SigningKey::from_seed(b"metrics-maintainer");
    let mut fleet = FcFleet::new(FleetConfig::default());
    // Node 0 tolerates exactly one deploy (rate-limit probe); node 1
    // has a 4-deep queue (shed probe); the rest are stock.
    let mut limited = lossy_node(&key, 0xacc3_0000, HostConfig::default());
    limited
        .endpoint_mut()
        .inner_mut()
        .updates_mut()
        .limit_tenant_rate(1, 1, 0.0);
    let limited_id = fleet.add_node(Box::new(limited)).unwrap();
    let congested = lossy_node(
        &key,
        0xacc3_0001,
        HostConfig {
            queue_capacity: 4,
            ..HostConfig::default()
        },
    );
    let congested_id = fleet.add_node(Box::new(congested)).unwrap();
    for seed in [0xacc3_0002u64, 0xacc3_0003] {
        fleet
            .add_node(Box::new(lossy_node(&key, seed, HostConfig::default())))
            .unwrap();
    }

    // Pick hooks by ring owner: exactly one on the rate-limited node
    // (its single deploy token must go to that hook), one on the
    // congested node, and a background population on the others.
    let mut limited_hook = None;
    let mut congested_hook = None;
    let mut background = Vec::new();
    for t in 0.. {
        let hook = Hook::new(
            &format!("acceptance-t{t}"),
            HookKind::CoapRequest,
            HookPolicy::First,
        );
        let owner = fleet.owner_of(hook.id).unwrap();
        if owner == limited_id && limited_hook.is_none() {
            limited_hook = Some(hook);
        } else if owner == congested_id && congested_hook.is_none() {
            congested_hook = Some(hook);
        } else if owner != limited_id && background.len() < 4 {
            background.push(hook);
        }
        if limited_hook.is_some() && congested_hook.is_some() && background.len() == 4 {
            break;
        }
    }
    let mut hooks = Vec::new();
    for hook in background
        .into_iter()
        .chain(congested_hook)
        .chain(limited_hook)
    {
        hooks.push(hook.id);
        fleet
            .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .unwrap();
        let (envelope, payload) = signed_update(&key, *hooks.last().unwrap(), 1);
        fleet.deploy(&envelope, &payload).unwrap();
    }
    let congested_hook = hooks[4];
    let limited_hook = hooks[5];

    // A second deploy to the rate-limited owner is refused — and the
    // refusal lands in the node's rate-limited ledger.
    let (envelope, payload) = signed_update(&key, limited_hook, 2);
    assert!(
        matches!(
            fleet.deploy(&envelope, &payload),
            Err(NodeError::Rejected(_))
        ),
        "second deploy to the rate-limited node is refused"
    );

    // Traffic: 10 events per hook concurrently — except the congested
    // one, which instead takes a 12-event burst afterwards so its
    // 4-deep queue must shed.
    let work: Vec<(Uuid, Vec<HookEvent>)> = hooks
        .iter()
        .filter(|&&hook| hook != congested_hook)
        .map(|&hook| {
            (
                hook,
                (1..=10u8).map(|i| HookEvent::new(&[i], &[])).collect(),
            )
        })
        .collect();
    for (pos, outcome) in fleet.dispatch_all(work).into_iter().enumerate() {
        for reply in outcome.unwrap_or_else(|e| panic!("offer {pos}: {e}")) {
            reply.unwrap_or_else(|e| panic!("offer {pos}: {e}"));
        }
    }
    let burst: Vec<HookEvent> = (1..=12u8).map(|i| HookEvent::new(&[i], &[])).collect();
    let shed_replies: u64 = fleet
        .dispatch_batch(congested_hook, burst)
        .unwrap()
        .into_iter()
        .filter(|r| matches!(r, Err(NodeError::Shed)))
        .count() as u64;
    assert!(shed_replies > 0, "the 4-deep queue shed part of the burst");

    // Scrape + merge, then reconcile against the ledgers.
    let (merged, failed) = fleet.merged_metrics();
    assert!(failed.is_empty(), "every node answered: {failed:?}");
    assert_eq!(merged.nodes, 4, "all four nodes merged");
    let ledger = ledger_of(&mut fleet);

    assert_eq!(merged.counter(CounterId::Dispatched), ledger.dispatched);
    assert_eq!(merged.counter(CounterId::Shed), ledger.shed);
    assert_eq!(merged.counter(CounterId::Shed), shed_replies);
    assert_eq!(
        merged.counter(CounterId::Enqueued) + merged.counter(CounterId::Shed),
        50 + 12,
        "offered = enqueued + shed, fleet-wide"
    );
    assert_eq!(merged.counter(CounterId::DeploysRateLimited), 1);
    assert_eq!(merged.counter(CounterId::Retransmits), ledger.retransmits);
    assert!(
        merged.counter(CounterId::Retransmits) > 0,
        "the 5%-loss links forced retransmissions"
    );
    assert_eq!(merged.counter(CounterId::CoalescedFrames), ledger.coalesced);
    assert!(
        merged.gauge(GaugeId::VirtualNowUs) > 0,
        "virtual clocks advanced"
    );

    // Per-tenant view with interpolated quantiles.
    let tenant = merged.tenant(1).expect("tenant 1 appears in the view");
    assert_eq!(tenant.executions, merged.counter(CounterId::Dispatched));
    let p50 = tenant.latency.quantile_ns(0.50);
    let p99 = tenant.latency.quantile_ns(0.99);
    assert!(p50 > 0, "p50 interpolates to a real latency");
    assert!(p99 >= p50, "quantiles are monotone");

    // Per-hook view: the congested hook's row carries its shed count.
    let hook_row = merged.hook(&congested_hook).expect("congested hook row");
    assert_eq!(hook_row.shed, shed_replies);

    // Per-shard view: every (node, shard) pair distinct, all queues
    // drained at scrape time, per-shard dispatch sums to the total.
    let mut pairs: Vec<(u32, u32)> = merged.shards.iter().map(|s| (s.node, s.shard)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    assert_eq!(pairs.len(), merged.shards.len(), "shard rows stay distinct");
    assert!(merged.shards.iter().all(|s| s.queue_depth == 0));
    assert_eq!(
        merged.shards.iter().map(|s| s.dispatched).sum::<u64>(),
        merged.counter(CounterId::Dispatched),
        "per-shard dispatch reconciles with the fleet total"
    );
}

/// Counter audit across crash + restore: a restored node seeds its
/// counters from the journal's committed prefix only, so the merged
/// fleet view neither re-counts pre-crash dispatches nor loses them —
/// it reconciles **exactly** with the load the clients saw succeed.
#[test]
fn restored_node_does_not_recount_pre_crash_dispatches() {
    let key = SigningKey::from_seed(b"metrics-maintainer");
    let mut fleet = FcFleet::new(FleetConfig::default());
    let mut medias = Vec::new();
    let mut ids = Vec::new();
    for seed in [0x4e57_a9e1u64, 0x4e57_a9e2] {
        let media = JournalMedia::new();
        let mut node = LocalNode::durable(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig::default(),
            &media,
            DurabilityConfig::default(),
        );
        node.updates_mut()
            .provision_tenant(b"metrics-tenant", key.verifying_key(), 1);
        let remote = RemoteNode::new(
            node,
            RemoteConfig {
                link: LinkConfig {
                    loss: 0.05,
                    duplicate: 0.05,
                    jitter_us: 20_000,
                    mtu: FLEET_MTU,
                    seed,
                    ..LinkConfig::default()
                },
                max_retransmit: 8,
                window: 4,
                ..RemoteConfig::default()
            },
        );
        ids.push(fleet.add_node(Box::new(remote)).unwrap());
        medias.push(media);
    }
    let hooks = deploy_hooks(&mut fleet, &key, 4);

    // Phase 1: every dispatch succeeds, so the committed load is
    // exactly what the clients counted.
    let mut offered_ok = 0u64;
    for &hook in &hooks {
        for i in 1..=5u8 {
            fleet.dispatch(hook, HookEvent::new(&[i], &[])).unwrap();
            offered_ok += 1;
        }
    }

    // Kill the owner of hooks[0] with a pre-commit probe: the probe
    // executes on the doomed process but never commits, so it must
    // appear in NO ledger — the client sees a timeout.
    let victim = fleet.owner_of(hooks[0]).unwrap();
    let media = &medias[ids.iter().position(|&id| id == victim).unwrap()];
    media.set_crash_plan(CrashPlan {
        point: CrashPoint::PreCommit,
        after: 0,
    });
    let probe = fleet.dispatch(hooks[0], HookEvent::new(&[9], &[]));
    assert!(
        matches!(probe, Err(NodeError::Timeout)),
        "a crashed node answers nothing: {probe:?}"
    );

    // Restore the victim from its journal, handing back the
    // fleet-retained hook specs it owned, and swap it into the ring.
    let specs: Vec<_> = fleet
        .hook_specs()
        .into_iter()
        .filter(|(hook, _)| fleet.owner_of(hook.id) == Some(victim))
        .collect();
    assert!(!specs.is_empty(), "the victim owned at least hooks[0]");
    let mut back = LocalNode::restore(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig::default(),
        media,
        DurabilityConfig::default(),
        specs,
    )
    .expect("restore victim");
    back.updates_mut()
        .provision_tenant(b"metrics-tenant", key.verifying_key(), 1);
    fleet
        .replace_node_service(
            victim,
            Box::new(RemoteNode::new(
                back,
                RemoteConfig {
                    link: LinkConfig {
                        loss: 0.05,
                        duplicate: 0.05,
                        jitter_us: 20_000,
                        mtu: FLEET_MTU,
                        seed: 0x4e57_a9e3,
                        ..LinkConfig::default()
                    },
                    max_retransmit: 8,
                    window: 4,
                    // A fresh front tier must not collide with its
                    // predecessor's token space: the restored node's
                    // journal answers known tokens from the resume
                    // cache instead of executing.
                    initial_token: 1 << 32,
                    ..RemoteConfig::default()
                },
            )),
        )
        .expect("swap the restored node in");

    // Phase 2: the full fleet serves again, restored node included.
    for &hook in &hooks {
        for i in 1..=5u8 {
            fleet.dispatch(hook, HookEvent::new(&[i], &[])).unwrap();
            offered_ok += 1;
        }
    }

    let (merged, failed) = fleet.merged_metrics();
    assert!(failed.is_empty(), "every node answered: {failed:?}");
    assert_eq!(merged.nodes, 2);
    let ledger = ledger_of(&mut fleet);
    assert_eq!(
        merged.counter(CounterId::Dispatched),
        offered_ok,
        "pre-crash dispatches counted once — not re-counted, not lost"
    );
    assert_eq!(merged.counter(CounterId::Dispatched), ledger.dispatched);
    assert_eq!(
        merged.counter(CounterId::Enqueued),
        merged.counter(CounterId::Dispatched),
        "the uncommitted probe appears in no ledger"
    );
    assert_eq!(merged.counter(CounterId::Shed), 0);
    assert_eq!(
        merged.counter(CounterId::DeploysAccepted),
        hooks.len() as u64,
        "restored deploys seed the acceptance ledger exactly once"
    );
    let tenant = merged.tenant(1).expect("tenant 1 in the merged view");
    assert_eq!(
        tenant.executions,
        merged.counter(CounterId::Dispatched),
        "per-tenant executions reconcile across the restore"
    );
}
