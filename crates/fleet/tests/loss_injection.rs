//! Loss-injection suite for the node codec adapter: every message
//! class — hook lifecycle, dispatch, batch, SUIT chunk, deploy, stats
//! — is driven over a link that **drops**, **duplicates** and
//! **reorders** (jittered latency) datagrams, and the dedup tokens
//! must turn the resulting at-least-once delivery into exactly-once
//! effect: no operation lost, none executed twice.

use fc_core::contract::{ContractOffer, ContractRequest};
use fc_core::deploy::author_update;
use fc_core::helpers_impl::{helper_name_table, standard_helper_ids};
use fc_core::hooks::{Hook, HookKind, HookPolicy};
use fc_fleet::node::{NodeEndpoint, RemoteConfig, RemoteNode, FLEET_MTU, NODE_OP_PATH};
use fc_fleet::wire::{self, NodeOp};
use fc_host::{HookEvent, HostConfig, LocalNode, NodeError, NodeService};
use fc_net::coap::{Code, Message};
use fc_net::link::LinkConfig;
use fc_rbpf::program::{FcProgram, ProgramBuilder};
use fc_rtos::platform::{Engine, Platform};
use fc_suit::SigningKey;

fn echo_program() -> FcProgram {
    ProgramBuilder::new()
        .helpers(helper_name_table().iter().map(|(n, i)| (n.as_str(), *i)))
        .asm("ldxb r0, [r1]\nexit")
        .expect("assembles")
        .build()
}

fn local_node() -> LocalNode {
    LocalNode::new(
        Platform::CortexM4,
        Engine::FemtoContainer,
        HostConfig {
            workers: 2,
            ..HostConfig::default()
        },
    )
}

/// A link that exercises all three failure modes at once, with enough
/// retransmission budget that the seeded run never times out.
fn lossy_config(seed: u64) -> RemoteConfig {
    RemoteConfig {
        link: LinkConfig {
            loss: 0.2,
            duplicate: 0.25,
            jitter_us: 60_000,
            mtu: FLEET_MTU,
            seed,
            ..LinkConfig::default()
        },
        max_events_per_message: 4,
        max_retransmit: 8,
        ..RemoteConfig::default()
    }
}

/// Drives every message class over the lossy link and asserts
/// exactly-once effect end to end.
#[test]
fn every_message_class_survives_drop_duplicate_reorder_exactly_once() {
    let maintainer = SigningKey::from_seed(b"loss-maintainer");
    let mut node = local_node();
    node.updates_mut()
        .provision_tenant(b"loss-tenant", maintainer.verifying_key(), 1);
    let mut remote = RemoteNode::new(node, lossy_config(0x10c1));

    let hook = Hook::new("loss-hook", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    let mut ops = 0u64;

    // Message class 1: hook lifecycle.
    remote
        .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    ops += 1;

    // Message classes 2+3: SUIT chunks and the deploy itself. 32-byte
    // chunks force a long multi-message transfer; a duplicated or
    // retransmitted chunk must stay idempotent, a dropped one is
    // retried by the transport before the next is sent.
    let app = echo_program();
    let (envelope, payload) =
        author_update(&app, hook_id, 1, "loss-v1", &maintainer, b"loss-tenant");
    for (i, chunk) in payload.chunks(32).enumerate() {
        remote
            .stage_chunk("loss-v1", i * 32, chunk, i == 0)
            .unwrap();
        ops += 1;
    }
    let report = remote.deploy(&envelope).unwrap();
    ops += 1;
    assert!(report.attached, "deploy attached over the lossy link");

    // Message class 4: single dispatches. The echo container returns
    // its first context byte, so a re-executed or cross-wired event
    // would be visible in the combined result.
    for i in 0..40u8 {
        let report = remote.dispatch(hook_id, HookEvent::new(&[i], &[])).unwrap();
        ops += 1;
        assert_eq!(report.combined, Some(i as u64), "event {i} echoed once");
    }

    // Message class 5: batches (split into sub-batches of 4 on the
    // wire, each sub-batch its own token).
    let events: Vec<HookEvent> = (100..140u8).map(|i| HookEvent::new(&[i], &[])).collect();
    let replies = remote.dispatch_batch(hook_id, events).unwrap();
    ops += 10; // 40 events / 4 per message
    assert_eq!(replies.len(), 40);
    for (i, reply) in replies.into_iter().enumerate() {
        assert_eq!(
            reply.unwrap().combined,
            Some(100 + i as u64),
            "batched replies stay in offer order"
        );
    }

    // Message class 6: stats — and the exactly-once ledger itself.
    let stats = remote.stats().unwrap();
    ops += 1;
    assert_eq!(
        stats.dispatched, 80,
        "every event executed exactly once: none lost, none doubled"
    );
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.deploys_accepted, 1);

    // The transport genuinely misbehaved...
    let link = remote.link();
    assert!(link.dropped_count() > 0, "the link dropped datagrams");
    assert!(link.duplicated_count() > 0, "the link duplicated datagrams");
    // ...and the dedup cache is what absorbed it.
    let endpoint = remote.endpoint();
    assert_eq!(
        endpoint.served_count(),
        ops,
        "each operation executed exactly once on the node"
    );
    assert!(
        endpoint.deduped_count() > 0,
        "retransmitted/duplicated requests were answered from the cache"
    );
}

/// The dedup cache in isolation: a duplicated request (same token)
/// replays the recorded response byte for byte and does not touch the
/// service again — even when the duplicate arrives after later
/// requests.
#[test]
fn endpoint_replays_cached_response_without_reexecuting() {
    let mut node = local_node();
    let hook = Hook::new("dedup-hook", HookKind::Custom, HookPolicy::Sum);
    let hook_id = hook.id;
    node.register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    // A counter container would hide double execution behind identical
    // outputs; instead watch the host's dispatched counter directly.
    let image = ProgramBuilder::new()
        .asm("mov r0, 5\nexit")
        .unwrap()
        .build();
    let container = node
        .host()
        .install("probe", 1, &image.to_bytes(), ContractRequest::default())
        .unwrap();
    node.host().attach(container, hook_id).unwrap();
    let mut endpoint = NodeEndpoint::new(node);

    let op = wire::encode_op(&NodeOp::Dispatch {
        hook: hook_id,
        event: HookEvent::default(),
    });
    let mut first = Message::request(Code::Post, 1, &[9, 9]);
    first.set_path(NODE_OP_PATH);
    first.payload = op;
    let original = endpoint.handle(&first);
    assert_eq!(original.code, Code::Content);
    assert_eq!(endpoint.served_count(), 1);

    // An unrelated request lands in between.
    let other_op = wire::encode_op(&NodeOp::Stats);
    let mut other = Message::request(Code::Post, 2, &[7, 7]);
    other.set_path(NODE_OP_PATH);
    other.payload = other_op;
    endpoint.handle(&other);

    // The late duplicate (retransmission: same token, new message id).
    let mut dup = first.clone();
    dup.message_id = 3;
    let replay = endpoint.handle(&dup);
    assert_eq!(replay.message_id, 3, "replay answers the retransmission");
    assert_eq!(replay.payload, original.payload, "byte-identical verdict");
    assert_eq!(endpoint.served_count(), 2, "dispatch + stats, not 3");
    assert_eq!(endpoint.deduped_count(), 1);
    let dispatched = endpoint.inner_mut().stats().unwrap().dispatched;
    assert_eq!(dispatched, 1, "the event executed exactly once");
}

/// Unknown paths and undecodable operations fail loudly, and a
/// node-side rejection (unknown hook) travels inside the reply payload
/// — the transport cannot confuse it with its own failures.
#[test]
fn endpoint_rejects_garbage_and_carries_node_verdicts() {
    let mut endpoint = NodeEndpoint::new(local_node());
    let mut wrong = Message::request(Code::Get, 1, &[1]);
    wrong.set_path("no/such");
    assert_eq!(endpoint.handle(&wrong).code, Code::NotFound);

    let mut garbage = Message::request(Code::Post, 2, &[2]);
    garbage.set_path(NODE_OP_PATH);
    garbage.payload = vec![0xff, 0xff];
    assert_eq!(endpoint.handle(&garbage).code, Code::BadRequest);
    assert_eq!(endpoint.served_count(), 0);

    let ghost = fc_suit::Uuid::from_name("loss", "ghost");
    let mut missing = Message::request(Code::Post, 3, &[3]);
    missing.set_path(NODE_OP_PATH);
    missing.payload = wire::encode_op(&NodeOp::Dispatch {
        hook: ghost,
        event: HookEvent::default(),
    });
    let resp = endpoint.handle(&missing);
    assert_eq!(resp.code, Code::Content, "verdict rides the payload");
    assert_eq!(
        wire::decode_reply(&resp.payload).unwrap(),
        Err(NodeError::UnknownHook(ghost))
    );
}

/// Builds a lossless remote node with one deployed echo hook, for the
/// MTU-budget tests.
fn lossless_echo_node() -> (RemoteNode<LocalNode>, fc_suit::Uuid) {
    let maintainer = SigningKey::from_seed(b"mtu-maintainer");
    let mut node = local_node();
    node.updates_mut()
        .provision_tenant(b"mtu-tenant", maintainer.verifying_key(), 1);
    let mut remote = RemoteNode::new(node, RemoteConfig::default());
    let hook = Hook::new("mtu-hook", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    remote
        .register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    let (envelope, payload) = author_update(
        &echo_program(),
        hook_id,
        1,
        "mtu-v1",
        &maintainer,
        b"mtu-tenant",
    );
    for (i, chunk) in payload.chunks(256).enumerate() {
        remote
            .stage_chunk("mtu-v1", i * 256, chunk, i == 0)
            .unwrap();
    }
    remote.deploy(&envelope).unwrap();
    (remote, hook_id)
}

/// A batch whose encoding (or projected reply) exceeds the MTU must
/// split into smaller wire messages transparently — not fail with a
/// transport error.
#[test]
fn oversized_batches_split_instead_of_failing() {
    let (mut remote, hook_id) = lossless_echo_node();
    let before = remote.endpoint().served_count();
    // 6 events with ~600-byte regions: well past the reply budget for
    // one datagram, fine individually.
    let events: Vec<HookEvent> = (0..6u8)
        .map(|i| HookEvent {
            ctx: vec![i + 1],
            extra: vec![fc_core::engine::HostRegion::read_write(
                "blob",
                vec![i; 600],
            )],
        })
        .collect();
    let replies = remote.dispatch_batch(hook_id, events).unwrap();
    assert_eq!(replies.len(), 6);
    for (i, reply) in replies.into_iter().enumerate() {
        let report = reply.unwrap();
        assert_eq!(report.combined, Some(i as u64 + 1), "offer order kept");
        assert_eq!(
            report.executions[0].regions_back[0].1,
            vec![i as u8; 600],
            "regions round-trip through the split"
        );
    }
    assert!(
        remote.endpoint().served_count() - before > 1,
        "the batch rode more than one wire message"
    );
}

/// A single event whose reply cannot fit the link is refused up front
/// — before the node executes anything it could never report back.
#[test]
fn oversized_single_event_is_refused_before_execution() {
    let (mut remote, hook_id) = lossless_echo_node();
    let before = remote.endpoint().served_count();
    let event = HookEvent {
        ctx: vec![1],
        extra: vec![fc_core::engine::HostRegion::read_write(
            "huge",
            vec![0; 2_500],
        )],
    };
    let err = remote.dispatch(hook_id, event).unwrap_err();
    assert!(
        matches!(&err, NodeError::Transport(reason) if reason.contains("mtu")),
        "{err:?}"
    );
    assert_eq!(
        remote.endpoint().served_count(),
        before,
        "nothing executed server-side"
    );
}

/// A dead link exhausts retransmissions and reports `Timeout` — and a
/// later recovery (fresh exchange) still works because tokens are
/// fresh per exchange.
#[test]
fn dead_link_times_out_cleanly() {
    let mut node = local_node();
    let hook = Hook::new("dead-hook", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    // Register directly on the node: the link is dead for the remote.
    node.register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    let mut remote = RemoteNode::new(
        node,
        RemoteConfig {
            link: LinkConfig {
                loss: 1.0,
                mtu: FLEET_MTU,
                ..LinkConfig::default()
            },
            max_retransmit: 2,
            ..RemoteConfig::default()
        },
    );
    assert_eq!(
        remote.dispatch(hook_id, HookEvent::default()),
        Err(NodeError::Timeout)
    );
    assert_eq!(remote.endpoint().served_count(), 0, "nothing got through");
}

/// Builds a node with the echo container installed directly (no SUIT
/// transfer), wrapped in a remote transport at the given window over a
/// link that drops, duplicates and reorders.
fn windowed_echo_remote(window: usize, seed: u64) -> (RemoteNode<LocalNode>, fc_suit::Uuid) {
    let mut node = local_node();
    let hook = Hook::new("window-hook", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    node.register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    let image = echo_program();
    let container = node
        .host()
        .install("echo", 1, &image.to_bytes(), ContractRequest::default())
        .unwrap();
    node.host().attach(container, hook_id).unwrap();
    let remote = RemoteNode::new(
        node,
        RemoteConfig {
            window,
            ..lossy_config(seed)
        },
    );
    (remote, hook_id)
}

/// The tentpole's exactly-once claim under multiplexing: with window 8
/// on a link that drops, duplicates and reorders, sub-batch replies
/// complete out of order and retransmitted requests land while others
/// are in flight — yet every per-event report is bit-identical to the
/// window-1 (stop-and-wait) transport over the same seeded link, and
/// the endpoint's ledger shows each sub-batch executed exactly once.
#[test]
fn reordered_duplicated_completions_match_stop_and_wait_reports() {
    use fc_host::WindowedNode;

    let run = |window: usize| {
        let (mut remote, hook_id) = windowed_echo_remote(window, 0x5eed_001d);
        // 600-byte regions keep each sub-batch near the MTU, so the
        // wave spans many datagrams — enough that the seeded link is
        // guaranteed to drop, duplicate and reorder some of them.
        let events: Vec<HookEvent> = (1..=40u8)
            .map(|i| HookEvent {
                ctx: vec![i],
                extra: vec![fc_core::engine::HostRegion::read_write(
                    "blob",
                    vec![i; 600],
                )],
            })
            .collect();
        let replies = remote.dispatch_batch(hook_id, events).unwrap();
        (replies, remote)
    };
    let (baseline, _) = run(1);
    let (windowed, mut remote) = run(8);

    assert_eq!(
        windowed, baseline,
        "per-report bit-identity: window 8 returns exactly what stop-and-wait returns"
    );
    for (i, reply) in windowed.into_iter().enumerate() {
        assert_eq!(reply.unwrap().combined, Some(i as u64 + 1), "offer order");
    }

    // The window genuinely multiplexed and the link genuinely
    // misbehaved...
    let tstats = remote.transport_stats();
    assert!(tstats.in_flight_hwm > 1, "exchanges overlapped: {tstats:?}");
    assert!(
        tstats.completed_out_of_order > 0,
        "replies completed out of submission order: {tstats:?}"
    );
    assert!(remote.link().dropped_count() > 0, "the link dropped");
    assert!(remote.link().duplicated_count() > 0, "the link duplicated");
    // ...and the ledger stayed exact: the 40 events split into 20
    // two-event sub-batches (the reply budget halves the 4-event
    // chunks), each executed once; duplicates answered from cache.
    assert_eq!(remote.endpoint().served_count(), 20);
    assert!(remote.endpoint().deduped_count() > 0);
    assert_eq!(
        remote
            .endpoint_mut()
            .inner_mut()
            .stats()
            .unwrap()
            .dispatched,
        40,
        "every event executed exactly once under window 8"
    );
}

/// Observability must be invisible in the behaviour it observes: the
/// same seeded lossy run with telemetry recording enabled (the
/// default) and fully disabled returns bit-identical per-event
/// reports, the same virtual clock reading, and the same transport
/// counters — at stop-and-wait (window 1) and under multiplexing
/// (window 8).
#[test]
fn telemetry_on_and_off_lossy_runs_are_bit_identical() {
    use fc_host::{TelemetryConfig, WindowedNode};

    let run = |window: usize, telemetry: TelemetryConfig| {
        let mut node = LocalNode::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 2,
                telemetry,
                ..HostConfig::default()
            },
        );
        let hook = Hook::new("telemetry-hook", HookKind::Custom, HookPolicy::First);
        let hook_id = hook.id;
        node.register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
            .unwrap();
        let image = echo_program();
        let container = node
            .host()
            .install("echo", 1, &image.to_bytes(), ContractRequest::default())
            .unwrap();
        node.host().attach(container, hook_id).unwrap();
        let mut remote = RemoteNode::new(
            node,
            RemoteConfig {
                window,
                ..lossy_config(0x0b5e_7e1e)
            },
        );
        let events: Vec<HookEvent> = (1..=40u8)
            .map(|i| HookEvent {
                ctx: vec![i],
                extra: vec![fc_core::engine::HostRegion::read_write(
                    "blob",
                    vec![i; 600],
                )],
            })
            .collect();
        let replies = remote.dispatch_batch(hook_id, events).unwrap();
        (replies, remote.now_us(), remote.transport_stats())
    };

    let off = TelemetryConfig {
        enabled: false,
        trace_capacity: 0,
    };
    for window in [1usize, 8] {
        let (on_replies, on_now, on_tstats) = run(window, TelemetryConfig::default());
        let (off_replies, off_now, off_tstats) = run(window, off);
        assert_eq!(
            on_replies, off_replies,
            "window {window}: per-event reports bit-identical"
        );
        assert_eq!(
            on_now, off_now,
            "window {window}: virtual clock reads identically"
        );
        assert_eq!(
            on_tstats, off_tstats,
            "window {window}: transport counters identical"
        );
    }
}

/// Satellite for the back-off cap: against a dead link the doubling
/// retransmission interval clamps at `max_transmit_wait_us`, so the
/// exchange dies after a *bounded* virtual time — deterministic to the
/// microsecond — instead of the unbounded exponential (which would be
/// 200ms · (2⁹−1) ≈ 102 s of virtual waiting for the same budget).
#[test]
fn backoff_cap_bounds_dead_link_timeout_virtual_time() {
    use fc_host::WindowedNode;

    let mut node = local_node();
    let hook = Hook::new("capped-hook", HookKind::Custom, HookPolicy::First);
    let hook_id = hook.id;
    node.register_hook(hook, ContractOffer::helpers(standard_helper_ids()))
        .unwrap();
    let mut remote = RemoteNode::new(
        node,
        RemoteConfig {
            link: LinkConfig {
                loss: 1.0,
                mtu: FLEET_MTU,
                ..LinkConfig::default()
            },
            max_retransmit: 8,
            max_transmit_wait_us: 400_000,
            ..RemoteConfig::default()
        },
    );
    assert_eq!(
        remote.dispatch(hook_id, HookEvent::default()),
        Err(NodeError::Timeout)
    );
    // Launch at t=0 with a 200ms timeout; every later interval clamps
    // to the 400ms cap: 200k + 8 · 400k, exactly.
    assert_eq!(
        remote.now_us(),
        200_000 + 8 * 400_000,
        "virtual time to declare the link dead is bounded by the cap"
    );
    assert_eq!(remote.transport_stats().retransmits, 8);
    assert_eq!(remote.endpoint().served_count(), 0, "nothing got through");
}
