//! CoAP load front-end: routes request paths onto `CoapRequest` hooks.
//!
//! The paper's networked-sensor example (§8.3) hangs one container off
//! the CoAP-request launchpad of one device. A hosting server
//! generalises that: each tenant resource (`/t0/temp`, `/t1/temp`, …)
//! is its own hook, the front-end maps Uri-Path → hook, and the host
//! spreads the hooks over shards — so requests for different resources
//! execute concurrently while each resource keeps the paper's
//! single-device semantics.
//!
//! Per request the front-end builds exactly what the single-device
//! engine hands its CoAP containers: a `coap_ctx_bytes` context and a
//! writable packet buffer as the first host-granted region. The
//! container's combined return value is the response PDU length
//! (the convention of `fc_core::apps::coap_formatter`).

use std::collections::HashMap;

use fc_core::engine::{HookReport, HostRegion};
use fc_core::helpers_impl::coap_ctx_bytes;
use fc_net::coap::{Code, Message};
use fc_suit::Uuid;

use crate::host::{FcHost, HostError};
use crate::queue::Accepted;

/// Default response packet buffer size (the paper's examples format
/// well under 64 B of PDU).
pub const DEFAULT_PKT_LEN: usize = 128;

/// A decoded CoAP exchange outcome from [`CoapFront::dispatch_sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapReply {
    /// The raw hook report (per-container executions, cycles).
    pub report: HookReport,
    /// The response PDU, trimmed to the container-reported length.
    pub pdu: Vec<u8>,
    /// The response, when the PDU parses as CoAP.
    pub message: Option<Message>,
}

/// Maps Uri-Paths onto hooks and packages requests as hook events.
#[derive(Debug, Clone, Default)]
pub struct CoapFront {
    routes: HashMap<String, Uuid>,
    pkt_len: usize,
}

impl CoapFront {
    /// Creates a front-end with the default packet buffer size.
    pub fn new() -> Self {
        CoapFront {
            routes: HashMap::new(),
            pkt_len: DEFAULT_PKT_LEN,
        }
    }

    /// Overrides the response packet buffer size.
    pub fn with_pkt_len(mut self, pkt_len: usize) -> Self {
        self.pkt_len = pkt_len;
        self
    }

    /// Routes a resource path (e.g. `"t0/temp"`) onto a hook.
    pub fn add_route(&mut self, path: &str, hook: Uuid) {
        self.routes.insert(normalize(path), hook);
    }

    /// Number of registered routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The hook serving a path, if routed.
    pub fn hook_for(&self, path: &str) -> Option<Uuid> {
        self.routes.get(&normalize(path)).copied()
    }

    /// The (hook, ctx, packet region) triple a request maps to.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] with a nil UUID when the path has no
    /// route (the CoAP analogue is a 4.04).
    pub fn request_event(
        &self,
        request: &Message,
    ) -> Result<(Uuid, Vec<u8>, HostRegion), HostError> {
        let hook = self
            .hook_for(&request.path())
            .ok_or(HostError::UnknownHook(Uuid::from_name(
                "coap/unrouted",
                &request.path(),
            )))?;
        let ctx = coap_ctx_bytes(self.pkt_len as u32);
        let pkt = HostRegion::read_write("pkt", vec![0; self.pkt_len]);
        Ok((hook, ctx, pkt))
    }

    /// Enqueues a request without waiting for the response.
    ///
    /// # Errors
    ///
    /// Routing errors as [`CoapFront::request_event`]; queue errors as
    /// [`FcHost::fire`].
    pub fn dispatch(&self, host: &FcHost, request: &Message) -> Result<Accepted, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        host.fire(hook, &ctx, std::slice::from_ref(&pkt))
    }

    /// Serves a request end to end, returning the formatted response.
    ///
    /// # Errors
    ///
    /// As [`CoapFront::dispatch`], plus [`HostError::Shed`] when the
    /// event was displaced before executing.
    pub fn dispatch_sync(&self, host: &FcHost, request: &Message) -> Result<CoapReply, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        let report = host.fire_sync(hook, &ctx, std::slice::from_ref(&pkt))?;
        let pdu = response_pdu(&report);
        let message = Message::decode(&pdu).ok();
        Ok(CoapReply {
            report,
            pdu,
            message,
        })
    }
}

/// Extracts the response PDU from a CoAP hook report: the packet
/// region written by the first execution, trimmed to the combined
/// return value (the formatter convention: r0 = PDU length).
pub fn response_pdu(report: &HookReport) -> Vec<u8> {
    let len = report.combined.unwrap_or(0) as usize;
    report
        .executions
        .first()
        .and_then(|e| e.regions_back.iter().find(|(name, _)| name == "pkt"))
        .map(|(_, bytes)| bytes[..len.min(bytes.len())].to_vec())
        .unwrap_or_default()
}

/// Checks a response PDU is a well-formed 2.05 Content reply.
pub fn is_content_response(pdu: &[u8]) -> bool {
    matches!(Message::decode(pdu), Ok(m) if m.code == Code::Content)
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_normalise_leading_slash() {
        let mut front = CoapFront::new();
        let hook = Uuid::from_name("test", "h");
        front.add_route("/t0/temp", hook);
        assert_eq!(front.hook_for("t0/temp"), Some(hook));
        assert_eq!(front.hook_for("/t0/temp/"), Some(hook));
        assert_eq!(front.hook_for("t1/temp"), None);
    }

    #[test]
    fn unrouted_request_is_rejected() {
        let front = CoapFront::new();
        let mut req = Message::request(Code::Get, 1, &[]);
        req.set_path("nope");
        assert!(matches!(
            front.request_event(&req),
            Err(HostError::UnknownHook(_))
        ));
    }
}
