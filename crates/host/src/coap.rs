//! CoAP load front-end: routes request paths onto `CoapRequest` hooks.
//!
//! The paper's networked-sensor example (§8.3) hangs one container off
//! the CoAP-request launchpad of one device. A hosting server
//! generalises that: each tenant resource (`/t0/temp`, `/t1/temp`, …)
//! is its own hook, the front-end maps Uri-Path → hook, and the host
//! spreads the hooks over shards — so requests for different resources
//! execute concurrently while each resource keeps the paper's
//! single-device semantics.
//!
//! Per request the front-end builds exactly what the single-device
//! engine hands its CoAP containers: a `coap_ctx_bytes` context and a
//! writable packet buffer as the first host-granted region. The
//! container's combined return value is the response PDU length
//! (the convention of `fc_core::apps::coap_formatter`).

use std::collections::HashMap;
use std::sync::mpsc::Receiver;

use fc_core::engine::{EngineError, HookReport, HostRegion};
use fc_core::helpers_impl::coap_ctx_bytes;
use fc_kvstore::TenantId;
use fc_net::block::Block;
use fc_net::coap::{content_format, option, Code, Message};
use fc_suit::{UpdateError, Uuid};

use crate::deploy::{LiveDeployError, LiveUpdateService};
use crate::host::{FcHost, HookEvent, HostError};
use crate::queue::{Accepted, BatchAccepted};

/// Default response packet buffer size (the paper's examples format
/// well under 64 B of PDU).
pub const DEFAULT_PKT_LEN: usize = 128;

/// A decoded CoAP exchange outcome from [`CoapFront::dispatch_sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapReply {
    /// The raw hook report (per-container executions, cycles).
    pub report: HookReport,
    /// The response PDU, trimmed to the container-reported length.
    pub pdu: Vec<u8>,
    /// The response, when the PDU parses as CoAP.
    pub message: Option<Message>,
}

/// Maps Uri-Paths onto hooks and packages requests as hook events.
#[derive(Debug, Clone, Default)]
pub struct CoapFront {
    routes: HashMap<String, Uuid>,
    pkt_len: usize,
}

impl CoapFront {
    /// Creates a front-end with the default packet buffer size.
    pub fn new() -> Self {
        CoapFront {
            routes: HashMap::new(),
            pkt_len: DEFAULT_PKT_LEN,
        }
    }

    /// Overrides the response packet buffer size.
    pub fn with_pkt_len(mut self, pkt_len: usize) -> Self {
        self.pkt_len = pkt_len;
        self
    }

    /// Routes a resource path (e.g. `"t0/temp"`) onto a hook.
    pub fn add_route(&mut self, path: &str, hook: Uuid) {
        self.routes.insert(normalize(path), hook);
    }

    /// Number of registered routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The hook serving a path, if routed.
    pub fn hook_for(&self, path: &str) -> Option<Uuid> {
        self.routes.get(&normalize(path)).copied()
    }

    /// The (hook, ctx, packet region) triple a request maps to.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] with a nil UUID when the path has no
    /// route (the CoAP analogue is a 4.04).
    pub fn request_event(
        &self,
        request: &Message,
    ) -> Result<(Uuid, Vec<u8>, HostRegion), HostError> {
        let hook = self
            .hook_for(&request.path())
            .ok_or(HostError::UnknownHook(Uuid::from_name(
                "coap/unrouted",
                &request.path(),
            )))?;
        let ctx = coap_ctx_bytes(self.pkt_len as u32);
        let pkt = HostRegion::read_write("pkt", vec![0; self.pkt_len]);
        Ok((hook, ctx, pkt))
    }

    /// Enqueues a request without waiting for the response.
    ///
    /// # Errors
    ///
    /// Routing errors as [`CoapFront::request_event`]; queue errors as
    /// [`FcHost::fire`].
    pub fn dispatch(&self, host: &FcHost, request: &Message) -> Result<Accepted, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        host.fire(hook, &ctx, std::slice::from_ref(&pkt))
    }

    /// Serves a request end to end, returning the formatted response.
    ///
    /// # Errors
    ///
    /// As [`CoapFront::dispatch`], plus [`HostError::Shed`] when the
    /// event was displaced before executing.
    pub fn dispatch_sync(&self, host: &FcHost, request: &Message) -> Result<CoapReply, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        let report = host.fire_sync(hook, &ctx, std::slice::from_ref(&pkt))?;
        let pdu = response_pdu(&report);
        let message = Message::decode(&pdu).ok();
        Ok(CoapReply {
            report,
            pdu,
            message,
        })
    }

    /// Groups a request slice by target hook, preserving each hook's
    /// request order — the shared front half of the batched dispatch
    /// paths. Unrouted requests land in the error slots immediately.
    fn batch_groups(
        &self,
        requests: &[Message],
        errors: &mut [Option<HostError>],
    ) -> Vec<(Uuid, Vec<usize>, Vec<HookEvent>)> {
        let mut groups: Vec<(Uuid, Vec<usize>, Vec<HookEvent>)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match self.request_event(request) {
                Ok((hook, ctx, pkt)) => {
                    let event = HookEvent {
                        ctx,
                        extra: vec![pkt],
                    };
                    match groups.iter_mut().find(|(h, _, _)| *h == hook) {
                        Some((_, idxs, events)) => {
                            idxs.push(i);
                            events.push(event);
                        }
                        None => groups.push((hook, vec![i], vec![event])),
                    }
                }
                Err(e) => errors[i] = Some(e),
            }
        }
        groups
    }

    /// Serves a whole read batch end to end: requests are grouped by
    /// hook and each group rides one queue round-trip
    /// ([`FcHost::fire_batch_with_reply`]); replies come back in
    /// **request order**. Per-request outcomes are independent — an
    /// unrouted path or a shed event fails its own slot only.
    pub fn dispatch_batch(
        &self,
        host: &FcHost,
        requests: &[Message],
    ) -> Vec<Result<CoapReply, HostError>> {
        let mut errors: Vec<Option<HostError>> = vec![None; requests.len()];
        let mut slots: Vec<Option<CoapReply>> = vec![None; requests.len()];
        // Enqueue ALL groups before collecting any reply, so groups on
        // different shards execute concurrently — blocking on group 1's
        // replies before offering group 2 would serialize the shards
        // and turn batch latency into the sum of group times.
        let mut outstanding: Vec<(usize, Receiver<Result<HookReport, EngineError>>)> = Vec::new();
        for (hook, idxs, events) in self.batch_groups(requests, &mut errors) {
            match host.fire_batch_with_reply(hook, events) {
                Ok(receivers) => outstanding.extend(idxs.into_iter().zip(receivers)),
                Err(e) => {
                    for i in idxs {
                        errors[i] = Some(e.clone());
                    }
                }
            }
        }
        for (i, rx) in outstanding {
            match rx.recv() {
                Ok(Ok(report)) => {
                    let pdu = response_pdu(&report);
                    let message = Message::decode(&pdu).ok();
                    slots[i] = Some(CoapReply {
                        report,
                        pdu,
                        message,
                    });
                }
                Ok(Err(e)) => errors[i] = Some(HostError::Engine(e)),
                // Sender dropped without a send: shed.
                Err(_) => errors[i] = Some(HostError::Shed),
            }
        }
        slots
            .into_iter()
            .zip(errors)
            .map(|(slot, err)| match slot {
                Some(reply) => Ok(reply),
                None => Err(err.expect("every slot resolved")),
            })
            .collect()
    }

    /// Serves the SUIT control resources — the live-deploy lane of the
    /// front-end. Returns `None` when the path is not a SUIT resource
    /// (route it through the tenant dispatch paths instead).
    ///
    /// * `POST /suit/payload?name=<uri>` with a Block1 option stages
    ///   one payload chunk into the service (in-order, hole-free; a
    ///   zero-length terminal block is legal — see
    ///   [`LiveUpdateService::stage_block`]);
    /// * `POST /suit/manifest` submits the signed manifest envelope and
    ///   triggers the full live-deploy pipeline against the staged
    ///   payloads. The response carries the deploy report — accepted
    ///   ([`crate::deploy::DeployReport`] via `Display`) or the
    ///   rejection reason — as its payload, with 2.04 Changed /
    ///   4.01 Unauthorized / 4.00 Bad Request codes matching the
    ///   single-device endpoint's conventions, and 4.29 Too Many
    ///   Requests for a rate-limited tenant;
    /// * `GET /suit/report` polls a deploy outcome (accepted/rejected,
    ///   reason, sequence, with a monotone serial) — the recovery path
    ///   for an async client whose in-band manifest response was lost:
    ///   poll instead of blindly resubmitting. With a Uri-Query naming
    ///   a component UUID, the answer is scoped to **that component**
    ///   (tenant-safe: another tenant's later deploy never overwrites
    ///   it); without one it is the service-wide last apply. 2.05
    ///   Content with the [`crate::deploy::DeployPoll`] rendered in
    ///   the payload, or 4.04 Not Found when nothing was recorded
    ///   under that scope.
    pub fn dispatch_suit(
        &self,
        host: &FcHost,
        updates: &mut LiveUpdateService,
        request: &Message,
    ) -> Option<Message> {
        match normalize(&request.path()).as_str() {
            "suit/payload" => Some(Self::stage_suit_block(updates, request)),
            "suit/manifest" => Some(Self::apply_suit_manifest(host, updates, request)),
            "suit/report" => Some(Self::poll_suit_report(updates, request)),
            _ => None,
        }
    }

    /// Serves the observability resources — the scrape lane of the
    /// front-end. Returns `None` when the path is not an observability
    /// resource (route it through the tenant dispatch paths instead).
    ///
    /// * `GET /metrics` serves the host's full
    ///   [`crate::MetricsSnapshot`]: the human-readable text rendering
    ///   by default (`text/plain`), or the lossless binary encoding
    ///   (`application/octet-stream`) with a Uri-Query of `bin` — what
    ///   a fleet scraper asks for;
    /// * `GET /metrics/tenant/<id>` serves one tenant's row (2.05, or
    ///   4.04 when the tenant has never executed here);
    /// * `GET /trace` dumps the bounded event-trace ring, oldest event
    ///   first, one line per [`crate::TraceEvent`].
    ///
    /// Non-GET methods on these resources get 4.05 Method Not Allowed.
    pub fn dispatch_observability(&self, host: &FcHost, request: &Message) -> Option<Message> {
        let path = normalize(&request.path());
        let tenant_scoped = path.strip_prefix("metrics/tenant/");
        if path != "metrics" && path != "trace" && tenant_scoped.is_none() {
            return None;
        }
        if request.code != Code::Get {
            return Some(Message::response_to(request, Code::MethodNotAllowed));
        }
        let mut resp = Message::response_to(request, Code::Content);
        resp.set_content_format(content_format::TEXT_PLAIN);
        match path.as_str() {
            "metrics" => {
                let snap = host.metrics_snapshot();
                let binary = request
                    .options
                    .iter()
                    .any(|(n, v)| *n == option::URI_QUERY && v == b"bin");
                if binary {
                    resp.payload = snap.encode();
                    resp.set_content_format(content_format::OCTET_STREAM);
                } else {
                    resp.payload = snap.to_string().into_bytes();
                }
            }
            "trace" => {
                let mut out = String::new();
                for event in host.telemetry().trace_events() {
                    out.push_str(&event.to_string());
                    out.push('\n');
                }
                resp.payload = out.into_bytes();
            }
            _ => {
                let Some(tenant) = tenant_scoped.and_then(|s| s.parse::<TenantId>().ok()) else {
                    return Some(Message::response_to(request, Code::BadRequest));
                };
                let snap = host.metrics_snapshot();
                let Some(t) = snap.tenant(tenant) else {
                    return Some(Message::response_to(request, Code::NotFound));
                };
                resp.payload = format!(
                    "tenant {} executions={} insns={} p50_ns={} p99_ns={}\n",
                    t.tenant,
                    t.executions,
                    t.insns,
                    t.latency.quantile_ns(0.50),
                    t.latency.quantile_ns(0.99)
                )
                .into_bytes();
            }
        }
        Some(resp)
    }

    fn poll_suit_report(updates: &LiveUpdateService, request: &Message) -> Message {
        let scoped = request
            .options
            .iter()
            .find(|(n, _)| *n == option::URI_QUERY)
            .map(|(_, v)| String::from_utf8_lossy(v).into_owned());
        let poll = match scoped {
            Some(query) => match query.parse::<Uuid>() {
                Ok(component) => updates.component_outcome(component),
                Err(_) => return Message::response_to(request, Code::BadRequest),
            },
            None => updates.last_outcome(),
        };
        match poll {
            Some(poll) => {
                let mut resp = Message::response_to(request, Code::Content);
                resp.payload = poll.to_string().into_bytes();
                resp
            }
            None => Message::response_to(request, Code::NotFound),
        }
    }

    fn stage_suit_block(updates: &mut LiveUpdateService, request: &Message) -> Message {
        let name = request
            .options
            .iter()
            .find(|(n, _)| *n == option::URI_QUERY)
            .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
            .unwrap_or_else(|| "default".to_owned());
        let block = request
            .option_uint(option::BLOCK1)
            .and_then(Block::from_uint)
            .unwrap_or(Block {
                num: 0,
                more: false,
                szx: 6,
            });
        let accepted = updates.stage_block(&name, block.offset(), &request.payload, block.num == 0);
        if !accepted {
            // A hole: reject so the client restarts the transfer.
            return Message::response_to(request, Code::BadRequest);
        }
        let mut resp = Message::response_to(
            request,
            if block.more {
                Code::Continue
            } else {
                Code::Changed
            },
        );
        resp.add_option_uint(option::BLOCK1, block.to_uint());
        resp
    }

    fn apply_suit_manifest(
        host: &FcHost,
        updates: &mut LiveUpdateService,
        request: &Message,
    ) -> Message {
        match updates.apply(host, &request.payload) {
            Ok(report) => {
                let mut resp = Message::response_to(request, Code::Changed);
                resp.payload = report.to_string().into_bytes();
                resp
            }
            Err(e) => {
                let code = match &e {
                    LiveDeployError::Update(UpdateError::UnknownKeyId { .. })
                    | LiveDeployError::Update(UpdateError::Manifest(_)) => Code::Unauthorized,
                    // 4.29 Too Many Requests (RFC 8516).
                    LiveDeployError::RateLimited { .. } => Code::Other(0x9d),
                    _ => Code::BadRequest,
                };
                let mut resp = Message::response_to(request, code);
                resp.payload = e.to_string().into_bytes();
                resp
            }
        }
    }

    /// Fire-and-forget batch dispatch for load generation: groups the
    /// requests by hook and enqueues each group with one queue
    /// round-trip, without reply channels. Returns the summed
    /// acceptance counts; unrouted requests count as rejected.
    pub fn dispatch_batch_nowait(&self, host: &FcHost, requests: &[Message]) -> BatchAccepted {
        let mut errors: Vec<Option<HostError>> = vec![None; requests.len()];
        let mut total = BatchAccepted::default();
        for (hook, idxs, events) in self.batch_groups(requests, &mut errors) {
            match host.fire_batch(hook, events) {
                Ok(out) => {
                    total.accepted += out.accepted;
                    total.rejected += out.rejected;
                    total.displaced += out.displaced;
                }
                Err(_) => total.rejected += idxs.len(),
            }
        }
        total.rejected += errors.iter().filter(|e| e.is_some()).count();
        total
    }
}

/// Extracts the response PDU from a CoAP hook report: the packet
/// region written by the first execution, trimmed to the combined
/// return value (the formatter convention: r0 = PDU length).
pub fn response_pdu(report: &HookReport) -> Vec<u8> {
    let len = report.combined.unwrap_or(0) as usize;
    report
        .executions
        .first()
        .and_then(|e| e.regions_back.iter().find(|(name, _)| name == "pkt"))
        .map(|(_, bytes)| bytes[..len.min(bytes.len())].to_vec())
        .unwrap_or_default()
}

/// Checks a response PDU is a well-formed 2.05 Content reply.
pub fn is_content_response(pdu: &[u8]) -> bool {
    matches!(Message::decode(pdu), Ok(m) if m.code == Code::Content)
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;
    use fc_core::contract::ContractOffer;
    use fc_core::deploy::author_update;
    use fc_core::helpers_impl::standard_helper_ids;
    use fc_core::hooks::{Hook, HookKind, HookPolicy};
    use fc_net::block::slice_block;
    use fc_rtos::platform::{Engine, Platform};
    use fc_suit::SigningKey;

    fn suit_host() -> (FcHost, Uuid) {
        let host = FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 2,
                ..HostConfig::default()
            },
        );
        let hook = Hook::new("suit-coap-t0", HookKind::SchedSwitch, HookPolicy::First);
        let hook_id = hook.id;
        host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        (host, hook_id)
    }

    fn provisioned() -> (LiveUpdateService, SigningKey) {
        let key = SigningKey::from_seed(b"coap-maintainer");
        let mut updates = LiveUpdateService::new();
        updates.provision_tenant(b"tenant-a", key.verifying_key(), 1);
        (updates, key)
    }

    /// Drives the staging endpoint the way a *streaming* sender does:
    /// it does not know the total length, marks every full block
    /// `more = true`, and closes an exact-multiple transfer with a
    /// zero-length terminal block at `offset == len`. The sender
    /// chunks through `slice_block`, which used to return `None` at
    /// that offset and strand the hand-off (the regression this test
    /// pins).
    fn stream_payload(
        front: &CoapFront,
        host: &FcHost,
        updates: &mut LiveUpdateService,
        uri: &str,
        payload: &[u8],
        block_size: usize,
    ) {
        let mut num = 0u32;
        loop {
            let block = Block::with_size(num, false, block_size);
            let (chunk, _) =
                slice_block(payload, block).expect("every offset up to and including len resolves");
            // A short (or empty) chunk is the terminal block.
            let done = chunk.len() < block_size;
            let mut req = Message::request(Code::Post, num as u16, &[]);
            req.set_path("suit/payload");
            req.add_option(option::URI_QUERY, uri.as_bytes().to_vec());
            req.add_option_uint(
                option::BLOCK1,
                Block {
                    num,
                    more: !done,
                    szx: block.szx,
                }
                .to_uint(),
            );
            req.payload = chunk;
            let resp = front
                .dispatch_suit(host, updates, &req)
                .expect("suit path routed");
            assert!(
                resp.code.is_success(),
                "block {num} rejected: {:?}",
                resp.code
            );
            if done {
                return;
            }
            num += 1;
        }
    }

    #[test]
    fn streaming_exact_multiple_staging_round_trips() {
        let (mut host, _) = suit_host();
        let (mut updates, _) = provisioned();
        let front = CoapFront::new();
        // 64 bytes in 32-byte blocks: two full blocks, then the
        // zero-length terminal block at offset == len.
        let payload: Vec<u8> = (0..64u8).collect();
        stream_payload(&front, &host, &mut updates, "img", &payload, 32);
        assert_eq!(updates.staged_payload("img"), Some(&payload[..]));
        // Zero-length payload: a single empty terminal block stages an
        // empty buffer rather than erroring.
        stream_payload(&front, &host, &mut updates, "empty", &[], 32);
        assert_eq!(updates.staged_payload("empty"), Some(&[][..]));
        // A non-multiple payload keeps working (short final block).
        let odd: Vec<u8> = (0..50u8).collect();
        stream_payload(&front, &host, &mut updates, "odd", &odd, 32);
        assert_eq!(updates.staged_payload("odd"), Some(&odd[..]));
        host.shutdown();
    }

    #[test]
    fn suit_endpoints_deploy_live_end_to_end() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        let front = CoapFront::new();
        let app = fc_core::apps::thread_counter();
        let (envelope, payload) = author_update(&app, hook_id, 1, "app-v1", &key, b"tenant-a");
        stream_payload(&front, &host, &mut updates, "app-v1", &payload, 32);

        let mut req = Message::request(Code::Post, 99, &[1]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = front
            .dispatch_suit(&host, &mut updates, &req)
            .expect("suit path routed");
        assert_eq!(resp.code, Code::Changed);
        let report = String::from_utf8(resp.payload).unwrap();
        assert!(
            report.contains("deployed"),
            "reply lane carries the report: {report}"
        );
        assert_eq!(updates.accepted_count(), 1);
        assert_eq!(
            updates.staged_payload("app-v1"),
            None,
            "successful deploy drops its staged payload"
        );
        let container = updates.installed_container(hook_id).unwrap();
        let fired = host.fire_sync(hook_id, &[], &[]).unwrap();
        assert_eq!(fired.executions.len(), 1);
        assert_eq!(fired.executions[0].container, container);
        host.shutdown();
    }

    #[test]
    fn suit_manifest_with_bad_signature_gets_401_with_reason() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, _) = provisioned();
        let front = CoapFront::new();
        let attacker = SigningKey::from_seed(b"attacker");
        let (envelope, payload) = author_update(
            &fc_core::apps::thread_counter(),
            hook_id,
            1,
            "evil",
            &attacker,
            b"tenant-a", // claims tenant-a's key id
        );
        updates.stage_payload("evil", &payload);
        let mut req = Message::request(Code::Post, 7, &[1]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = front
            .dispatch_suit(&host, &mut updates, &req)
            .expect("suit path routed");
        assert_eq!(resp.code, Code::Unauthorized);
        assert!(!resp.payload.is_empty(), "rejection reason travels back");
        assert_eq!(updates.installed_container(hook_id), None);
        // Non-SUIT paths fall through to tenant routing.
        let mut other = Message::request(Code::Get, 8, &[]);
        other.set_path("t0/temp");
        assert!(front.dispatch_suit(&host, &mut updates, &other).is_none());
        host.shutdown();
    }

    /// `/suit/report` polls the last deploy outcome: 4.04 before any
    /// deploy, the accepted report (with sequence + serial) after a
    /// good one, the rejection reason after a bad one — the recovery
    /// path for a client whose in-band manifest response was lost.
    #[test]
    fn suit_report_polls_last_deploy_outcome() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        let front = CoapFront::new();
        let mut poll = Message::request(Code::Get, 50, &[2]);
        poll.set_path("suit/report");
        let resp = front
            .dispatch_suit(&host, &mut updates, &poll)
            .expect("suit path routed");
        assert_eq!(resp.code, Code::NotFound, "no deploy attempted yet");

        let app = fc_core::apps::thread_counter();
        let (envelope, payload) = author_update(&app, hook_id, 1, "r-v1", &key, b"tenant-a");
        updates.stage_payload("r-v1", &payload);
        let mut req = Message::request(Code::Post, 51, &[2]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        front.dispatch_suit(&host, &mut updates, &req).unwrap();
        let resp = front.dispatch_suit(&host, &mut updates, &poll).unwrap();
        assert_eq!(resp.code, Code::Content);
        let body = String::from_utf8(resp.payload).unwrap();
        assert!(
            body.contains("#1 accepted") && body.contains("deployed"),
            "poll carries the accepted report: {body}"
        );

        // A rejected deploy of ANOTHER component overwrites the global
        // poll state with its reason and a fresh serial...
        let other = Hook::new("suit-coap-other", HookKind::SchedSwitch, HookPolicy::First);
        let other_id = other.id;
        host.register_hook(other, ContractOffer::helpers(standard_helper_ids()));
        let (envelope, _) = author_update(&app, other_id, 1, "r-other", &key, b"tenant-a");
        let mut req = Message::request(Code::Post, 52, &[2]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        front.dispatch_suit(&host, &mut updates, &req).unwrap();
        let resp = front.dispatch_suit(&host, &mut updates, &poll).unwrap();
        let body = String::from_utf8(resp.payload).unwrap();
        assert!(
            body.contains("#2 rejected") && body.contains("not staged"),
            "global poll carries the rejection reason: {body}"
        );
        // ...but a component-scoped poll is tenant-safe: the first
        // deploy's verdict survives under its own component.
        let mut scoped = poll.clone();
        scoped.add_option(option::URI_QUERY, hook_id.to_string().into_bytes());
        let resp = front.dispatch_suit(&host, &mut updates, &scoped).unwrap();
        assert_eq!(resp.code, Code::Content);
        let body = String::from_utf8(resp.payload).unwrap();
        assert!(
            body.contains("#1 accepted") && body.contains(&hook_id.to_string()),
            "component poll keeps its own verdict: {body}"
        );
        let mut scoped = poll.clone();
        scoped.add_option(option::URI_QUERY, other_id.to_string().into_bytes());
        let resp = front.dispatch_suit(&host, &mut updates, &scoped).unwrap();
        let body = String::from_utf8(resp.payload).unwrap();
        assert!(body.contains("#2 rejected"), "{body}");
        // A malformed component query is a 4.00, not a panic.
        let mut bad = poll.clone();
        bad.add_option(option::URI_QUERY, b"not-a-uuid".to_vec());
        let resp = front.dispatch_suit(&host, &mut updates, &bad).unwrap();
        assert_eq!(resp.code, Code::BadRequest);
        host.shutdown();
    }

    /// The deploy token bucket refills on the host's **virtual** clock:
    /// deterministic, and advanced by whoever drives the simulation.
    #[test]
    fn deploy_rate_limit_refills_on_virtual_time() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        updates.limit_tenant_rate(1, 1, 1.0); // 1-deploy burst, 1 token/s
        let front = CoapFront::new();
        let app = fc_core::apps::thread_counter();
        let submit = |updates: &mut LiveUpdateService, host: &FcHost, version: u64| {
            let uri = format!("rf-v{version}");
            let (envelope, payload) =
                author_update(&app, hook_id, version, &uri, &key, b"tenant-a");
            updates.stage_payload(&uri, &payload);
            let mut req = Message::request(Code::Post, version as u16, &[5]);
            req.set_path("suit/manifest");
            req.payload = envelope;
            front.dispatch_suit(host, updates, &req).unwrap()
        };
        assert_eq!(submit(&mut updates, &host, 1).code, Code::Changed);
        assert_eq!(
            submit(&mut updates, &host, 2).code,
            Code::Other(0x9d),
            "burst spent, clock unmoved"
        );
        // Two virtual seconds refill the (capacity-capped) bucket.
        host.env().set_now_us(2_000_000);
        assert_eq!(submit(&mut updates, &host, 2).code, Code::Changed);
        assert_eq!(updates.accepted_count(), 2);
        host.shutdown();
    }

    /// Per-tenant deploy rate limiting: once the token bucket drains,
    /// further manifests come back 4.29 with a distinct reason, the
    /// refusal is counted, and a manual credit re-opens the lane.
    #[test]
    fn deploy_rate_limit_rejects_with_distinct_reason() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        updates.limit_tenant_rate(1, 2, 0.0); // 2-deploy burst, no refill
        let front = CoapFront::new();
        let app = fc_core::apps::thread_counter();
        let submit = |updates: &mut LiveUpdateService, version: u64| {
            let uri = format!("rl-v{version}");
            let (envelope, payload) =
                author_update(&app, hook_id, version, &uri, &key, b"tenant-a");
            updates.stage_payload(&uri, &payload);
            let mut req = Message::request(Code::Post, version as u16, &[3]);
            req.set_path("suit/manifest");
            req.payload = envelope;
            front.dispatch_suit(&host, updates, &req).unwrap()
        };
        assert_eq!(submit(&mut updates, 1).code, Code::Changed);
        assert_eq!(submit(&mut updates, 2).code, Code::Changed);
        let throttled = submit(&mut updates, 3);
        assert_eq!(throttled.code, Code::Other(0x9d), "4.29 Too Many Requests");
        let reason = String::from_utf8(throttled.payload).unwrap();
        assert!(reason.contains("rate limit"), "distinct reason: {reason}");
        assert_eq!(updates.rate_limited_count(), 1);
        assert_eq!(
            host.stats()
                .deploys_rate_limited
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // The refusal burned neither the sequence nor the staged
        // payload: a credited retry of the SAME manifest lands.
        updates.credit_tenant(1, 1);
        let uri = "rl-v3";
        assert!(updates.staged_payload(uri).is_some(), "payload survived");
        let (envelope, _) = author_update(&app, hook_id, 3, uri, &key, b"tenant-a");
        let mut req = Message::request(Code::Post, 99, &[3]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = front.dispatch_suit(&host, &mut updates, &req).unwrap();
        assert_eq!(resp.code, Code::Changed, "credited retry lands");
        assert_eq!(updates.accepted_count(), 3);
        host.shutdown();
    }

    /// A rejected deploy's staged payload must stay LRU-recent: the
    /// retry contract says the refusal keeps the payload staged, so
    /// upload churn from other transfers must evict *them*, not the
    /// payload whose tenant is waiting out a rate limit.
    #[test]
    fn rejected_deploy_keeps_its_payload_recent() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        updates = updates.with_staging_capacity(2);
        updates.limit_tenant_rate(1, 1, 0.0); // 1-deploy burst, no refill
        let app = fc_core::apps::thread_counter();
        // v1 spends the only token.
        let (envelope, payload) = author_update(&app, hook_id, 1, "lru-v1", &key, b"tenant-a");
        updates.stage_payload("lru-v1", &payload);
        updates.apply(&host, &envelope).unwrap();
        // v2 staged first, a competitor transfer after it — then the
        // rate-limited apply must refresh v2's recency.
        let (envelope, payload) = author_update(&app, hook_id, 2, "lru-v2", &key, b"tenant-a");
        updates.stage_payload("lru-v2", &payload);
        assert!(updates.stage_block("competitor-a", 0, &[1; 8], true));
        assert!(matches!(
            updates.apply(&host, &envelope),
            Err(LiveDeployError::RateLimited { tenant: 1 })
        ));
        // The next transfer evicts the competitor, NOT the payload the
        // throttled tenant is about to retry with.
        assert!(updates.stage_block("competitor-b", 0, &[2; 8], true));
        assert!(updates.staged_payload("lru-v2").is_some());
        assert_eq!(updates.staged_payload("competitor-a"), None);
        updates.credit_tenant(1, 1);
        let report = updates.apply(&host, &envelope).unwrap();
        assert_eq!(report.sequence, 2, "credited retry lands without re-upload");
        host.shutdown();
    }

    /// Abandoned Block1 transfers are evicted once the bounded staging
    /// area fills — they no longer linger until an explicit `unstage` —
    /// while an active upload survives, completes and deploys.
    #[test]
    fn abandoned_block1_transfers_are_evicted() {
        let (mut host, hook_id) = suit_host();
        let (mut updates, key) = provisioned();
        updates = updates.with_staging_capacity(2);
        let front = CoapFront::new();
        let stage_first_block = |updates: &mut LiveUpdateService, uri: &str| {
            let mut req = Message::request(Code::Post, 1, &[4]);
            req.set_path("suit/payload");
            req.add_option(option::URI_QUERY, uri.as_bytes().to_vec());
            req.add_option_uint(
                option::BLOCK1,
                Block {
                    num: 0,
                    more: true,
                    szx: 1,
                }
                .to_uint(),
            );
            req.payload = vec![0xab; 32];
            front.dispatch_suit(&host, updates, &req).unwrap()
        };
        // The active transfer starts first, then a stream of abandoned
        // one-block uploads churns the bounded area.
        let app = fc_core::apps::thread_counter();
        let (envelope, payload) = author_update(&app, hook_id, 1, "live", &key, b"tenant-a");
        let mut off = 0usize;
        let stage_live = |updates: &mut LiveUpdateService, off: &mut usize| {
            let end = (*off + 16).min(payload.len());
            assert!(updates.stage_block("live", *off, &payload[*off..end], *off == 0));
            *off = end;
        };
        stage_live(&mut updates, &mut off);
        for i in 0..4 {
            // Keep the active transfer recently-touched, as a real
            // interleaved upload would.
            stage_live(&mut updates, &mut off);
            assert!(stage_first_block(&mut updates, &format!("abandoned-{i}"))
                .code
                .is_success());
        }
        assert!(
            updates.staging_evicted_count() >= 2,
            "abandoned transfers were evicted, not hoarded"
        );
        assert_eq!(
            updates.staged_payload("abandoned-0"),
            None,
            "the stalest abandoned upload is gone"
        );
        // The active transfer completes and deploys.
        while off < payload.len() {
            stage_live(&mut updates, &mut off);
        }
        let mut req = Message::request(Code::Post, 9, &[4]);
        req.set_path("suit/manifest");
        req.payload = envelope;
        let resp = front.dispatch_suit(&host, &mut updates, &req).unwrap();
        assert_eq!(resp.code, Code::Changed, "active transfer deployed");
        host.shutdown();
    }

    /// `/metrics` round-trips the snapshot (text and binary), the
    /// tenant-scoped resource serves one row, `/trace` dumps spans,
    /// and non-GET methods are refused — the in-process half of the
    /// fleet scrape path.
    #[test]
    fn observability_resources_serve_metrics_and_trace() {
        use crate::telemetry::{CounterId, MetricsSnapshot};
        let (mut host, hook_id) = suit_host();
        let app = fc_core::apps::thread_counter();
        let c = host
            .install(
                "obs",
                7,
                &app.to_bytes(),
                fc_core::deploy::contract_request_for(&app),
            )
            .unwrap();
        host.attach(c, hook_id).unwrap();
        for _ in 0..10 {
            host.fire_sync(hook_id, &[], &[]).unwrap();
        }
        let front = CoapFront::new();
        let get = |path: &str, query: Option<&[u8]>| {
            let mut req = Message::request(Code::Get, 1, &[9]);
            req.set_path(path);
            if let Some(q) = query {
                req.add_option(option::URI_QUERY, q.to_vec());
            }
            front.dispatch_observability(&host, &req)
        };
        // Text rendering by default.
        let resp = get("metrics", None).expect("metrics routed");
        assert_eq!(resp.code, Code::Content);
        assert_eq!(resp.content_format(), Some(content_format::TEXT_PLAIN));
        let text = String::from_utf8(resp.payload).unwrap();
        assert!(text.contains("counter dispatched 10"), "{text}");
        assert!(text.contains("tenant 7 "), "{text}");
        // Binary encoding decodes losslessly and reconciles with the
        // host ledger.
        let resp = get("metrics", Some(b"bin")).unwrap();
        assert_eq!(resp.content_format(), Some(content_format::OCTET_STREAM));
        let snap = MetricsSnapshot::decode(&resp.payload).unwrap();
        assert_eq!(
            snap.counter(CounterId::Dispatched),
            host.stats()
                .dispatched
                .load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(snap.tenant(7).unwrap().executions, 10);
        // Tenant-scoped resource.
        let resp = get("metrics/tenant/7", None).unwrap();
        assert_eq!(resp.code, Code::Content);
        let row = String::from_utf8(resp.payload).unwrap();
        assert!(row.starts_with("tenant 7 executions=10"), "{row}");
        assert_eq!(get("metrics/tenant/99", None).unwrap().code, Code::NotFound);
        assert_eq!(
            get("metrics/tenant/nope", None).unwrap().code,
            Code::BadRequest
        );
        // Trace ring dumps enqueue→drain→exec→reply spans.
        let resp = get("trace", None).unwrap();
        let trace = String::from_utf8(resp.payload).unwrap();
        assert!(trace.contains("enqueue"), "{trace}");
        assert!(trace.contains("exec"), "{trace}");
        // Non-observability paths fall through; non-GET is refused.
        let mut other = Message::request(Code::Get, 2, &[9]);
        other.set_path("t0/temp");
        assert!(front.dispatch_observability(&host, &other).is_none());
        let mut post = Message::request(Code::Post, 3, &[9]);
        post.set_path("metrics");
        assert_eq!(
            front.dispatch_observability(&host, &post).unwrap().code,
            Code::MethodNotAllowed
        );
        host.shutdown();
    }

    #[test]
    fn routes_normalise_leading_slash() {
        let mut front = CoapFront::new();
        let hook = Uuid::from_name("test", "h");
        front.add_route("/t0/temp", hook);
        assert_eq!(front.hook_for("t0/temp"), Some(hook));
        assert_eq!(front.hook_for("/t0/temp/"), Some(hook));
        assert_eq!(front.hook_for("t1/temp"), None);
    }

    #[test]
    fn unrouted_request_is_rejected() {
        let front = CoapFront::new();
        let mut req = Message::request(Code::Get, 1, &[]);
        req.set_path("nope");
        assert!(matches!(
            front.request_event(&req),
            Err(HostError::UnknownHook(_))
        ));
    }
}
