//! CoAP load front-end: routes request paths onto `CoapRequest` hooks.
//!
//! The paper's networked-sensor example (§8.3) hangs one container off
//! the CoAP-request launchpad of one device. A hosting server
//! generalises that: each tenant resource (`/t0/temp`, `/t1/temp`, …)
//! is its own hook, the front-end maps Uri-Path → hook, and the host
//! spreads the hooks over shards — so requests for different resources
//! execute concurrently while each resource keeps the paper's
//! single-device semantics.
//!
//! Per request the front-end builds exactly what the single-device
//! engine hands its CoAP containers: a `coap_ctx_bytes` context and a
//! writable packet buffer as the first host-granted region. The
//! container's combined return value is the response PDU length
//! (the convention of `fc_core::apps::coap_formatter`).

use std::collections::HashMap;
use std::sync::mpsc::Receiver;

use fc_core::engine::{EngineError, HookReport, HostRegion};
use fc_core::helpers_impl::coap_ctx_bytes;
use fc_net::coap::{Code, Message};
use fc_suit::Uuid;

use crate::host::{FcHost, HookEvent, HostError};
use crate::queue::{Accepted, BatchAccepted};

/// Default response packet buffer size (the paper's examples format
/// well under 64 B of PDU).
pub const DEFAULT_PKT_LEN: usize = 128;

/// A decoded CoAP exchange outcome from [`CoapFront::dispatch_sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapReply {
    /// The raw hook report (per-container executions, cycles).
    pub report: HookReport,
    /// The response PDU, trimmed to the container-reported length.
    pub pdu: Vec<u8>,
    /// The response, when the PDU parses as CoAP.
    pub message: Option<Message>,
}

/// Maps Uri-Paths onto hooks and packages requests as hook events.
#[derive(Debug, Clone, Default)]
pub struct CoapFront {
    routes: HashMap<String, Uuid>,
    pkt_len: usize,
}

impl CoapFront {
    /// Creates a front-end with the default packet buffer size.
    pub fn new() -> Self {
        CoapFront {
            routes: HashMap::new(),
            pkt_len: DEFAULT_PKT_LEN,
        }
    }

    /// Overrides the response packet buffer size.
    pub fn with_pkt_len(mut self, pkt_len: usize) -> Self {
        self.pkt_len = pkt_len;
        self
    }

    /// Routes a resource path (e.g. `"t0/temp"`) onto a hook.
    pub fn add_route(&mut self, path: &str, hook: Uuid) {
        self.routes.insert(normalize(path), hook);
    }

    /// Number of registered routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The hook serving a path, if routed.
    pub fn hook_for(&self, path: &str) -> Option<Uuid> {
        self.routes.get(&normalize(path)).copied()
    }

    /// The (hook, ctx, packet region) triple a request maps to.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] with a nil UUID when the path has no
    /// route (the CoAP analogue is a 4.04).
    pub fn request_event(
        &self,
        request: &Message,
    ) -> Result<(Uuid, Vec<u8>, HostRegion), HostError> {
        let hook = self
            .hook_for(&request.path())
            .ok_or(HostError::UnknownHook(Uuid::from_name(
                "coap/unrouted",
                &request.path(),
            )))?;
        let ctx = coap_ctx_bytes(self.pkt_len as u32);
        let pkt = HostRegion::read_write("pkt", vec![0; self.pkt_len]);
        Ok((hook, ctx, pkt))
    }

    /// Enqueues a request without waiting for the response.
    ///
    /// # Errors
    ///
    /// Routing errors as [`CoapFront::request_event`]; queue errors as
    /// [`FcHost::fire`].
    pub fn dispatch(&self, host: &FcHost, request: &Message) -> Result<Accepted, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        host.fire(hook, &ctx, std::slice::from_ref(&pkt))
    }

    /// Serves a request end to end, returning the formatted response.
    ///
    /// # Errors
    ///
    /// As [`CoapFront::dispatch`], plus [`HostError::Shed`] when the
    /// event was displaced before executing.
    pub fn dispatch_sync(&self, host: &FcHost, request: &Message) -> Result<CoapReply, HostError> {
        let (hook, ctx, pkt) = self.request_event(request)?;
        let report = host.fire_sync(hook, &ctx, std::slice::from_ref(&pkt))?;
        let pdu = response_pdu(&report);
        let message = Message::decode(&pdu).ok();
        Ok(CoapReply {
            report,
            pdu,
            message,
        })
    }

    /// Groups a request slice by target hook, preserving each hook's
    /// request order — the shared front half of the batched dispatch
    /// paths. Unrouted requests land in the error slots immediately.
    fn batch_groups(
        &self,
        requests: &[Message],
        errors: &mut [Option<HostError>],
    ) -> Vec<(Uuid, Vec<usize>, Vec<HookEvent>)> {
        let mut groups: Vec<(Uuid, Vec<usize>, Vec<HookEvent>)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match self.request_event(request) {
                Ok((hook, ctx, pkt)) => {
                    let event = HookEvent {
                        ctx,
                        extra: vec![pkt],
                    };
                    match groups.iter_mut().find(|(h, _, _)| *h == hook) {
                        Some((_, idxs, events)) => {
                            idxs.push(i);
                            events.push(event);
                        }
                        None => groups.push((hook, vec![i], vec![event])),
                    }
                }
                Err(e) => errors[i] = Some(e),
            }
        }
        groups
    }

    /// Serves a whole read batch end to end: requests are grouped by
    /// hook and each group rides one queue round-trip
    /// ([`FcHost::fire_batch_with_reply`]); replies come back in
    /// **request order**. Per-request outcomes are independent — an
    /// unrouted path or a shed event fails its own slot only.
    pub fn dispatch_batch(
        &self,
        host: &FcHost,
        requests: &[Message],
    ) -> Vec<Result<CoapReply, HostError>> {
        let mut errors: Vec<Option<HostError>> = vec![None; requests.len()];
        let mut slots: Vec<Option<CoapReply>> = vec![None; requests.len()];
        // Enqueue ALL groups before collecting any reply, so groups on
        // different shards execute concurrently — blocking on group 1's
        // replies before offering group 2 would serialize the shards
        // and turn batch latency into the sum of group times.
        let mut outstanding: Vec<(usize, Receiver<Result<HookReport, EngineError>>)> = Vec::new();
        for (hook, idxs, events) in self.batch_groups(requests, &mut errors) {
            match host.fire_batch_with_reply(hook, events) {
                Ok(receivers) => outstanding.extend(idxs.into_iter().zip(receivers)),
                Err(e) => {
                    for i in idxs {
                        errors[i] = Some(e.clone());
                    }
                }
            }
        }
        for (i, rx) in outstanding {
            match rx.recv() {
                Ok(Ok(report)) => {
                    let pdu = response_pdu(&report);
                    let message = Message::decode(&pdu).ok();
                    slots[i] = Some(CoapReply {
                        report,
                        pdu,
                        message,
                    });
                }
                Ok(Err(e)) => errors[i] = Some(HostError::Engine(e)),
                // Sender dropped without a send: shed.
                Err(_) => errors[i] = Some(HostError::Shed),
            }
        }
        slots
            .into_iter()
            .zip(errors)
            .map(|(slot, err)| match slot {
                Some(reply) => Ok(reply),
                None => Err(err.expect("every slot resolved")),
            })
            .collect()
    }

    /// Fire-and-forget batch dispatch for load generation: groups the
    /// requests by hook and enqueues each group with one queue
    /// round-trip, without reply channels. Returns the summed
    /// acceptance counts; unrouted requests count as rejected.
    pub fn dispatch_batch_nowait(&self, host: &FcHost, requests: &[Message]) -> BatchAccepted {
        let mut errors: Vec<Option<HostError>> = vec![None; requests.len()];
        let mut total = BatchAccepted::default();
        for (hook, idxs, events) in self.batch_groups(requests, &mut errors) {
            match host.fire_batch(hook, events) {
                Ok(out) => {
                    total.accepted += out.accepted;
                    total.rejected += out.rejected;
                    total.displaced += out.displaced;
                }
                Err(_) => total.rejected += idxs.len(),
            }
        }
        total.rejected += errors.iter().filter(|e| e.is_some()).count();
        total
    }
}

/// Extracts the response PDU from a CoAP hook report: the packet
/// region written by the first execution, trimmed to the combined
/// return value (the formatter convention: r0 = PDU length).
pub fn response_pdu(report: &HookReport) -> Vec<u8> {
    let len = report.combined.unwrap_or(0) as usize;
    report
        .executions
        .first()
        .and_then(|e| e.regions_back.iter().find(|(name, _)| name == "pkt"))
        .map(|(_, bytes)| bytes[..len.min(bytes.len())].to_vec())
        .unwrap_or_default()
}

/// Checks a response PDU is a well-formed 2.05 Content reply.
pub fn is_content_response(pdu: &[u8]) -> bool {
    matches!(Message::decode(pdu), Ok(m) if m.code == Code::Content)
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_normalise_leading_slash() {
        let mut front = CoapFront::new();
        let hook = Uuid::from_name("test", "h");
        front.add_route("/t0/temp", hook);
        assert_eq!(front.hook_for("t0/temp"), Some(hook));
        assert_eq!(front.hook_for("/t0/temp/"), Some(hook));
        assert_eq!(front.hook_for("t1/temp"), None);
    }

    #[test]
    fn unrouted_request_is_rejected() {
        let front = CoapFront::new();
        let mut req = Message::request(Code::Get, 1, &[]);
        req.set_path("nope");
        assert!(matches!(
            front.request_event(&req),
            Err(HostError::UnknownHook(_))
        ));
    }
}
