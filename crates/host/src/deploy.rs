//! Live SUIT deployment onto a running [`FcHost`].
//!
//! The paper's headline capability (§5) is secure over-the-air
//! deployment onto a *running* device: a signed SUIT manifest arrives,
//! its payload is fetched block-wise over CoAP, and only a
//! fully-verified image reaches the engine. The single-device flow
//! lives in `fc_core::deploy`; this module is the hosting-runtime
//! version — the same security pipeline, but the install lands
//! **through the shard control lane** while the host keeps serving
//! events:
//!
//! 1. payload blocks are staged into the service (over
//!    [`crate::CoapFront::dispatch_suit`] or directly via
//!    [`LiveUpdateService::stage_payload`]);
//! 2. the manifest's COSE/Schnorr envelope is verified against the
//!    tenant's provisioned key, rollback-checked, and the staged
//!    payload digest-checked — **before** the engine is touched;
//! 3. the verified image rides one [`FcHost::deploy_verified`] call:
//!    placement consults the *current* hook→shard routing
//!    (post-migration), and the install + attach + predecessor
//!    retirement execute as one control-lane command between event
//!    drains — no quiescing, no torn state;
//! 4. only then is the SUIT sequence number committed, so a deploy the
//!    engine rejects never burns it.
//!
//! Every mutation of a live hook thus funnels through one serialization
//! point per shard — the control lane — mirroring how containerized
//! runtimes route all lifecycle through a single agent channel instead
//! of side-channel mutation of a running sandbox.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use fc_core::deploy::{component_name, contract_request_for};
use fc_core::engine::{ContainerId, EngineError};
use fc_kvstore::TenantId;
use fc_net::block::StagingArea;
use fc_rbpf::program::FcProgram;
use fc_suit::{UpdateError, UpdateManager, Uuid, VerifyingKey};

use crate::host::{FcHost, HostError};
use crate::telemetry::TraceKind;

/// Why a live deployment was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveDeployError {
    /// Manifest/payload validation failed (signature, rollback, size,
    /// digest).
    Update(UpdateError),
    /// The host (or its target shard's engine) rejected the deploy.
    Host(HostError),
    /// The manifest's payload URI has not been staged.
    PayloadUnavailable {
        /// The URI the manifest named.
        uri: String,
    },
    /// The tenant exhausted its deploy token bucket
    /// ([`LiveUpdateService::limit_tenant_rate`]); retry after the
    /// bucket refills. Distinct from validation failures so operators
    /// can tell throttling from broken images.
    RateLimited {
        /// The throttled tenant.
        tenant: TenantId,
    },
}

impl std::fmt::Display for LiveDeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveDeployError::Update(e) => write!(f, "update rejected: {e}"),
            LiveDeployError::Host(e) => write!(f, "host rejected: {e}"),
            LiveDeployError::PayloadUnavailable { uri } => {
                write!(f, "payload `{uri}` not staged")
            }
            LiveDeployError::RateLimited { tenant } => {
                write!(f, "deploy rate limit exceeded for tenant {tenant}")
            }
        }
    }
}

impl std::error::Error for LiveDeployError {}

impl From<UpdateError> for LiveDeployError {
    fn from(e: UpdateError) -> Self {
        LiveDeployError::Update(e)
    }
}

impl From<HostError> for LiveDeployError {
    fn from(e: HostError) -> Self {
        LiveDeployError::Host(e)
    }
}

/// What an accepted live deploy did — the report sent back through the
/// reply lane (the CoAP response payload, via its `Display`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployReport {
    /// The freshly installed container.
    pub container: ContainerId,
    /// The manifest's storage location (= target hook UUID).
    pub component: Uuid,
    /// Shard the container landed on.
    pub shard: usize,
    /// The committed SUIT sequence number.
    pub sequence: u64,
    /// Whether the container was attached to the component's hook
    /// (`false` for an unattached install: the component names no
    /// registered hook).
    pub attached: bool,
    /// Predecessor container retired by this deploy, if any.
    pub replaced: Option<ContainerId>,
}

impl std::fmt::Display for DeployReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deployed container={} shard={} seq={} attached={}",
            self.container, self.shard, self.sequence, self.attached
        )?;
        if let Some(old) = self.replaced {
            write!(f, " replaced={old}")?;
        }
        Ok(())
    }
}

/// The outcome of one [`LiveUpdateService::apply`], kept for
/// asynchronous clients polling `/suit/report`
/// ([`crate::CoapFront::dispatch_suit`]): a client whose in-band
/// response was lost on the wire can fetch the verdict instead of
/// blindly resubmitting the manifest. Outcomes are recorded both
/// globally (the service's last apply) and **per component**, so one
/// tenant's poll is never answered with another tenant's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployPoll {
    /// Monotone apply counter — lets a poller tell a fresh outcome from
    /// the one it already saw.
    pub serial: u64,
    /// The manifest's component (storage location), when the envelope
    /// parsed far enough to name one.
    pub component: Option<Uuid>,
    /// Whether the deploy landed.
    pub accepted: bool,
    /// The committed SUIT sequence number, when accepted.
    pub sequence: Option<u64>,
    /// The accepted report (its `Display`) or the rejection reason.
    pub detail: String,
}

impl std::fmt::Display for DeployPoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deploy #{} {}",
            self.serial,
            if self.accepted {
                "accepted"
            } else {
                "rejected"
            },
        )?;
        if let Some(component) = self.component {
            write!(f, " component={component}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// A deploy-rate token bucket: `capacity` deploys in a burst, refilled
/// continuously at `refill_per_sec` of **virtual time** — the host's
/// deterministic clock ([`fc_core::helpers_impl::HostEnv::now_us`]),
/// like every other time-dependent mechanism in this stack.
#[derive(Debug, Clone)]
struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    /// Virtual timestamp of the last refill; `None` until first use so
    /// a bucket configured before the clock advances does not count the
    /// whole epoch as elapsed.
    last_us: Option<u64>,
}

impl TokenBucket {
    fn new(capacity: u32, refill_per_sec: f64) -> Self {
        TokenBucket {
            capacity: capacity as f64,
            tokens: capacity as f64,
            refill_per_sec: refill_per_sec.max(0.0),
            last_us: None,
        }
    }

    fn try_take(&mut self, now_us: u64) -> bool {
        if let Some(last_us) = self.last_us {
            let elapsed_s = now_us.saturating_sub(last_us) as f64 / 1e6;
            self.tokens = (self.tokens + self.refill_per_sec * elapsed_s).min(self.capacity);
        }
        self.last_us = Some(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn credit(&mut self, tokens: u32) {
        self.tokens = (self.tokens + tokens as f64).min(self.capacity);
    }
}

/// The host-owned SUIT update service: provisioned trust anchors,
/// per-component sequence state, block-wise payload staging (bounded —
/// abandoned transfers are LRU-evicted), per-tenant deploy rate
/// limits, and the component → container bindings that make re-deploys
/// replace their predecessor.
///
/// # Examples
///
/// ```
/// use fc_core::deploy::author_update;
/// use fc_core::contract::ContractOffer;
/// use fc_core::helpers_impl::standard_helper_ids;
/// use fc_core::hooks::{Hook, HookKind, HookPolicy};
/// use fc_host::{FcHost, HostConfig, LiveUpdateService};
/// use fc_rtos::platform::{Engine, Platform};
/// use fc_suit::SigningKey;
///
/// let mut host = FcHost::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
/// let hook = Hook::new("tick", HookKind::Timer, HookPolicy::First);
/// let hook_id = hook.id;
/// host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
///
/// // Commissioning: provision the tenant's verification key.
/// let key = SigningKey::from_seed(b"tenant-a-maintainer");
/// let mut updates = LiveUpdateService::new();
/// updates.provision_tenant(b"tenant-a", key.verifying_key(), 1);
///
/// // Author side: sign an image for the hook; stage + apply it live.
/// let app = fc_core::apps::thread_counter();
/// let (envelope, payload) = author_update(&app, hook_id, 1, "app-v1", &key, b"tenant-a");
/// updates.stage_payload("app-v1", &payload);
/// let report = updates.apply(&host, &envelope).unwrap();
/// assert!(report.attached);
/// let fired = host.fire_sync(hook_id, &[], &[]).unwrap();
/// assert_eq!(fired.executions.len(), 1);
/// host.shutdown();
/// ```
#[derive(Debug, Default)]
pub struct LiveUpdateService {
    manager: UpdateManager,
    tenants: HashMap<Vec<u8>, TenantId>,
    installed: HashMap<Uuid, ContainerId>,
    staged: StagingArea,
    rate_limits: HashMap<TenantId, TokenBucket>,
    rate_limited: u64,
    last_outcome: Option<DeployPoll>,
    component_outcomes: HashMap<Uuid, DeployPoll>,
    applies: u64,
}

impl LiveUpdateService {
    /// Creates a service with no trust anchors.
    pub fn new() -> Self {
        LiveUpdateService::default()
    }

    /// Overrides the bound on concurrently staged transfers (default
    /// [`fc_net::block::DEFAULT_STAGING_CAPACITY`]); abandoned uploads
    /// beyond it are LRU-evicted.
    pub fn with_staging_capacity(mut self, capacity: usize) -> Self {
        self.staged = StagingArea::with_capacity(capacity);
        self
    }

    /// Provisions a tenant: its signing key id, verification key and
    /// tenant id for store scoping (done at commissioning, not over
    /// the air).
    pub fn provision_tenant(&mut self, key_id: &[u8], key: VerifyingKey, tenant: TenantId) {
        self.manager.trust(key_id, key);
        self.tenants.insert(key_id.to_vec(), tenant);
    }

    /// Imposes a deploy-rate token bucket on a tenant: at most
    /// `capacity` deploys in a burst, refilled continuously at
    /// `refill_per_sec` of the host's **virtual** clock
    /// ([`fc_core::helpers_impl::HostEnv::now_us`]) — deterministic
    /// like the rest of the stack; whoever drives the simulation
    /// advances it. A zero refill rate makes the bucket purely
    /// burst-bounded until [`LiveUpdateService::credit_tenant`] tops it
    /// up. Unconfigured tenants are unlimited.
    pub fn limit_tenant_rate(&mut self, tenant: TenantId, capacity: u32, refill_per_sec: f64) {
        self.rate_limits
            .insert(tenant, TokenBucket::new(capacity, refill_per_sec));
    }

    /// Manually credits deploy tokens to a rate-limited tenant (e.g.
    /// an operator override); a no-op for unlimited tenants.
    pub fn credit_tenant(&mut self, tenant: TenantId, tokens: u32) {
        if let Some(bucket) = self.rate_limits.get_mut(&tenant) {
            bucket.credit(tokens);
        }
    }

    /// Deploys refused by per-tenant rate limiting so far.
    pub fn rate_limited_count(&self) -> u64 {
        self.rate_limited
    }

    /// Container currently bound to a storage location.
    pub fn installed_container(&self, component: Uuid) -> Option<ContainerId> {
        self.installed.get(&component).copied()
    }

    /// Evacuates a component from this service: drops its
    /// container binding **and** its SUIT rollback state, so the
    /// component can later be re-homed here at the same manifest
    /// sequence (fleet hook handoff). Returns the container that was
    /// bound, which the caller is expected to retire from the host.
    pub fn forget_component(&mut self, component: Uuid) -> Option<ContainerId> {
        self.manager.forget_component(component);
        self.installed.remove(&component)
    }

    /// Updates accepted so far.
    pub fn accepted_count(&self) -> u64 {
        self.manager.accepted_count()
    }

    /// Updates rejected so far.
    pub fn rejected_count(&self) -> u64 {
        self.manager.rejected_count()
    }

    /// The outcome of the most recent [`LiveUpdateService::apply`], for
    /// the `/suit/report` poll resource. `None` until the first apply.
    pub fn last_outcome(&self) -> Option<&DeployPoll> {
        self.last_outcome.as_ref()
    }

    /// The most recent apply outcome for one component — the
    /// tenant-safe poll: another tenant's later deploy never overwrites
    /// it. `None` until some apply got far enough to name the
    /// component.
    pub fn component_outcome(&self, component: Uuid) -> Option<&DeployPoll> {
        self.component_outcomes.get(&component)
    }

    /// Transfers evicted from staging as abandoned so far.
    pub fn staging_evicted_count(&self) -> u64 {
        self.staged.evicted_count()
    }

    /// Stages a whole payload under a URI in one call (the block-wise
    /// path is [`LiveUpdateService::stage_block`]).
    pub fn stage_payload(&mut self, uri: &str, payload: &[u8]) {
        self.staged.insert(uri, payload);
    }

    /// Appends one Block1 chunk to a staged payload, with the shared
    /// receiver-side discipline of [`fc_net::block::stage_chunk`]
    /// (in-order, hole-free; `restart` — Block1 `num == 0` — clears
    /// any stale staging for the URI; zero-length terminal blocks and
    /// retransmitted duplicates are idempotent). The staging map is
    /// bounded: starting a transfer beyond the capacity evicts the
    /// least-recently-touched *abandoned* one, whose client then sees
    /// its next chunk rejected and restarts from block 0.
    pub fn stage_block(&mut self, uri: &str, offset: usize, chunk: &[u8], restart: bool) -> bool {
        self.staged.stage(uri, offset, chunk, restart)
    }

    /// The staged bytes for a URI, if any.
    pub fn staged_payload(&self, uri: &str) -> Option<&[u8]> {
        self.staged.get(uri)
    }

    /// Drops a staged payload (to abort a transfer; a successful
    /// [`LiveUpdateService::apply`] drops its payload itself).
    pub fn unstage(&mut self, uri: &str) -> bool {
        self.staged.remove(uri).is_some()
    }

    /// Applies a signed manifest to the **running** host: verify →
    /// rollback-check → digest-check the staged payload → deploy
    /// through the shard control lane → commit the sequence number.
    ///
    /// Placement policy (see [`FcHost::deploy_verified`]): when the
    /// manifest's component names a registered hook, the container
    /// attaches to it on the hook's *current* shard, atomically
    /// replacing this component's previous container; otherwise it
    /// installs unattached on the least-loaded shard.
    ///
    /// On success the staged payload is dropped — a long-lived host
    /// taking updates forever must not accumulate one image per
    /// deploy. On error it stays staged, so a corrected manifest can
    /// retry without re-transferring the payload.
    ///
    /// # Errors
    ///
    /// Any [`LiveDeployError`]. On error nothing changed: the previous
    /// container keeps running and the sequence number is not burned,
    /// so a corrected payload can retry under the same manifest. A
    /// [`LiveDeployError::RateLimited`] refusal additionally bumps the
    /// host's `deploys_rate_limited` stat.
    ///
    /// Every apply — accepted or rejected — records a [`DeployPoll`]
    /// retrievable via [`LiveUpdateService::last_outcome`] and, once
    /// the component is known, [`LiveUpdateService::component_outcome`]
    /// (served as `/suit/report` by the CoAP front-end), so a client
    /// whose in-band response was lost can poll the verdict.
    pub fn apply(
        &mut self,
        host: &FcHost,
        envelope: &[u8],
    ) -> Result<DeployReport, LiveDeployError> {
        self.apply_tagged(host, envelope, None)
    }

    /// As [`LiveUpdateService::apply`], with the transport token of the
    /// deploying exchange: on a durable host the accepted deploy is
    /// journaled under `token`, so a restored node answers a
    /// retransmission of the same exchange with the pre-crash report
    /// instead of re-running (and rejecting) the manifest.
    pub fn apply_tagged(
        &mut self,
        host: &FcHost,
        envelope: &[u8],
        token: Option<Vec<u8>>,
    ) -> Result<DeployReport, LiveDeployError> {
        let mut component = None;
        let result = self.apply_inner(host, envelope, &mut component, token);
        self.applies += 1;
        let poll = match &result {
            Ok(report) => DeployPoll {
                serial: self.applies,
                component,
                accepted: true,
                sequence: Some(report.sequence),
                detail: report.to_string(),
            },
            Err(e) => DeployPoll {
                serial: self.applies,
                component,
                accepted: false,
                sequence: None,
                detail: e.to_string(),
            },
        };
        if let Some(component) = component {
            self.component_outcomes.insert(component, poll.clone());
        }
        self.last_outcome = Some(poll);
        result
    }

    fn apply_inner(
        &mut self,
        host: &FcHost,
        envelope: &[u8],
        component_out: &mut Option<Uuid>,
        token: Option<Vec<u8>>,
    ) -> Result<DeployReport, LiveDeployError> {
        let pending = self.manager.begin(envelope)?;
        *component_out = Some(pending.manifest.component);
        // Any failure below keeps the named payload staged for the
        // documented retry — so refresh its LRU recency now, or other
        // tenants' upload churn could evict it while this tenant fixes
        // the manifest or waits out its rate limit.
        self.staged.touch(&pending.manifest.uri);
        // The envelope is authenticated: throttle by the tenant behind
        // the verified key before any further work.
        let tenant = self
            .tenants
            .get(&pending.key_id)
            .copied()
            .unwrap_or_default();
        if let Some(bucket) = self.rate_limits.get_mut(&tenant) {
            if !bucket.try_take(host.env().now_us()) {
                self.rate_limited += 1;
                host.stats()
                    .deploys_rate_limited
                    .fetch_add(1, Ordering::Relaxed);
                host.telemetry().trace_hook(
                    host.env().now_us(),
                    TraceKind::DeployRateLimited,
                    &pending.manifest.component,
                    u64::from(tenant),
                );
                return Err(LiveDeployError::RateLimited { tenant });
            }
        }
        let uri = pending.manifest.uri.clone();
        let Some(payload) = self.staged.get(&uri).map(<[u8]>::to_vec) else {
            return Err(LiveDeployError::PayloadUnavailable { uri });
        };
        // Front-load the digest/size check so a bad payload never
        // touches the running engine. Routing the failure through
        // `complete` keeps the manager's rejection counters truthful.
        if let Err(e) = self.manager.check_payload(&pending, &payload) {
            let _ = self.manager.complete(pending, payload);
            return Err(e.into());
        }
        let component = pending.manifest.component;
        let image = FcProgram::from_bytes(&payload)
            .map_err(|e| LiveDeployError::Host(HostError::Engine(EngineError::Parse(e))))?;
        let request = contract_request_for(&image);
        let hook = host.shard_of_hook(component).is_some().then_some(component);
        let replace = self.installed.get(&component).copied();
        let outcome = host.deploy_verified(
            &component_name(component),
            tenant,
            &payload,
            request,
            hook,
            replace,
        )?;
        // The deploy landed: commit the SUIT state. `check_payload`
        // already validated this exact payload, so this cannot fail.
        let journal_payload = host.journal().map(|_| payload.clone());
        let ready = self.manager.complete(pending, payload)?;
        self.installed.insert(component, outcome.container);
        self.staged.remove(&uri);
        let report = DeployReport {
            container: outcome.container,
            component,
            shard: outcome.shard,
            sequence: ready.manifest.sequence,
            attached: outcome.hook.is_some(),
            replaced: outcome.replaced,
        };
        // The manifest commit point: the accepted deploy (payload +
        // committed sequence + report) must be durable before the
        // reply can leave the node. A dead node's reply is suppressed
        // by the transport layer (`FcHost::alive`).
        if let Some(journal) = host.journal() {
            journal.commit_deploy(&crate::journal::DeployRecord {
                tenant,
                uri,
                payload: journal_payload.unwrap_or_default(),
                token,
                report,
            });
        }
        Ok(report)
    }

    /// Replays one journaled deploy onto a restored host: the verified
    /// payload installs under its **pre-crash container id** on the
    /// component's current shard, and the SUIT rollback floor is
    /// seeded to the committed sequence — so a pre-crash lower-sequence
    /// manifest re-staged after the restore is rejected with the same
    /// verdict as before the crash.
    ///
    /// # Errors
    ///
    /// [`LiveDeployError::Host`] when the image no longer parses or
    /// the host refuses the install (both indicate corrupted state the
    /// caller should surface, not swallow).
    pub fn restore_component(
        &mut self,
        host: &FcHost,
        rec: &crate::journal::DeployRecord,
    ) -> Result<(), LiveDeployError> {
        let component = rec.report.component;
        let image = FcProgram::from_bytes(&rec.payload)
            .map_err(|e| LiveDeployError::Host(HostError::Engine(EngineError::Parse(e))))?;
        let request = contract_request_for(&image);
        let hook = host.shard_of_hook(component).is_some().then_some(component);
        let replace = self.installed.get(&component).copied();
        host.deploy_restored(
            &component_name(component),
            rec.tenant,
            &rec.payload,
            request,
            hook,
            replace,
            rec.report.container,
        )?;
        self.manager.seed_sequence(component, rec.report.sequence);
        self.installed.insert(component, rec.report.container);
        Ok(())
    }

    /// Seeds the accepted-update counter from journal-recovered state
    /// (see [`fc_suit::UpdateManager::seed_accepted`]).
    pub fn seed_accepted(&mut self, accepted: u64) {
        self.manager.seed_accepted(accepted);
    }

    /// As [`LiveUpdateService::forget_component`], journaling the
    /// evacuation when `host` is durable so a restored node does not
    /// resurrect the departed component.
    pub fn forget_component_on(&mut self, host: &FcHost, component: Uuid) -> Option<ContainerId> {
        if let Some(journal) = host.journal() {
            journal.forget(component);
        }
        self.forget_component(component)
    }
}
