//! Live SUIT deployment onto a running [`FcHost`].
//!
//! The paper's headline capability (§5) is secure over-the-air
//! deployment onto a *running* device: a signed SUIT manifest arrives,
//! its payload is fetched block-wise over CoAP, and only a
//! fully-verified image reaches the engine. The single-device flow
//! lives in `fc_core::deploy`; this module is the hosting-runtime
//! version — the same security pipeline, but the install lands
//! **through the shard control lane** while the host keeps serving
//! events:
//!
//! 1. payload blocks are staged into the service (over
//!    [`crate::CoapFront::dispatch_suit`] or directly via
//!    [`LiveUpdateService::stage_payload`]);
//! 2. the manifest's COSE/Schnorr envelope is verified against the
//!    tenant's provisioned key, rollback-checked, and the staged
//!    payload digest-checked — **before** the engine is touched;
//! 3. the verified image rides one [`FcHost::deploy_verified`] call:
//!    placement consults the *current* hook→shard routing
//!    (post-migration), and the install + attach + predecessor
//!    retirement execute as one control-lane command between event
//!    drains — no quiescing, no torn state;
//! 4. only then is the SUIT sequence number committed, so a deploy the
//!    engine rejects never burns it.
//!
//! Every mutation of a live hook thus funnels through one serialization
//! point per shard — the control lane — mirroring how containerized
//! runtimes route all lifecycle through a single agent channel instead
//! of side-channel mutation of a running sandbox.

use std::collections::HashMap;

use fc_core::deploy::{component_name, contract_request_for};
use fc_core::engine::{ContainerId, EngineError};
use fc_kvstore::TenantId;
use fc_rbpf::program::FcProgram;
use fc_suit::{UpdateError, UpdateManager, Uuid, VerifyingKey};

use crate::host::{FcHost, HostError};

/// Why a live deployment was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveDeployError {
    /// Manifest/payload validation failed (signature, rollback, size,
    /// digest).
    Update(UpdateError),
    /// The host (or its target shard's engine) rejected the deploy.
    Host(HostError),
    /// The manifest's payload URI has not been staged.
    PayloadUnavailable {
        /// The URI the manifest named.
        uri: String,
    },
}

impl std::fmt::Display for LiveDeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveDeployError::Update(e) => write!(f, "update rejected: {e}"),
            LiveDeployError::Host(e) => write!(f, "host rejected: {e}"),
            LiveDeployError::PayloadUnavailable { uri } => {
                write!(f, "payload `{uri}` not staged")
            }
        }
    }
}

impl std::error::Error for LiveDeployError {}

impl From<UpdateError> for LiveDeployError {
    fn from(e: UpdateError) -> Self {
        LiveDeployError::Update(e)
    }
}

impl From<HostError> for LiveDeployError {
    fn from(e: HostError) -> Self {
        LiveDeployError::Host(e)
    }
}

/// What an accepted live deploy did — the report sent back through the
/// reply lane (the CoAP response payload, via its `Display`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployReport {
    /// The freshly installed container.
    pub container: ContainerId,
    /// The manifest's storage location (= target hook UUID).
    pub component: Uuid,
    /// Shard the container landed on.
    pub shard: usize,
    /// The committed SUIT sequence number.
    pub sequence: u64,
    /// Whether the container was attached to the component's hook
    /// (`false` for an unattached install: the component names no
    /// registered hook).
    pub attached: bool,
    /// Predecessor container retired by this deploy, if any.
    pub replaced: Option<ContainerId>,
}

impl std::fmt::Display for DeployReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deployed container={} shard={} seq={} attached={}",
            self.container, self.shard, self.sequence, self.attached
        )?;
        if let Some(old) = self.replaced {
            write!(f, " replaced={old}")?;
        }
        Ok(())
    }
}

/// The host-owned SUIT update service: provisioned trust anchors,
/// per-component sequence state, block-wise payload staging, and the
/// component → container bindings that make re-deploys replace their
/// predecessor.
///
/// # Examples
///
/// ```
/// use fc_core::deploy::author_update;
/// use fc_core::contract::ContractOffer;
/// use fc_core::helpers_impl::standard_helper_ids;
/// use fc_core::hooks::{Hook, HookKind, HookPolicy};
/// use fc_host::{FcHost, HostConfig, LiveUpdateService};
/// use fc_rtos::platform::{Engine, Platform};
/// use fc_suit::SigningKey;
///
/// let mut host = FcHost::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
/// let hook = Hook::new("tick", HookKind::Timer, HookPolicy::First);
/// let hook_id = hook.id;
/// host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
///
/// // Commissioning: provision the tenant's verification key.
/// let key = SigningKey::from_seed(b"tenant-a-maintainer");
/// let mut updates = LiveUpdateService::new();
/// updates.provision_tenant(b"tenant-a", key.verifying_key(), 1);
///
/// // Author side: sign an image for the hook; stage + apply it live.
/// let app = fc_core::apps::thread_counter();
/// let (envelope, payload) = author_update(&app, hook_id, 1, "app-v1", &key, b"tenant-a");
/// updates.stage_payload("app-v1", &payload);
/// let report = updates.apply(&host, &envelope).unwrap();
/// assert!(report.attached);
/// let fired = host.fire_sync(hook_id, &[], &[]).unwrap();
/// assert_eq!(fired.executions.len(), 1);
/// host.shutdown();
/// ```
#[derive(Debug, Default)]
pub struct LiveUpdateService {
    manager: UpdateManager,
    tenants: HashMap<Vec<u8>, TenantId>,
    installed: HashMap<Uuid, ContainerId>,
    staged: HashMap<String, Vec<u8>>,
}

impl LiveUpdateService {
    /// Creates a service with no trust anchors.
    pub fn new() -> Self {
        LiveUpdateService::default()
    }

    /// Provisions a tenant: its signing key id, verification key and
    /// tenant id for store scoping (done at commissioning, not over
    /// the air).
    pub fn provision_tenant(&mut self, key_id: &[u8], key: VerifyingKey, tenant: TenantId) {
        self.manager.trust(key_id, key);
        self.tenants.insert(key_id.to_vec(), tenant);
    }

    /// Container currently bound to a storage location.
    pub fn installed_container(&self, component: Uuid) -> Option<ContainerId> {
        self.installed.get(&component).copied()
    }

    /// Updates accepted so far.
    pub fn accepted_count(&self) -> u64 {
        self.manager.accepted_count()
    }

    /// Updates rejected so far.
    pub fn rejected_count(&self) -> u64 {
        self.manager.rejected_count()
    }

    /// Stages a whole payload under a URI in one call (the block-wise
    /// path is [`LiveUpdateService::stage_block`]).
    pub fn stage_payload(&mut self, uri: &str, payload: &[u8]) {
        self.staged.insert(uri.to_owned(), payload.to_vec());
    }

    /// Appends one Block1 chunk to a staged payload, with the shared
    /// receiver-side discipline of [`fc_net::block::stage_chunk`]
    /// (in-order, hole-free; `restart` — Block1 `num == 0` — clears
    /// any stale staging for the URI; zero-length terminal blocks and
    /// retransmitted duplicates are idempotent).
    pub fn stage_block(&mut self, uri: &str, offset: usize, chunk: &[u8], restart: bool) -> bool {
        fc_net::block::stage_chunk(
            self.staged.entry(uri.to_owned()).or_default(),
            offset,
            chunk,
            restart,
        )
    }

    /// The staged bytes for a URI, if any.
    pub fn staged_payload(&self, uri: &str) -> Option<&[u8]> {
        self.staged.get(uri).map(|v| v.as_slice())
    }

    /// Drops a staged payload (to abort a transfer; a successful
    /// [`LiveUpdateService::apply`] drops its payload itself).
    pub fn unstage(&mut self, uri: &str) -> bool {
        self.staged.remove(uri).is_some()
    }

    /// Applies a signed manifest to the **running** host: verify →
    /// rollback-check → digest-check the staged payload → deploy
    /// through the shard control lane → commit the sequence number.
    ///
    /// Placement policy (see [`FcHost::deploy_verified`]): when the
    /// manifest's component names a registered hook, the container
    /// attaches to it on the hook's *current* shard, atomically
    /// replacing this component's previous container; otherwise it
    /// installs unattached on the least-loaded shard.
    ///
    /// On success the staged payload is dropped — a long-lived host
    /// taking updates forever must not accumulate one image per
    /// deploy. On error it stays staged, so a corrected manifest can
    /// retry without re-transferring the payload.
    ///
    /// # Errors
    ///
    /// Any [`LiveDeployError`]. On error nothing changed: the previous
    /// container keeps running and the sequence number is not burned,
    /// so a corrected payload can retry under the same manifest.
    pub fn apply(
        &mut self,
        host: &FcHost,
        envelope: &[u8],
    ) -> Result<DeployReport, LiveDeployError> {
        let pending = self.manager.begin(envelope)?;
        let uri = pending.manifest.uri.clone();
        let Some(payload) = self.staged.get(&uri).cloned() else {
            return Err(LiveDeployError::PayloadUnavailable { uri });
        };
        // Front-load the digest/size check so a bad payload never
        // touches the running engine. Routing the failure through
        // `complete` keeps the manager's rejection counters truthful.
        if let Err(e) = self.manager.check_payload(&pending, &payload) {
            let _ = self.manager.complete(pending, payload);
            return Err(e.into());
        }
        let tenant = self
            .tenants
            .get(&pending.key_id)
            .copied()
            .unwrap_or_default();
        let component = pending.manifest.component;
        let image = FcProgram::from_bytes(&payload)
            .map_err(|e| LiveDeployError::Host(HostError::Engine(EngineError::Parse(e))))?;
        let request = contract_request_for(&image);
        let hook = host.shard_of_hook(component).is_some().then_some(component);
        let replace = self.installed.get(&component).copied();
        let outcome = host.deploy_verified(
            &component_name(component),
            tenant,
            &payload,
            request,
            hook,
            replace,
        )?;
        // The deploy landed: commit the SUIT state. `check_payload`
        // already validated this exact payload, so this cannot fail.
        let ready = self.manager.complete(pending, payload)?;
        self.installed.insert(component, outcome.container);
        self.staged.remove(&uri);
        Ok(DeployReport {
            container: outcome.container,
            component,
            shard: outcome.shard,
            sequence: ready.manifest.sequence,
            attached: outcome.hook.is_some(),
            replaced: outcome.replaced,
        })
    }
}
