//! The concurrent multi-tenant host: N engine shards behind per-hook
//! event queues, with lifecycle routed through a shard map keyed by
//! container id.
//!
//! ## Placement
//!
//! * **Hooks own shards.** Each registered hook is assigned a shard
//!   round-robin; every event for that hook executes on that shard's
//!   engine. A hook fire therefore runs its attached containers in
//!   attachment order on one thread — per-event results are *identical*
//!   to the single-threaded [`HostingEngine::fire_hook`] path (the
//!   differential suite in `tests/host_differential.rs` enforces this).
//! * **Containers follow their hooks.** `install` places a container
//!   on the least-loaded shard; the first `attach` migrates the slot
//!   (eject/adopt) to the hook's shard when it is still unattached, and
//!   later attaches to hooks on *other* shards install replicas from
//!   the retained image. Replicas share the container id — and hence
//!   the same local store in the shared [`HostEnv`] — so placement is
//!   invisible to the container.
//!
//! ## Concurrency model
//!
//! All placement state (hook→shard routing, container→shard carriage,
//! attachment sets, retained specs) lives behind one `RwLock`:
//!
//! * **fires** take the read lock for routing *and hold it across the
//!   inbox push*, so an accepted event always lands on a live queue —
//!   a migration can never shed it by racing the enqueue;
//! * **lifecycle mutations** (install, attach, deploy, migrate, …)
//!   take the write lock for their whole critical section, which
//!   serializes them against each other and against every fire. A
//!   deploy racing a migration of its target hook therefore resolves
//!   in caller order: whichever runs second sees the other's placement.
//!
//! Shard workers never touch the placement lock, so queued events keep
//! draining while a lifecycle operation holds it — lifecycle stalls
//! *enqueues*, never execution. This is what lets a SUIT deploy land on
//! a loaded host without quiescing it.
//!
//! Throughput scales with shards because distinct hooks (in the CoAP
//! front-end: distinct tenant resources) dispatch concurrently, while
//! everything genuinely shared (stores, sensors, console, clock) lives
//! in the `HostEnv` behind sharded locks.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use fc_core::contract::{ContractOffer, ContractRequest};
use fc_core::engine::{
    ContainerId, EngineError, ExecTier, ExecutionReport, HookReport, HostRegion, HostingEngine,
};
use fc_core::helpers_impl::HostEnv;
use fc_core::hooks::Hook;
use fc_kvstore::TenantId;
use fc_rbpf::vm::ExecConfig;
use fc_rtos::platform::{Engine as EngineFlavor, Platform};
use fc_suit::Uuid;

use crate::journal::{CaptureSink, DurabilityConfig, DurableTag, Journal, JournalMedia};
use crate::queue::{Accepted, BatchAccepted, Event, Inbox, ShedPolicy};
use crate::rebalance::{RebalanceConfig, Rebalancer};
use crate::shard::{spawn_shard, Command, OutstandingGauge, ShardParams, ShardReport, SharedInbox};
use crate::stats::HostStats;
use crate::telemetry::{
    CounterId, GaugeId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, ShardMetrics,
    TelemetryConfig, TenantMetrics, TraceKind,
};

/// Why a host operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The hook is not registered with this host.
    UnknownHook(Uuid),
    /// The container id is not known to this host.
    UnknownContainer(ContainerId),
    /// The shard index does not name a shard of this host.
    InvalidShard(usize),
    /// The event was shed by backpressure.
    Shed,
    /// The owning shard rejected the operation.
    Engine(EngineError),
    /// The shard worker is gone (host shut down).
    Disconnected,
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::UnknownHook(u) => write!(f, "unknown hook {u}"),
            HostError::UnknownContainer(c) => write!(f, "unknown container {c}"),
            HostError::InvalidShard(s) => write!(f, "invalid shard index {s}"),
            HostError::Shed => write!(f, "event shed by backpressure"),
            HostError::Engine(e) => write!(f, "engine: {e}"),
            HostError::Disconnected => write!(f, "shard worker disconnected"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<EngineError> for HostError {
    fn from(e: EngineError) -> Self {
        HostError::Engine(e)
    }
}

/// Configuration of a [`FcHost`].
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Worker threads (= engine shards).
    pub workers: usize,
    /// Bounded capacity of each per-hook event queue.
    pub queue_capacity: usize,
    /// Events a worker drains per inbox lock acquisition.
    pub drain_batch: usize,
    /// Deficit-round-robin quantum, in VM instructions per round.
    pub quantum_insns: u64,
    /// Backpressure policy for full queues.
    pub shed: ShedPolicy,
    /// In-band rebalancing: every `rebalance_interval` dispatched
    /// events the host takes a [`Rebalancer`] observation itself — no
    /// caller-driven `observe()` needed. `0` disables the trigger
    /// (observation stays caller-driven, as before).
    pub rebalance_interval: u64,
    /// Tuning for the in-band rebalancer (ignored while
    /// `rebalance_interval` is 0).
    pub rebalance: RebalanceConfig,
    /// Observability plane: keyed metrics registry + event trace ring
    /// (see [`crate::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Execution tier shard workers dispatch to for the
    /// Femto-Container flavour (default: [`ExecTier::Threaded`], the
    /// handler-chain interpreter; see `fc_core::engine::ExecTier`).
    pub exec_tier: ExecTier,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: 4,
            queue_capacity: 256,
            drain_batch: 16,
            quantum_insns: 4096,
            shed: ShedPolicy::default(),
            rebalance_interval: 0,
            rebalance: RebalanceConfig::default(),
            telemetry: TelemetryConfig::default(),
            exec_tier: ExecTier::default(),
        }
    }
}

/// Retained installation inputs, for installing replicas on additional
/// shards when a container attaches to hooks owned elsewhere.
struct ContainerSpec {
    name: String,
    tenant: TenantId,
    image: Arc<[u8]>,
    request: ContractRequest,
}

/// One hook event for the batched fire path: the context bytes plus the
/// host-granted regions, exactly as [`FcHost::fire`] takes them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HookEvent {
    /// Event context handed to every attached container.
    pub ctx: Vec<u8>,
    /// Host-granted regions (e.g. a writable packet buffer).
    pub extra: Vec<HostRegion>,
}

impl HookEvent {
    /// Builds an event from borrowed context and regions.
    pub fn new(ctx: &[u8], extra: &[HostRegion]) -> Self {
        HookEvent {
            ctx: ctx.to_vec(),
            extra: extra.to_vec(),
        }
    }
}

/// What a successful [`FcHost::deploy_verified`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployOutcome {
    /// The freshly installed container.
    pub container: ContainerId,
    /// Shard it landed on (the target hook's current shard, or the
    /// least-loaded shard for an unattached install).
    pub shard: usize,
    /// Hook the container was attached to, when the deploy targeted
    /// one.
    pub hook: Option<Uuid>,
    /// Previous container retired by this deploy, if any.
    pub replaced: Option<ContainerId>,
}

struct Shard {
    inbox: SharedInbox,
    worker: Option<JoinHandle<()>>,
}

/// Routing and carriage state: every map a lifecycle decision reads or
/// writes, guarded by one `RwLock` (see the module docs on the
/// concurrency model).
struct Placement {
    /// Hook → owning shard. **The single routing authority**: every
    /// fire, attach, detach, deploy and migration resolves the shard
    /// here, so a rebalanced hook's events and lifecycle always land on
    /// its *current* shard.
    hook_shard: HashMap<Uuid, usize>,
    /// Hook descriptor + offer, retained for re-registration on the
    /// target shard when the rebalancer migrates the hook.
    hook_specs: HashMap<Uuid, (Hook, ContractOffer)>,
    next_hook_shard: usize,
    /// Container → shards carrying it (first entry = home/primary).
    container_shards: BTreeMap<ContainerId, Vec<usize>>,
    /// Container → hooks it is attached to.
    attachments: HashMap<ContainerId, HashSet<Uuid>>,
    specs: HashMap<ContainerId, ContainerSpec>,
    /// Containers installed per shard (placement heuristic).
    shard_load: Vec<usize>,
    next_id: ContainerId,
}

impl Placement {
    fn least_loaded(&self) -> usize {
        self.shard_load
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| **n)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The concurrent multi-tenant hosting runtime (see module docs).
///
/// # Examples
///
/// ```
/// use fc_core::contract::{ContractOffer, ContractRequest};
/// use fc_core::helpers_impl::standard_helper_ids;
/// use fc_core::hooks::{Hook, HookKind, HookPolicy};
/// use fc_host::{FcHost, HostConfig};
/// use fc_rbpf::program::ProgramBuilder;
/// use fc_rtos::platform::{Engine, Platform};
///
/// let mut host = FcHost::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
/// let hook = Hook::new("tick", HookKind::Timer, HookPolicy::First);
/// let hook_id = hook.id;
/// host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
/// let image = ProgramBuilder::new().asm("mov r0, 42\nexit").unwrap().build();
/// let id = host.install("answer", 1, &image.to_bytes(), ContractRequest::default()).unwrap();
/// host.attach(id, hook_id).unwrap();
/// let report = host.fire_sync(hook_id, &[], &[]).unwrap();
/// assert_eq!(report.combined, Some(42));
/// host.shutdown();
/// ```
pub struct FcHost {
    shards: Vec<Shard>,
    env: Arc<HostEnv>,
    stats: Arc<HostStats>,
    /// Keyed metrics + trace ring, recorded into by producers and
    /// shard workers alike (lock-free; see [`crate::telemetry`]).
    telemetry: Arc<MetricsRegistry>,
    /// Events accepted but not yet executed (quiescence tracking).
    outstanding: Arc<OutstandingGauge>,
    config: HostConfig,
    platform: Platform,
    flavor: EngineFlavor,
    placement: RwLock<Placement>,
    /// The folded-in rebalancer, present when `rebalance_interval > 0`.
    /// `try_lock` keeps the trigger non-reentrant and lets every other
    /// producer skip past while one observation runs.
    inband: Option<Mutex<Rebalancer>>,
    /// Dispatched-event count at which the next in-band observation
    /// fires.
    next_rebalance_at: AtomicU64,
    /// Write-ahead journal, when this host is durable. Shared with the
    /// shard workers (event commits) and the stores' capture sink.
    journal: Option<Arc<Journal>>,
}

impl FcHost {
    /// Starts a host with `config.workers` shards over a fresh shared
    /// environment.
    pub fn new(platform: Platform, flavor: EngineFlavor, config: HostConfig) -> Self {
        Self::with_env(
            platform,
            flavor,
            config,
            Arc::new(HostEnv::new(fc_kvstore::DEFAULT_CAPACITY)),
        )
    }

    /// Starts a host over an existing shared environment.
    pub fn with_env(
        platform: Platform,
        flavor: EngineFlavor,
        config: HostConfig,
        env: Arc<HostEnv>,
    ) -> Self {
        Self::with_env_and_journal(platform, flavor, config, env, None)
    }

    /// Starts a **durable** host: every event commit, accepted deploy
    /// and bare store write is journaled to `media` before its reply
    /// can leave, and the journal folds to a snapshot every
    /// [`DurabilityConfig::snapshot_threshold`] records. With
    /// `durability.enabled == false` this is exactly [`FcHost::new`]
    /// (no journal, no capture, bit-identical outputs).
    pub fn with_durability(
        platform: Platform,
        flavor: EngineFlavor,
        config: HostConfig,
        media: &JournalMedia,
        durability: DurabilityConfig,
    ) -> Self {
        let journal = durability
            .enabled
            .then(|| Journal::create(media, durability));
        Self::with_env_and_journal(
            platform,
            flavor,
            config,
            Arc::new(HostEnv::new(fc_kvstore::DEFAULT_CAPACITY)),
            journal,
        )
    }

    /// Starts a host over an existing environment and, optionally, an
    /// existing journal (the restore path hands in a quiet journal
    /// recovered from crashed media).
    pub(crate) fn with_env_and_journal(
        platform: Platform,
        flavor: EngineFlavor,
        mut config: HostConfig,
        env: Arc<HostEnv>,
        journal: Option<Arc<Journal>>,
    ) -> Self {
        if let Some(journal) = &journal {
            // The stores tell the journal about every committed write:
            // captured into the worker's commit record inside an
            // event, journaled as a bare record outside one.
            env.stores()
                .set_sink(Arc::new(CaptureSink::new(Arc::clone(journal))));
        }
        let workers = config.workers.max(1);
        // A zero-capacity queue could never hold an event; DropOldest
        // would displace from an empty queue.
        config.queue_capacity = config.queue_capacity.max(1);
        let stats = Arc::new(HostStats::new());
        let telemetry = Arc::new(MetricsRegistry::new(config.telemetry, workers));
        let outstanding = Arc::new(OutstandingGauge::new());
        let params = ShardParams {
            // A zero quantum would never let any queue's deficit go
            // positive and livelock the scheduling loop.
            quantum_insns: config.quantum_insns.clamp(1, i64::MAX as u64) as i64,
            drain_batch: config.drain_batch.max(1),
            exec_tier: config.exec_tier,
        };
        let shards = (0..workers)
            .map(|i| {
                let inbox: SharedInbox = Arc::new((Mutex::new(Inbox::new()), Condvar::new()));
                let worker = spawn_shard(
                    i,
                    platform,
                    flavor,
                    Arc::clone(&env),
                    Arc::clone(&inbox),
                    Arc::clone(&stats),
                    Arc::clone(&outstanding),
                    Arc::clone(&telemetry),
                    params,
                    journal.clone(),
                );
                Shard {
                    inbox,
                    worker: Some(worker),
                }
            })
            .collect();
        FcHost {
            shards,
            env,
            stats,
            telemetry,
            outstanding,
            platform,
            flavor,
            placement: RwLock::new(Placement {
                hook_shard: HashMap::new(),
                hook_specs: HashMap::new(),
                next_hook_shard: 0,
                container_shards: BTreeMap::new(),
                attachments: HashMap::new(),
                specs: HashMap::new(),
                shard_load: vec![0; workers],
                next_id: 1,
            }),
            inband: (config.rebalance_interval > 0)
                .then(|| Mutex::new(Rebalancer::new(config.rebalance))),
            next_rebalance_at: AtomicU64::new(config.rebalance_interval),
            config,
            journal,
        }
    }

    /// The host's journal, when durable.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Whether the host is still powered: `false` once a seeded
    /// [`crate::CrashPlan`] fired on its journal media. A non-durable
    /// host is always alive.
    pub fn alive(&self) -> bool {
        self.journal.as_ref().is_none_or(|j| j.alive())
    }

    /// Number of engine shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The host's platform model.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The interpreter flavour shards run.
    pub fn flavor(&self) -> EngineFlavor {
        self.flavor
    }

    /// The shared host environment (stores, sensors, console, clock).
    pub fn env(&self) -> &HostEnv {
        &self.env
    }

    /// Shared handle to the environment.
    pub fn env_handle(&self) -> Arc<HostEnv> {
        Arc::clone(&self.env)
    }

    /// Dispatch statistics.
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// The observability registry: keyed metrics plus the bounded
    /// event-trace ring (see [`crate::telemetry`]).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Builds a point-in-time [`MetricsSnapshot`] of this host: ledger
    /// counters from [`HostStats`] (so the snapshot reconciles exactly
    /// with `stats()` by construction), keyed per-hook/per-tenant/
    /// per-shard sections from the telemetry registry, and per-shard
    /// queue depth plus busy cycles observed at scrape time.
    ///
    /// This is a *scrape-path* operation: it takes each inbox lock
    /// briefly for the queue depth and round-trips every shard's
    /// control lane for busy cycles. The dispatch path records nothing
    /// here.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            nodes: 1,
            ..MetricsSnapshot::default()
        };
        let s = &self.stats;
        let pairs = [
            (CounterId::Enqueued, &s.enqueued),
            (CounterId::Dispatched, &s.dispatched),
            (CounterId::Shed, &s.shed),
            (CounterId::Displaced, &s.displaced),
            (CounterId::Batches, &s.batches),
            (CounterId::Migrations, &s.migrations),
            (CounterId::Deploys, &s.deploys),
            (CounterId::DeploysRateLimited, &s.deploys_rate_limited),
            (CounterId::InbandObservations, &s.inband_observations),
            (CounterId::Faults, &s.faults),
            (CounterId::Insns, &s.insns),
        ];
        for (id, counter) in pairs {
            snap.set_counter(id, counter.load(Ordering::Relaxed));
        }
        snap.latency = HistogramSnapshot(s.latency.load());
        if let Some(journal) = &self.journal {
            let ops = journal.ops();
            snap.set_counter(CounterId::JournalAppends, ops.appends);
            snap.set_counter(CounterId::JournalBytes, ops.bytes);
            snap.set_counter(CounterId::JournalFolds, ops.folds);
        }
        self.telemetry.fill_snapshot(&mut snap);
        // With keyed recording disabled the registry contributes no
        // tenant rows; fall back to the ledger (no latency breakdown).
        if snap.tenants.is_empty() {
            for (tenant, t) in self.stats.tenants_shared().iter() {
                snap.tenants.push(TenantMetrics {
                    tenant: *tenant,
                    executions: t.executions,
                    insns: t.insns,
                    latency: HistogramSnapshot::default(),
                });
            }
        }
        // One shard row per worker even when the registry is disabled.
        while snap.shards.len() < self.shards.len() {
            snap.shards.push(ShardMetrics {
                node: 0,
                shard: snap.shards.len() as u32,
                dispatched: 0,
                queue_depth: 0,
                busy_cycles: 0,
                latency: HistogramSnapshot::default(),
            });
        }
        let mut max_depth = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let depth = shard.inbox.0.lock().expect("inbox lock").depth() as u64;
            max_depth = max_depth.max(depth);
            snap.shards[i].queue_depth = depth;
        }
        for report in self.shard_reports() {
            if let Some(row) = snap.shards.get_mut(report.shard) {
                row.busy_cycles = report.sim_cycles;
            }
        }
        snap.gauge_max(GaugeId::QueueDepthMax, max_depth);
        snap.gauge_max(GaugeId::VirtualNowUs, self.env.now_us());
        snap
    }

    /// Shard a container currently calls home, if installed.
    pub fn shard_of(&self, container: ContainerId) -> Option<usize> {
        self.placement
            .read()
            .expect("placement lock")
            .container_shards
            .get(&container)
            .and_then(|s| s.first().copied())
    }

    /// Shard owning a hook's event queue, if registered.
    pub fn shard_of_hook(&self, hook: Uuid) -> Option<usize> {
        self.placement
            .read()
            .expect("placement lock")
            .hook_shard
            .get(&hook)
            .copied()
    }

    fn send_command(&self, shard: usize, command: Command) {
        let (lock, cvar) = &*self.shards[shard].inbox;
        lock.lock().expect("inbox lock").control.push_back(command);
        cvar.notify_one();
    }

    /// Overrides the finite-execution budgets on every shard, for
    /// installed containers and future installs alike.
    pub fn set_exec_config(&self, config: ExecConfig) {
        for shard in 0..self.shards.len() {
            self.send_command(shard, Command::SetExecConfig { config });
        }
    }

    /// Registers a launchpad hook, assigning it a shard round-robin and
    /// creating its bounded event queue there. Re-registering an id
    /// keeps the hook on its current shard — including a shard the
    /// rebalancer moved it to.
    pub fn register_hook(&self, hook: Hook, offer: ContractOffer) {
        let mut p = self.placement.write().expect("placement lock");
        let shard = match p.hook_shard.get(&hook.id) {
            Some(&s) => s,
            None => {
                let s = p.next_hook_shard % self.shards.len();
                p.next_hook_shard += 1;
                p.hook_shard.insert(hook.id, s);
                s
            }
        };
        p.hook_specs.insert(hook.id, (hook.clone(), offer.clone()));
        self.telemetry
            .trace_hook(self.env.now_us(), TraceKind::Lifecycle, &hook.id, 1);
        let (lock, cvar) = &*self.shards[shard].inbox;
        {
            let mut inbox = lock.lock().expect("inbox lock");
            inbox.add_queue(hook.id);
            inbox.control.push_back(Command::RegisterHook {
                hook,
                offer,
                seed_cycles: 0,
            });
        }
        cvar.notify_one();
    }

    /// Unregisters a hook: its queue is removed (pending events are
    /// shed — their reply senders drop, which synchronous callers see
    /// as [`HostError::Shed`]), its engine registration is dropped, and
    /// its per-hook cycle accounting on the owning shard is pruned so a
    /// later re-registration of the same UUID starts from a clean
    /// baseline. Attached containers stay installed and are returned in
    /// attachment order.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] / [`HostError::Disconnected`].
    pub fn unregister_hook(&self, hook: Uuid) -> Result<Vec<ContainerId>, HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let shard = *p
            .hook_shard
            .get(&hook)
            .ok_or(HostError::UnknownHook(hook))?;
        // Shed the pending events first: once the queue is gone they
        // can never execute, and their outstanding slots must release
        // or quiesce() would hang.
        let dropped = {
            let (lock, _) = &*self.shards[shard].inbox;
            lock.lock().expect("inbox lock").remove_queue(hook)
        };
        for _ in &dropped {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            self.stats.displaced.fetch_add(1, Ordering::Relaxed);
            self.outstanding.sub();
        }
        if !dropped.is_empty() {
            self.telemetry.record_shed(&hook, dropped.len() as u64);
            self.telemetry.trace_hook(
                self.env.now_us(),
                TraceKind::Shed,
                &hook,
                dropped.len() as u64,
            );
        }
        self.telemetry
            .trace_hook(self.env.now_us(), TraceKind::Lifecycle, &hook, 0);
        let (tx, rx) = sync_channel(1);
        self.send_command(shard, Command::UnregisterHook { hook, reply: tx });
        let (attached, _cycles) = Self::recv(rx)?;
        p.hook_shard.remove(&hook);
        p.hook_specs.remove(&hook);
        for container in &attached {
            if let Some(set) = p.attachments.get_mut(container) {
                set.remove(&hook);
            }
        }
        // Release the placement lock before touching the in-band
        // rebalancer: an in-band observation holds that lock while
        // waiting for the placement write lock, so taking them in the
        // opposite order here would deadlock.
        drop(p);
        if let Some(inband) = &self.inband {
            if let Ok(mut rebalancer) = inband.lock() {
                rebalancer.forget_hook(hook);
            }
        }
        Ok(attached)
    }

    fn recv<T>(rx: Receiver<T>) -> Result<T, HostError> {
        rx.recv().map_err(|_| HostError::Disconnected)
    }

    /// Installs an application on the least-loaded shard.
    ///
    /// # Errors
    ///
    /// [`HostError::Engine`] carrying the shard's verdict (parse,
    /// verification or contract failure).
    pub fn install(
        &self,
        name: &str,
        tenant: TenantId,
        image: &[u8],
        request: ContractRequest,
    ) -> Result<ContainerId, HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let shard = p.least_loaded();
        let id = p.next_id;
        p.next_id += 1;
        // One shared allocation serves the install command, the
        // retained spec and every future replica placement.
        let image: Arc<[u8]> = Arc::from(image);
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Install {
                id,
                name: name.to_owned(),
                tenant,
                image: Arc::clone(&image),
                request: request.clone(),
                reply: tx,
            },
        );
        Self::recv(rx)??;
        p.container_shards.insert(id, vec![shard]);
        p.shard_load[shard] += 1;
        p.specs.insert(
            id,
            ContainerSpec {
                name: name.to_owned(),
                tenant,
                image,
                request,
            },
        );
        Ok(id)
    }

    /// Ensures `container` exists on `shard`, migrating the slot there
    /// when nothing pins it to its current shard (cheap, no
    /// re-verification) or installing a replica from the retained image
    /// otherwise.
    ///
    /// `moving` names a hook whose attachment is being migrated *along
    /// with* the container (the rebalancer's case): an attachment to
    /// that hook does not pin the slot, because the hook is moving to
    /// `shard` too. `None` recovers the plain attach-time rule — only
    /// a fully unattached slot moves.
    fn place_on_locked(
        &self,
        p: &mut Placement,
        container: ContainerId,
        shard: usize,
        moving: Option<Uuid>,
    ) -> Result<(), HostError> {
        let shards = p
            .container_shards
            .get(&container)
            .ok_or(HostError::UnknownContainer(container))?
            .clone();
        if shards.contains(&shard) {
            return Ok(());
        }
        let unpinned = p
            .attachments
            .get(&container)
            .is_none_or(|set| set.iter().all(|h| Some(*h) == moving));
        if unpinned && shards.len() == 1 {
            // Migrate: eject from the home shard, adopt on the target.
            let home = shards[0];
            let (tx, rx) = sync_channel(1);
            self.send_command(
                home,
                Command::Eject {
                    id: container,
                    reply: tx,
                },
            );
            let slot = Self::recv(rx)?.ok_or(HostError::UnknownContainer(container))?;
            self.send_command(
                shard,
                Command::Adopt {
                    slot: Box::new(slot),
                },
            );
            p.container_shards.insert(container, vec![shard]);
            p.shard_load[home] -= 1;
            p.shard_load[shard] += 1;
            return Ok(());
        }
        // Replica: re-install the retained image under the same id.
        let spec = p
            .specs
            .get(&container)
            .ok_or(HostError::UnknownContainer(container))?;
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Install {
                id: container,
                name: spec.name.clone(),
                tenant: spec.tenant,
                image: spec.image.clone(),
                request: spec.request.clone(),
                reply: tx,
            },
        );
        Self::recv(rx)??;
        p.container_shards.entry(container).or_default().push(shard);
        p.shard_load[shard] += 1;
        Ok(())
    }

    /// Attaches a container to a hook, placing it on the hook's shard
    /// first (see module docs on placement).
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] / [`HostError::UnknownContainer`] /
    /// [`HostError::Engine`] when the hook's offer does not cover the
    /// container's helper calls.
    pub fn attach(&self, container: ContainerId, hook: Uuid) -> Result<(), HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let shard = *p
            .hook_shard
            .get(&hook)
            .ok_or(HostError::UnknownHook(hook))?;
        self.place_on_locked(&mut p, container, shard, None)?;
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Attach {
                id: container,
                hook,
                reply: tx,
            },
        );
        Self::recv(rx)??;
        p.attachments.entry(container).or_default().insert(hook);
        Ok(())
    }

    /// Detaches a container from a hook.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] / [`HostError::Engine`].
    pub fn detach(&self, container: ContainerId, hook: Uuid) -> Result<(), HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let shard = *p
            .hook_shard
            .get(&hook)
            .ok_or(HostError::UnknownHook(hook))?;
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Detach {
                id: container,
                hook,
                reply: tx,
            },
        );
        Self::recv(rx)??;
        if let Some(set) = p.attachments.get_mut(&container) {
            set.remove(&hook);
        }
        Ok(())
    }

    /// Removes a container from every shard carrying it, dropping its
    /// local store.
    pub fn remove(&self, container: ContainerId) -> bool {
        let mut p = self.placement.write().expect("placement lock");
        self.remove_locked(&mut p, container)
    }

    fn remove_locked(&self, p: &mut Placement, container: ContainerId) -> bool {
        let Some(shards) = p.container_shards.remove(&container) else {
            return false;
        };
        let mut removed = false;
        for shard in shards {
            let (tx, rx) = sync_channel(1);
            self.send_command(
                shard,
                Command::Remove {
                    id: container,
                    reply: tx,
                },
            );
            removed |= Self::recv(rx).unwrap_or(false);
            p.shard_load[shard] = p.shard_load[shard].saturating_sub(1);
        }
        p.attachments.remove(&container);
        p.specs.remove(&container);
        removed
    }

    /// Deploys a **verified** application onto the running host through
    /// the shard control lane — the live half of the SUIT update flow
    /// (signature, rollback and digest checks belong to the layer
    /// above, [`crate::deploy::LiveUpdateService`]).
    ///
    /// Placement consults the *current* routing state: a deploy
    /// targeting `hook` lands on whatever shard the hook owns **now**
    /// (post-migration), and an unattached install (`hook` = `None`)
    /// lands least-loaded. When the deploy targets a hook, the install,
    /// the attach and the retirement of `replace` execute as **one
    /// control-lane command** on the owning shard, between event
    /// drains: every event fired at the hook sees either the old
    /// container or the new one, never both and never neither.
    ///
    /// Serialization: this holds the placement write lock end to end,
    /// so a deploy and a [`FcHost::migrate_hook`] of the same hook
    /// resolve in caller order — if the migration wins, the deploy
    /// lands on the hook's new shard; if the deploy wins, the migration
    /// moves the fresh container along with the hook. Queued events
    /// keep executing throughout (workers never take the placement
    /// lock); only new enqueues wait.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] when `hook` is not registered, or
    /// [`HostError::Engine`] with the shard's verdict — the previous
    /// container (if any) keeps running untouched then.
    pub fn deploy_verified(
        &self,
        name: &str,
        tenant: TenantId,
        image: &[u8],
        request: ContractRequest,
        hook: Option<Uuid>,
        replace: Option<ContainerId>,
    ) -> Result<DeployOutcome, HostError> {
        self.deploy_inner(name, tenant, image, request, hook, replace, None)
    }

    /// Replays a journaled deploy on a restored host: the container
    /// lands under its **pre-crash id** (so retransmitted replies stay
    /// byte-identical) and the deploy counter is *not* bumped — the
    /// restore seeds it from the journal's counter state instead.
    #[allow(clippy::too_many_arguments)] // same fan-in as deploy_inner
    pub(crate) fn deploy_restored(
        &self,
        name: &str,
        tenant: TenantId,
        image: &[u8],
        request: ContractRequest,
        hook: Option<Uuid>,
        replace: Option<ContainerId>,
        forced_id: ContainerId,
    ) -> Result<DeployOutcome, HostError> {
        self.deploy_inner(name, tenant, image, request, hook, replace, Some(forced_id))
    }

    /// Bumps the container-id allocator past `next` — called at the
    /// end of a restore so fresh deploys never collide with replayed
    /// pre-crash ids.
    pub(crate) fn ensure_next_container_id(&self, next: ContainerId) {
        let mut p = self.placement.write().expect("placement lock");
        p.next_id = p.next_id.max(next);
    }

    #[allow(clippy::too_many_arguments)] // internal fan-in, two call sites
    fn deploy_inner(
        &self,
        name: &str,
        tenant: TenantId,
        image: &[u8],
        request: ContractRequest,
        hook: Option<Uuid>,
        replace: Option<ContainerId>,
        forced_id: Option<ContainerId>,
    ) -> Result<DeployOutcome, HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let shard = match hook {
            Some(h) => *p.hook_shard.get(&h).ok_or(HostError::UnknownHook(h))?,
            None => p.least_loaded(),
        };
        let id = match forced_id {
            Some(id) => {
                p.next_id = p.next_id.max(id + 1);
                id
            }
            None => {
                let id = p.next_id;
                p.next_id += 1;
                id
            }
        };
        let image: Arc<[u8]> = Arc::from(image);
        // The old container rides the same command — an atomic swap —
        // only when it actually lives on the target shard (it always
        // does in the SUIT flow: containers follow their hooks).
        let swap = match (hook, replace) {
            (Some(_), Some(old))
                if p.container_shards
                    .get(&old)
                    .is_some_and(|s| s.contains(&shard)) =>
            {
                Some(old)
            }
            _ => None,
        };
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Deploy {
                id,
                name: name.to_owned(),
                tenant,
                image: Arc::clone(&image),
                request: request.clone(),
                attach: hook,
                replace: swap,
                reply: tx,
            },
        );
        Self::recv(rx)??;
        p.container_shards.insert(id, vec![shard]);
        p.shard_load[shard] += 1;
        p.specs.insert(
            id,
            ContainerSpec {
                name: name.to_owned(),
                tenant,
                image,
                request,
            },
        );
        if let Some(h) = hook {
            p.attachments.entry(id).or_default().insert(h);
        }
        // Retire the replaced container everywhere it was carried; the
        // target shard already removed it inside the Deploy command.
        let mut replaced = None;
        if let Some(old) = replace {
            if let Some(shards) = p.container_shards.remove(&old) {
                replaced = Some(old);
                for s in shards {
                    if swap == Some(old) && s == shard {
                        p.shard_load[s] = p.shard_load[s].saturating_sub(1);
                        continue;
                    }
                    let (tx, rx) = sync_channel(1);
                    self.send_command(s, Command::Remove { id: old, reply: tx });
                    let _ = Self::recv(rx);
                    p.shard_load[s] = p.shard_load[s].saturating_sub(1);
                }
            }
            p.attachments.remove(&old);
            p.specs.remove(&old);
        }
        if forced_id.is_none() {
            self.stats.deploys.fetch_add(1, Ordering::Relaxed);
        }
        let at = self.env.now_us();
        match hook {
            Some(h) => self
                .telemetry
                .trace_hook(at, TraceKind::Deploy, &h, u64::from(id)),
            None => self
                .telemetry
                .trace(at, TraceKind::Deploy, 0, u64::from(id)),
        }
        Ok(DeployOutcome {
            container: id,
            shard,
            hook,
            replaced,
        })
    }

    /// Executes a container synchronously on its home shard.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownContainer`] / [`HostError::Engine`]; VM
    /// faults are inside the report, as with the single engine.
    pub fn execute(
        &self,
        container: ContainerId,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<ExecutionReport, HostError> {
        let shard = self
            .shard_of(container)
            .ok_or(HostError::UnknownContainer(container))?;
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Execute {
                id: container,
                ctx: ctx.to_vec(),
                extra: extra.to_vec(),
                reply: tx,
            },
        );
        Ok(Self::recv(rx)??)
    }

    fn enqueue(
        &self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
        reply: Option<std::sync::mpsc::SyncSender<Result<HookReport, EngineError>>>,
        durable_tag: Option<DurableTag>,
    ) -> Result<Accepted, HostError> {
        let outcome = {
            // Hold the routing read lock across the push: a migration
            // (write) cannot land between shard resolution and the
            // inbox append, so an accepted event is never shed by a
            // concurrent move.
            let p = self.placement.read().expect("placement lock");
            let shard = *p
                .hook_shard
                .get(&hook)
                .ok_or(HostError::UnknownHook(hook))?;
            let event = Event {
                hook,
                ctx: ctx.to_vec(),
                extra: extra.to_vec(),
                enqueued_at: Instant::now(),
                reply,
                durable_tag,
            };
            // Count the event as outstanding *before* it becomes
            // visible to the worker: once the inbox lock drops, the
            // worker may execute it (and decrement) immediately, and
            // quiesce() must never observe a published-but-uncounted
            // event.
            self.outstanding.add();
            let (lock, cvar) = &*self.shards[shard].inbox;
            let outcome = {
                let mut inbox = lock.lock().expect("inbox lock");
                inbox.enqueue(event, self.config.queue_capacity, self.config.shed)
            };
            match outcome {
                Ok((accepted, displaced)) => {
                    cvar.notify_one();
                    self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.trace_hook(
                        self.env.now_us(),
                        TraceKind::Enqueue,
                        &hook,
                        shard as u64,
                    );
                    if displaced.is_some() {
                        // The displaced event never executes; its
                        // outstanding slot transfers to the new event.
                        self.stats.shed.fetch_add(1, Ordering::Relaxed);
                        self.stats.displaced.fetch_add(1, Ordering::Relaxed);
                        self.outstanding.sub();
                        self.telemetry.record_shed(&hook, 1);
                        self.telemetry
                            .trace_hook(self.env.now_us(), TraceKind::Shed, &hook, 1);
                    }
                    Ok(accepted)
                }
                Err(_event) => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    self.outstanding.sub();
                    self.telemetry.record_shed(&hook, 1);
                    self.telemetry
                        .trace_hook(self.env.now_us(), TraceKind::Shed, &hook, 1);
                    Err(HostError::Shed)
                }
            }
        };
        self.maybe_rebalance();
        outcome
    }

    /// Fires a hook asynchronously: the event is queued on the hook's
    /// shard and executed by its worker.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`], or [`HostError::Shed`] under
    /// backpressure (the event did not enter the queue).
    pub fn fire(
        &self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<Accepted, HostError> {
        self.enqueue(hook, ctx, extra, None, None)
    }

    /// Fires a hook and returns a receiver for its report, without
    /// blocking — the building block for pipelined load generators and
    /// the differential suite.
    ///
    /// # Errors
    ///
    /// As [`FcHost::fire`]. A later `recv` error means the event was
    /// displaced by `DropOldest` backpressure after acceptance.
    pub fn fire_with_reply(
        &self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<Receiver<Result<HookReport, EngineError>>, HostError> {
        let (tx, rx) = sync_channel(1);
        self.enqueue(hook, ctx, extra, Some(tx), None)?;
        Ok(rx)
    }

    /// As [`FcHost::fire_with_reply`], with a durable exchange tag: on
    /// a durable host the event's commit record is journaled under
    /// `tag` before the reply is sent, so a restored node can answer a
    /// retransmission of the same exchange without re-executing.
    pub fn fire_with_reply_tagged(
        &self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
        tag: Option<DurableTag>,
    ) -> Result<Receiver<Result<HookReport, EngineError>>, HostError> {
        let (tx, rx) = sync_channel(1);
        self.enqueue(hook, ctx, extra, Some(tx), tag)?;
        Ok(rx)
    }

    /// Queues a whole vector of events for one hook with a **single
    /// queue round-trip**: one outstanding-gauge update, one inbox lock
    /// acquisition, one worker wakeup for the entire batch — the
    /// amortised fire path the CoAP front-end's batched reads use.
    ///
    /// Backpressure applies per event, exactly as if each had been
    /// offered through [`FcHost::fire`] in order; the returned
    /// [`BatchAccepted`] says how many entered the queue and how many
    /// were shed.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`]. Individual shed events are reported
    /// in the counts, not as an error.
    pub fn fire_batch(
        &self,
        hook: Uuid,
        events: Vec<HookEvent>,
    ) -> Result<BatchAccepted, HostError> {
        self.enqueue_batch(hook, events, false, None)
            .map(|(counts, _)| counts)
    }

    /// As [`FcHost::fire_batch`], but every event also gets a reply
    /// receiver, returned in offer order. A shed event's receiver
    /// errors on `recv` (its sender is dropped without a send), which
    /// callers map to [`HostError::Shed`] — identical to the
    /// single-event [`FcHost::fire_with_reply`] contract.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`].
    pub fn fire_batch_with_reply(
        &self,
        hook: Uuid,
        events: Vec<HookEvent>,
    ) -> Result<Vec<Receiver<Result<HookReport, EngineError>>>, HostError> {
        self.enqueue_batch(hook, events, true, None)
            .map(|(_, receivers)| receivers)
    }

    /// As [`FcHost::fire_batch_with_reply`], with per-event durable
    /// tags (parallel to `events`; shorter vectors leave the tail
    /// untagged). See [`FcHost::fire_with_reply_tagged`].
    pub fn fire_batch_with_reply_tagged(
        &self,
        hook: Uuid,
        events: Vec<HookEvent>,
        tags: Vec<DurableTag>,
    ) -> Result<Vec<Receiver<Result<HookReport, EngineError>>>, HostError> {
        self.enqueue_batch(hook, events, true, Some(tags))
            .map(|(_, receivers)| receivers)
    }

    #[allow(clippy::type_complexity)] // reply receivers mirror fire_with_reply
    fn enqueue_batch(
        &self,
        hook: Uuid,
        events: Vec<HookEvent>,
        with_reply: bool,
        tags: Option<Vec<DurableTag>>,
    ) -> Result<
        (
            BatchAccepted,
            Vec<Receiver<Result<HookReport, EngineError>>>,
        ),
        HostError,
    > {
        let result = {
            let p = self.placement.read().expect("placement lock");
            let shard = *p
                .hook_shard
                .get(&hook)
                .ok_or(HostError::UnknownHook(hook))?;
            let n = events.len();
            let mut receivers = Vec::with_capacity(if with_reply { n } else { 0 });
            let now = Instant::now();
            let mut tags = tags.unwrap_or_default().into_iter();
            let queued: Vec<Event> = events
                .into_iter()
                .map(|e| {
                    let reply = if with_reply {
                        let (tx, rx) = sync_channel(1);
                        receivers.push(rx);
                        Some(tx)
                    } else {
                        None
                    };
                    Event {
                        hook,
                        ctx: e.ctx,
                        extra: e.extra,
                        enqueued_at: now,
                        reply,
                        durable_tag: tags.next(),
                    }
                })
                .collect();
            // As with the single-event path: count the batch as
            // outstanding *before* it becomes visible to the worker.
            self.outstanding.add_n(n as u64);
            let (lock, cvar) = &*self.shards[shard].inbox;
            let outcome = {
                let mut inbox = lock.lock().expect("inbox lock");
                inbox.enqueue_batch(queued, self.config.queue_capacity, self.config.shed)
            };
            cvar.notify_one();
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.stats
                .enqueued
                .fetch_add(outcome.accepted as u64, Ordering::Relaxed);
            if outcome.accepted > 0 {
                // One span for the whole batch: the amortised path
                // stays amortised in the trace too.
                self.telemetry.trace_hook(
                    self.env.now_us(),
                    TraceKind::Enqueue,
                    &hook,
                    shard as u64,
                );
            }
            let shed = (outcome.rejected + outcome.displaced) as u64;
            if shed > 0 {
                self.stats.shed.fetch_add(shed, Ordering::Relaxed);
                self.stats
                    .displaced
                    .fetch_add(outcome.displaced as u64, Ordering::Relaxed);
                self.telemetry.record_shed(&hook, shed);
                self.telemetry
                    .trace_hook(self.env.now_us(), TraceKind::Shed, &hook, shed);
                // Rejected events never execute; displaced events'
                // slots transfer to the newly accepted ones.
                for _ in 0..shed {
                    self.outstanding.sub();
                }
            }
            Ok((outcome, receivers))
        };
        self.maybe_rebalance();
        result
    }

    /// Fires a hook and blocks for its report.
    ///
    /// # Errors
    ///
    /// As [`FcHost::fire`], plus [`HostError::Shed`] when the queued
    /// event was displaced before executing and [`HostError::Engine`]
    /// for engine-side failures.
    pub fn fire_sync(
        &self,
        hook: Uuid,
        ctx: &[u8],
        extra: &[HostRegion],
    ) -> Result<HookReport, HostError> {
        let rx = self.fire_with_reply(hook, ctx, extra)?;
        match rx.recv() {
            Ok(result) => result.map_err(HostError::Engine),
            // The event was displaced from the queue: its reply sender
            // was dropped without a send.
            Err(_) => Err(HostError::Shed),
        }
    }

    /// The in-band rebalancing trigger: when the dispatched-event
    /// counter crosses the configured interval, take one [`Rebalancer`]
    /// observation right here, on the producer's thread. `try_lock`
    /// keeps concurrent producers from stacking up behind one
    /// observation — everyone but the trigger-winner skips past.
    ///
    /// A failed migration inside the observation is deliberately
    /// swallowed: [`FcHost::migrate_hook`] guarantees the hook stays
    /// registered and routable on the target with its pending events
    /// intact, so the host remains coherent and the next window simply
    /// observes again.
    fn maybe_rebalance(&self) {
        let Some(inband) = &self.inband else { return };
        let dispatched = self.stats.dispatched.load(Ordering::Relaxed);
        if dispatched < self.next_rebalance_at.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut rebalancer) = inband.try_lock() else {
            return;
        };
        // Re-check under the lock: another producer may have just
        // observed and advanced the threshold.
        let dispatched = self.stats.dispatched.load(Ordering::Relaxed);
        if dispatched < self.next_rebalance_at.load(Ordering::Relaxed) {
            return;
        }
        self.next_rebalance_at.store(
            dispatched + self.config.rebalance_interval.max(1),
            Ordering::Relaxed,
        );
        self.stats
            .inband_observations
            .fetch_add(1, Ordering::Relaxed);
        let _ = rebalancer.observe(self);
    }

    /// Blocks (parked, not spinning) until every accepted event has
    /// executed.
    pub fn quiesce(&self) {
        self.outstanding.wait_zero();
    }

    /// Point-in-time reports from every shard.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (tx, rx) = sync_channel(1);
            self.send_command(shard, Command::Report { reply: tx });
            if let Ok(r) = Self::recv(rx) {
                reports.push(r);
            }
        }
        reports
    }

    /// Migrates a hook — queue, registration, and attached containers —
    /// onto another shard. This is the rebalancer's primitive, but it
    /// is also safe to call directly for explicit placement.
    ///
    /// The move is atomic with respect to event routing because it
    /// holds the placement write lock: no producer can resolve a route
    /// while it runs. In order:
    ///
    /// 1. the hook's pending events are pulled off the old shard's
    ///    inbox (they were accepted and must not be shed by the move);
    /// 2. the hook is unregistered from the old engine, yielding the
    ///    authoritative attachment order plus the cycles the hook
    ///    accrued there, which travel to the target so rebalancer
    ///    accounting stays monotone;
    /// 3. the hook is re-registered on the target shard from the
    ///    retained descriptor/offer;
    /// 4. each attached container is placed on the target — the slot
    ///    itself migrates (eject/adopt, keeping metrics and meter) when
    ///    only the moving hook pins it, otherwise a replica installs
    ///    from the retained image — and re-attached in order;
    /// 5. replicas left on the old shard with no remaining attachment
    ///    there are ejected and dropped (their shared local store
    ///    survives; only [`FcHost::remove`] deletes stores);
    /// 6. the pending events are injected into the target queue, in
    ///    their original FIFO order.
    ///
    /// Per-event reports after a migration are identical to before it —
    /// attachment order, container identity and the shared environment
    /// all travel with the hook (`tests/host_differential.rs`).
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownHook`] / [`HostError::InvalidShard`], or any
    /// engine error from replica installation. On error the hook is
    /// left registered and routable **on the target shard** with its
    /// pending events intact (they execute against whatever subset of
    /// containers re-attached — never lost, so quiescence and event
    /// accounting always balance); only a missing or partially
    /// re-attached container distinguishes the failed state.
    pub fn migrate_hook(&self, hook: Uuid, to: usize) -> Result<(), HostError> {
        let mut p = self.placement.write().expect("placement lock");
        let from = *p
            .hook_shard
            .get(&hook)
            .ok_or(HostError::UnknownHook(hook))?;
        if to >= self.shards.len() {
            return Err(HostError::InvalidShard(to));
        }
        if from == to {
            return Ok(());
        }
        // 1. Pending events come off the old queue first so the old
        // worker cannot race them while the hook moves. From here on
        // they MUST reach a live queue on every path, or their
        // outstanding-gauge slots would never release and quiesce()
        // would hang forever.
        let pending = {
            let (lock, _) = &*self.shards[from].inbox;
            lock.lock().expect("inbox lock").remove_queue(hook)
        };
        // 2. Unregister on the old engine; its attachment order is the
        // contract for identical per-event semantics on the target, and
        // its accrued cycles seed the target's accounting.
        let (tx, rx) = sync_channel(1);
        self.send_command(from, Command::UnregisterHook { hook, reply: tx });
        let (attached, carried_cycles) = match Self::recv(rx) {
            Ok(reply) => reply,
            Err(e) => {
                // The old worker is gone (host shutting down): put the
                // events back where they came from and bail.
                let (lock, cvar) = &*self.shards[from].inbox;
                lock.lock().expect("inbox lock").inject(hook, pending);
                cvar.notify_one();
                return Err(e);
            }
        };
        // 3. Register on the target from the retained spec.
        let (desc, offer) = p
            .hook_specs
            .get(&hook)
            .cloned()
            .expect("registered hook retains its spec");
        {
            let (lock, cvar) = &*self.shards[to].inbox;
            let mut inbox = lock.lock().expect("inbox lock");
            inbox.add_queue(hook);
            inbox.control.push_back(Command::RegisterHook {
                hook: desc,
                offer,
                seed_cycles: carried_cycles,
            });
            cvar.notify_one();
        }
        // Flip the routing authority now: every subsequent attach,
        // detach or fire — including the re-attaches below — must see
        // the hook on its *current* shard.
        p.hook_shard.insert(hook, to);
        // 4. Containers follow their hook, in attachment order. A
        // failure stops re-attachment but NOT the hand-over below —
        // the pending events must still reach the target queue.
        let mut outcome = Ok(());
        for &container in &attached {
            let placed = self
                .place_on_locked(&mut p, container, to, Some(hook))
                .and_then(|()| {
                    let (tx, rx) = sync_channel(1);
                    self.send_command(
                        to,
                        Command::Attach {
                            id: container,
                            hook,
                            reply: tx,
                        },
                    );
                    Self::recv(rx)?.map_err(HostError::Engine)
                });
            if let Err(e) = placed {
                outcome = Err(e);
                break;
            }
        }
        // 5. Drop replicas orphaned on the old shard.
        for &container in &attached {
            self.drop_orphaned_replica_locked(&mut p, container, from);
        }
        // 6. Hand the pending events to the new worker.
        if !pending.is_empty() {
            let (lock, cvar) = &*self.shards[to].inbox;
            lock.lock().expect("inbox lock").inject(hook, pending);
            cvar.notify_one();
        }
        if outcome.is_ok() {
            self.stats.migrations.fetch_add(1, Ordering::Relaxed);
            self.telemetry.trace_hook(
                self.env.now_us(),
                TraceKind::Migrate,
                &hook,
                ((from as u64) << 32) | to as u64,
            );
        }
        outcome
    }

    /// Ejects and drops `container`'s replica on `shard` when no hook
    /// on that shard still uses it and another shard carries the
    /// container. The slot is discarded; the container's local store
    /// is keyed by id in the shared environment and survives.
    fn drop_orphaned_replica_locked(
        &self,
        p: &mut Placement,
        container: ContainerId,
        shard: usize,
    ) {
        let Some(shards) = p.container_shards.get(&container) else {
            return;
        };
        if shards.len() < 2 || !shards.contains(&shard) {
            return;
        }
        let still_used = p
            .attachments
            .get(&container)
            .is_some_and(|hooks| hooks.iter().any(|h| p.hook_shard.get(h) == Some(&shard)));
        if still_used {
            return;
        }
        let (tx, rx) = sync_channel(1);
        self.send_command(
            shard,
            Command::Eject {
                id: container,
                reply: tx,
            },
        );
        // The ejected slot drops here; only FcHost::remove touches the
        // shared store.
        let _ = Self::recv(rx);
        if let Some(shards) = p.container_shards.get_mut(&container) {
            shards.retain(|s| *s != shard);
        }
        p.shard_load[shard] = p.shard_load[shard].saturating_sub(1);
    }

    /// Drains outstanding work and stops every shard worker.
    pub fn shutdown(&mut self) {
        self.quiesce();
        for shard in &self.shards {
            let (lock, cvar) = &*shard.inbox;
            lock.lock().expect("inbox lock").open = false;
            cvar.notify_all();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for FcHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for FcHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.placement.read().expect("placement lock");
        f.debug_struct("FcHost")
            .field("shards", &self.shards.len())
            .field("hooks", &p.hook_shard.len())
            .field("containers", &p.container_shards.len())
            .finish()
    }
}

// The host façade itself crosses threads: `&FcHost` can be shared by
// several producer threads firing events concurrently, and — since the
// placement state moved behind its lock — lifecycle mutation (install,
// attach, deploy, migrate) is safe from any thread too, which is what
// lets the in-band rebalancer and live deploys run while producers
// keep firing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<FcHost>();
    assert_send::<HostingEngine>();
};
