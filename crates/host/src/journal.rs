//! Durable node state: an in-simulation write-ahead journal plus
//! snapshot store, with seeded crash injection.
//!
//! A node that can be killed at any instant must be able to restart
//! from **local durable state only** and look, to its clients, exactly
//! like a node that never crashed: no committed kv write lost, no
//! event executed twice, and retransmissions of pre-crash exchanges
//! answered byte-identically. This module provides the storage half of
//! that contract; `LocalNode::restore` (see `service`) provides the
//! rebuild half.
//!
//! # Media and record format
//!
//! [`JournalMedia`] models a tiny two-slot flash device: two byte
//! arrays plus an **active-slot index** whose update is the only
//! atomic operation the medium guarantees (the classic A/B-image
//! discipline the paper's SUIT bootloaders rely on). A slot holds a
//! 5-byte header (`"FCJ1"` magic + format version) followed by
//! records in the codec discipline of [`crate::wire`]:
//!
//! ```text
//! | len: u32 | crc32: u32 | body: len bytes |
//! ```
//!
//! `crc32` guards `body`. A record that announces more bytes than the
//! slot holds is a **torn tail** — the crash interrupted the append —
//! and recovery keeps the durable prefix before it. A *complete*
//! record whose CRC or body does not check out is corruption, and
//! recovery **fails closed** with a typed [`JournalError`]: it never
//! panics and never half-applies.
//!
//! Record bodies are tagged: `1` an event commit (kv writes + wire
//! outcome + exchange tag), `2` a bare kv write (host-side seeding
//! outside any event), `3` an accepted live deploy (payload +
//! committed sequence + report), `4` a component evacuation, `5` a
//! snapshot. A snapshot is only legal as the first record of a slot.
//!
//! # Snapshot fold
//!
//! Every [`DurabilityConfig::snapshot_threshold`] appended records the
//! journal **folds**: it recovers its own active slot in memory,
//! collapses it to one snapshot record (final kv values, newest deploy
//! per component, the most recent tagged exchanges, aggregate counter
//! seeds), writes header + snapshot to the *inactive* slot, and flips
//! the active index. A crash mid-fold ([`CrashPoint::MidSnapshot`])
//! leaves the half-written inactive slot unreferenced — the flip never
//! happened, so recovery still reads the full pre-fold journal.
//!
//! # Crash injection
//!
//! A seeded [`CrashPlan`] arms the media to "lose power" at a chosen
//! [`CrashPoint`]. After the crash every append is refused and the
//! owner is expected to stay silent (no replies leave a dead node);
//! the differential harness then drops the host entirely and restores
//! a fresh one from the media, proving that nothing the journal did
//! not capture was needed.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fc_core::engine::{ContainerId, HookReport};
use fc_kvstore::{Scope, StoreSink, TenantId};
use fc_suit::Uuid;

use crate::telemetry::HistogramSnapshot;
use crate::wire::{
    get_deploy_report, get_node_error, get_report, put_bytes, put_deploy_report, put_i64,
    put_node_error, put_report, put_str, put_u32, put_u64, put_u8, put_uuid, Reader, WireError,
};
use crate::{DeployReport, NodeError};

/// Slot header: magic plus format version.
const MAGIC: &[u8; 4] = b"FCJ1";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 5;

const TAG_COMMIT: u8 = 1;
const TAG_BARE_KV: u8 = 2;
const TAG_DEPLOY: u8 = 3;
const TAG_FORGET: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;

// ------------------------------------------------------------- crc32

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the journal's
/// record guard. Table built at compile time; no dependency needed.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------ configuration

/// Durability switches for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Master switch. When `false` the node journals nothing and its
    /// behaviour is bit-identical to a node built without this module.
    pub enabled: bool,
    /// Appended records that trigger a snapshot fold; `0` disables
    /// folding (the journal grows without bound).
    pub snapshot_threshold: u64,
    /// Tagged exchanges a snapshot retains for post-restore dedup
    /// (mirrors the transport's own bounded reply cache). Oldest
    /// exchanges beyond the cap fall out at fold time.
    pub retain_exchanges: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: true,
            snapshot_threshold: 256,
            retain_exchanges: 128,
        }
    }
}

impl DurabilityConfig {
    /// Durability off: no journal, no overhead, bit-identical outputs.
    pub fn disabled() -> Self {
        DurabilityConfig {
            enabled: false,
            ..DurabilityConfig::default()
        }
    }
}

// ---------------------------------------------------- crash injection

/// Where a seeded fault-injection crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power fails after the event executed but before its commit
    /// record reaches the medium: the write is lost, the client
    /// retransmits, the restored node re-executes.
    PreCommit,
    /// Power fails after the commit record is durable but before the
    /// reply leaves the node: the retransmission must be answered from
    /// the journal, byte-identically, without re-executing.
    PostCommitPreReply,
    /// Power fails halfway through writing a snapshot fold: the
    /// inactive slot is torn but the active index never flipped.
    MidSnapshot,
    /// Power fails halfway through appending the commit record itself:
    /// the journal ends in a torn record recovery must tolerate.
    TornRecord,
}

/// A seeded crash: fire at `point` after `after` earlier operations of
/// the relevant kind (commit appends, or folds for
/// [`CrashPoint::MidSnapshot`]) have completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The seam to crash at.
    pub point: CrashPoint,
    /// Operations of the relevant kind to let through first.
    pub after: u64,
}

// -------------------------------------------------------------- media

#[derive(Debug, Default)]
struct MediaInner {
    slots: [Vec<u8>; 2],
    active: usize,
    crashed: bool,
    plan: Option<CrashPlan>,
}

/// The simulated two-slot storage device a [`Journal`] writes to. The
/// handle is cheap to clone and — crucially — **survives the node**:
/// crash tests drop the whole host and hand the same media to
/// [`Journal::recover`], exactly like flash surviving a power cycle.
#[derive(Debug, Clone, Default)]
pub struct JournalMedia {
    inner: Arc<Mutex<MediaInner>>,
}

impl JournalMedia {
    /// A blank device.
    pub fn new() -> Self {
        JournalMedia::default()
    }

    /// Arms a seeded crash. Replaces any previous plan.
    pub fn set_crash_plan(&self, plan: CrashPlan) {
        self.lock().plan = Some(plan);
    }

    /// Whether the device has "lost power" (a [`CrashPlan`] fired).
    /// A crashed device refuses all further writes until recovered.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Bytes currently in the active slot (header included) — the
    /// journal length the recovery bench plots against restore time.
    pub fn journal_len(&self) -> usize {
        let m = self.lock();
        m.slots[m.active].len()
    }

    /// Mutates the active slot's raw bytes — the fault-injection
    /// surface for the journal-corruption matrix (truncate the tail,
    /// flip a CRC byte, duplicate a record, zero the file).
    pub fn corrupt_active(&self, f: impl FnOnce(&mut Vec<u8>)) {
        let mut m = self.lock();
        let active = m.active;
        f(&mut m.slots[active]);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MediaInner> {
        self.inner.lock().expect("journal media lock")
    }
}

// ------------------------------------------------------------ records

/// One committed kv write (absolute value), as observed by the store
/// sink at the moment the sharded store accepted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvWrite {
    /// Store scope the write landed in.
    pub scope: Scope,
    /// Owning container (local scope; `0` otherwise).
    pub container: ContainerId,
    /// Owning tenant (tenant scope; `0` otherwise).
    pub tenant: TenantId,
    /// Key within the scoped store.
    pub key: u32,
    /// Value written.
    pub value: i64,
}

/// Which client operation a durable exchange tag belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    /// A single-event dispatch.
    Dispatch,
    /// One slot of a batched dispatch.
    Batch,
}

/// The exactly-once identity of one client exchange: the CoAP token
/// plus, for batches, the slot index within the batch. Commit records
/// carrying the same `(token, index)` are duplicates and replay once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableTag {
    /// The transport token of the exchange.
    pub token: Vec<u8>,
    /// Operation kind behind the token.
    pub kind: TagKind,
    /// Slot index within the batch (`0` for single dispatches).
    pub index: u32,
    /// Total slots under this token.
    pub total: u32,
}

/// One event's atomic commit: everything the restored node needs to
/// (a) reapply the event's kv writes, (b) answer a retransmission of
/// its exchange byte-identically, and (c) seed its counters as if it
/// had dispatched the event itself.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CommitRecord {
    pub hook: Uuid,
    pub tag: Option<DurableTag>,
    pub latency_ns: u64,
    pub insns: u64,
    pub faults: u64,
    pub charges: Vec<(TenantId, u64)>,
    pub writes: Vec<KvWrite>,
    pub outcome: Result<HookReport, NodeError>,
}

/// One accepted live deploy, journaled with enough context to replay
/// the install on a restored host at the **same container id** and the
/// same rollback-protected sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployRecord {
    /// Tenant the verified manifest belonged to.
    pub tenant: TenantId,
    /// Manifest payload URI (for diagnostics; the payload itself is
    /// inlined below, staging does not survive a crash).
    pub uri: String,
    /// The verified image bytes.
    pub payload: Vec<u8>,
    /// Transport token of the deploying exchange, when it arrived over
    /// a tagged channel — retransmissions answer from the report.
    pub token: Option<Vec<u8>>,
    /// The accepted report (container id, component, committed
    /// sequence) exactly as replied pre-crash.
    pub report: DeployReport,
}

/// One recovered tagged exchange: the committed per-slot outcomes a
/// restored node must answer retransmissions from.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredExchange {
    /// The transport token.
    pub token: Vec<u8>,
    /// Hook the exchange targeted.
    pub hook: Uuid,
    /// Operation kind.
    pub kind: TagKind,
    /// Total slots under the token.
    pub total: u32,
    /// Committed `(index, outcome)` pairs — possibly a subset of
    /// `total` when the crash interrupted a batch mid-flight.
    pub outcomes: Vec<(u32, Result<HookReport, NodeError>)>,
}

/// Aggregate counter state folded out of the journal: what a restored
/// node seeds its [`crate::HostStats`] and telemetry registry with so
/// fleet-level reconciliation (`dispatched == offered`) holds across a
/// crash without re-counting pre-crash events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSeeds {
    /// Events accepted (durably committed ones only).
    pub enqueued: u64,
    /// Events fully executed and committed.
    pub dispatched: u64,
    /// Executions that faulted.
    pub faults: u64,
    /// VM instructions retired.
    pub insns: u64,
    /// Deploys accepted through the SUIT pipeline.
    pub deploys: u64,
    /// Dispatch latency histogram (wall-clock; seeds quantile
    /// continuity, not bit-identity).
    pub latency: HistogramSnapshot,
    /// Per-hook committed dispatch counts, sorted by hook id.
    pub hooks: Vec<(Uuid, u64)>,
    /// Per-tenant `(executions, insns)` charges, sorted by tenant.
    pub tenants: Vec<(TenantId, u64, u64)>,
}

/// Everything [`Journal::recover`] reconstructs from the media: the
/// input to `LocalNode::restore`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Final committed kv values (folded; absolute writes make the
    /// fold exact), sorted by `(scope, container, tenant, key)`.
    pub kv: Vec<KvWrite>,
    /// Accepted deploys in replay order (newest per component after a
    /// fold; evacuated components removed).
    pub deploys: Vec<DeployRecord>,
    /// Tagged exchanges with their committed outcomes, oldest first.
    pub exchanges: Vec<RecoveredExchange>,
    /// Deploy replies by token, for retransmitted deploy exchanges.
    pub deploy_replies: Vec<(Vec<u8>, DeployReport)>,
    /// Aggregate counter seeds.
    pub seeds: CounterSeeds,
}

/// Why recovery failed closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The active slot is non-empty but does not start with the
    /// journal header.
    BadHeader,
    /// A complete record failed its CRC (or a CRC-valid body failed to
    /// decode) at the given slot offset. Fail closed: nothing is
    /// applied.
    Corrupt {
        /// Byte offset of the offending record in the active slot.
        offset: usize,
    },
    /// The journal replayed cleanly but a recovered record failed to
    /// re-apply on the restored host (e.g. a journaled image no longer
    /// parses). Fail closed: the node is not brought up half-restored.
    Replay(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadHeader => write!(f, "journal slot header is not FCJ1"),
            JournalError::Corrupt { offset } => {
                write!(f, "journal record at offset {offset} is corrupt")
            }
            JournalError::Replay(reason) => {
                write!(f, "recovered journal record failed to re-apply: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

// --------------------------------------------------------- encoding

fn scope_tag(scope: Scope) -> u8 {
    match scope {
        Scope::Local => 0,
        Scope::Global => 1,
        Scope::Tenant => 2,
    }
}

fn scope_from(tag: u8) -> Result<Scope, WireError> {
    Ok(match tag {
        0 => Scope::Local,
        1 => Scope::Global,
        2 => Scope::Tenant,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_write(buf: &mut Vec<u8>, w: &KvWrite) {
    put_u8(buf, scope_tag(w.scope));
    put_u32(buf, w.container);
    put_u32(buf, w.tenant);
    put_u32(buf, w.key);
    put_i64(buf, w.value);
}

fn get_write(r: &mut Reader) -> Result<KvWrite, WireError> {
    Ok(KvWrite {
        scope: scope_from(r.u8()?)?,
        container: r.u32()?,
        tenant: r.u32()?,
        key: r.u32()?,
        value: r.i64()?,
    })
}

fn put_outcome(buf: &mut Vec<u8>, outcome: &Result<HookReport, NodeError>) {
    match outcome {
        Ok(report) => {
            put_u8(buf, 0);
            put_report(buf, report);
        }
        Err(e) => {
            put_u8(buf, 1);
            put_node_error(buf, e);
        }
    }
}

fn get_outcome(r: &mut Reader) -> Result<Result<HookReport, NodeError>, WireError> {
    Ok(match r.u8()? {
        0 => Ok(get_report(r)?),
        1 => Err(get_node_error(r)?),
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_tag_kind(buf: &mut Vec<u8>, kind: TagKind) {
    put_u8(
        buf,
        match kind {
            TagKind::Dispatch => 0,
            TagKind::Batch => 1,
        },
    );
}

fn get_tag_kind(r: &mut Reader) -> Result<TagKind, WireError> {
    Ok(match r.u8()? {
        0 => TagKind::Dispatch,
        1 => TagKind::Batch,
        t => return Err(WireError::BadTag(t)),
    })
}

fn encode_commit(rec: &CommitRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    put_u8(&mut buf, TAG_COMMIT);
    put_uuid(&mut buf, rec.hook);
    match &rec.tag {
        Some(tag) => {
            put_u8(&mut buf, 1);
            put_bytes(&mut buf, &tag.token);
            put_tag_kind(&mut buf, tag.kind);
            put_u32(&mut buf, tag.index);
            put_u32(&mut buf, tag.total);
        }
        None => put_u8(&mut buf, 0),
    }
    put_u64(&mut buf, rec.latency_ns);
    put_u64(&mut buf, rec.insns);
    put_u64(&mut buf, rec.faults);
    put_u32(&mut buf, rec.charges.len() as u32);
    for &(tenant, insns) in &rec.charges {
        put_u32(&mut buf, tenant);
        put_u64(&mut buf, insns);
    }
    put_u32(&mut buf, rec.writes.len() as u32);
    for w in &rec.writes {
        put_write(&mut buf, w);
    }
    put_outcome(&mut buf, &rec.outcome);
    buf
}

fn decode_commit(r: &mut Reader) -> Result<CommitRecord, WireError> {
    let hook = r.uuid()?;
    let tag = match r.u8()? {
        0 => None,
        1 => Some(DurableTag {
            token: r.bytes()?,
            kind: get_tag_kind(r)?,
            index: r.u32()?,
            total: r.u32()?,
        }),
        t => return Err(WireError::BadTag(t)),
    };
    let latency_ns = r.u64()?;
    let insns = r.u64()?;
    let faults = r.u64()?;
    let n = r.u32()? as usize;
    let mut charges = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        charges.push((r.u32()?, r.u64()?));
    }
    let n = r.u32()? as usize;
    let mut writes = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        writes.push(get_write(r)?);
    }
    let outcome = get_outcome(r)?;
    Ok(CommitRecord {
        hook,
        tag,
        latency_ns,
        insns,
        faults,
        charges,
        writes,
        outcome,
    })
}

fn encode_deploy(rec: &DeployRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + rec.payload.len());
    put_u8(&mut buf, TAG_DEPLOY);
    put_u32(&mut buf, rec.tenant);
    put_str(&mut buf, &rec.uri);
    put_bytes(&mut buf, &rec.payload);
    match &rec.token {
        Some(token) => {
            put_u8(&mut buf, 1);
            put_bytes(&mut buf, token);
        }
        None => put_u8(&mut buf, 0),
    }
    put_deploy_report(&mut buf, &rec.report);
    buf
}

fn decode_deploy(r: &mut Reader) -> Result<DeployRecord, WireError> {
    let tenant = r.u32()?;
    let uri = r.string()?;
    let payload = r.bytes()?;
    let token = match r.u8()? {
        0 => None,
        1 => Some(r.bytes()?),
        t => return Err(WireError::BadTag(t)),
    };
    let report = get_deploy_report(r)?;
    Ok(DeployRecord {
        tenant,
        uri,
        payload,
        token,
        report,
    })
}

fn put_hist(buf: &mut Vec<u8>, h: &HistogramSnapshot) {
    let occupied = h.0.iter().filter(|&&b| b != 0).count() as u8;
    put_u8(buf, occupied);
    for (i, &b) in h.0.iter().enumerate() {
        if b != 0 {
            put_u8(buf, i as u8);
            put_u64(buf, b);
        }
    }
}

fn get_hist(r: &mut Reader) -> Result<HistogramSnapshot, WireError> {
    let n = r.u8()?;
    let mut h = HistogramSnapshot::default();
    for _ in 0..n {
        let idx = r.u8()? as usize;
        let v = r.u64()?;
        let slot = h.0.get_mut(idx).ok_or(WireError::BadTag(idx as u8))?;
        *slot = slot.wrapping_add(v);
    }
    Ok(h)
}

fn encode_snapshot(state: &RecoveredState) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_u8(&mut buf, TAG_SNAPSHOT);
    put_u32(&mut buf, state.kv.len() as u32);
    for w in &state.kv {
        put_write(&mut buf, w);
    }
    put_u32(&mut buf, state.deploys.len() as u32);
    for d in &state.deploys {
        // Deploy bodies are self-delimiting; reuse the record encoder
        // minus its leading tag byte.
        let body = encode_deploy(d);
        buf.extend_from_slice(&body[1..]);
    }
    put_u32(&mut buf, state.exchanges.len() as u32);
    for ex in &state.exchanges {
        put_bytes(&mut buf, &ex.token);
        put_uuid(&mut buf, ex.hook);
        put_tag_kind(&mut buf, ex.kind);
        put_u32(&mut buf, ex.total);
        put_u32(&mut buf, ex.outcomes.len() as u32);
        for (index, outcome) in &ex.outcomes {
            put_u32(&mut buf, *index);
            put_outcome(&mut buf, outcome);
        }
    }
    put_u32(&mut buf, state.deploy_replies.len() as u32);
    for (token, report) in &state.deploy_replies {
        put_bytes(&mut buf, token);
        put_deploy_report(&mut buf, report);
    }
    let s = &state.seeds;
    put_u64(&mut buf, s.enqueued);
    put_u64(&mut buf, s.dispatched);
    put_u64(&mut buf, s.faults);
    put_u64(&mut buf, s.insns);
    put_u64(&mut buf, s.deploys);
    put_hist(&mut buf, &s.latency);
    put_u32(&mut buf, s.hooks.len() as u32);
    for (hook, count) in &s.hooks {
        put_uuid(&mut buf, *hook);
        put_u64(&mut buf, *count);
    }
    put_u32(&mut buf, s.tenants.len() as u32);
    for (tenant, executions, insns) in &s.tenants {
        put_u32(&mut buf, *tenant);
        put_u64(&mut buf, *executions);
        put_u64(&mut buf, *insns);
    }
    buf
}

fn decode_snapshot(r: &mut Reader) -> Result<RecoveredState, WireError> {
    let mut state = RecoveredState::default();
    let n = r.u32()? as usize;
    for _ in 0..n {
        state.kv.push(get_write(r)?);
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        state.deploys.push(decode_deploy(r)?);
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        let token = r.bytes()?;
        let hook = r.uuid()?;
        let kind = get_tag_kind(r)?;
        let total = r.u32()?;
        let m = r.u32()? as usize;
        let mut outcomes = Vec::with_capacity(m.min(64));
        for _ in 0..m {
            let index = r.u32()?;
            outcomes.push((index, get_outcome(r)?));
        }
        state.exchanges.push(RecoveredExchange {
            token,
            hook,
            kind,
            total,
            outcomes,
        });
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        let token = r.bytes()?;
        let report = get_deploy_report(r)?;
        state.deploy_replies.push((token, report));
    }
    state.seeds.enqueued = r.u64()?;
    state.seeds.dispatched = r.u64()?;
    state.seeds.faults = r.u64()?;
    state.seeds.insns = r.u64()?;
    state.seeds.deploys = r.u64()?;
    state.seeds.latency = get_hist(r)?;
    let n = r.u32()? as usize;
    for _ in 0..n {
        let hook = r.uuid()?;
        state.seeds.hooks.push((hook, r.u64()?));
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        state.seeds.tenants.push((r.u32()?, r.u64()?, r.u64()?));
    }
    Ok(state)
}

// ----------------------------------------------------------- recovery

fn latency_bucket(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros()) as usize
}

/// Recovery accumulator: a [`RecoveredState`] plus the lookup indexes
/// replay needs for dedup.
#[derive(Default)]
struct Fold {
    kv: BTreeMap<(u8, ContainerId, TenantId, u32), i64>,
    deploys: Vec<DeployRecord>,
    exchanges: Vec<RecoveredExchange>,
    exchange_index: HashMap<Vec<u8>, usize>,
    deploy_replies: Vec<(Vec<u8>, DeployReport)>,
    deploy_tokens: HashSet<Vec<u8>>,
    hooks: HashMap<Uuid, u64>,
    tenants: HashMap<TenantId, (u64, u64)>,
    seeds: CounterSeeds,
}

impl Fold {
    fn put_write(&mut self, w: &KvWrite) {
        self.kv
            .insert((scope_tag(w.scope), w.container, w.tenant, w.key), w.value);
    }

    fn apply_snapshot(&mut self, snap: RecoveredState) {
        for w in &snap.kv {
            self.put_write(w);
        }
        for d in snap.deploys {
            if let Some(token) = &d.token {
                if self.deploy_tokens.insert(token.clone()) {
                    self.deploy_replies.push((token.clone(), d.report));
                }
            }
            self.deploys.push(d);
        }
        for ex in snap.exchanges {
            self.exchange_index
                .insert(ex.token.clone(), self.exchanges.len());
            self.exchanges.push(ex);
        }
        for (token, report) in snap.deploy_replies {
            if self.deploy_tokens.insert(token.clone()) {
                self.deploy_replies.push((token, report));
            }
        }
        self.seeds = snap.seeds;
        self.hooks = self.seeds.hooks.drain(..).collect();
        self.tenants = self
            .seeds
            .tenants
            .drain(..)
            .map(|(t, e, i)| (t, (e, i)))
            .collect();
    }

    /// Applies one commit record; duplicated tagged records (same
    /// token + index) replay exactly once.
    fn apply_commit(&mut self, rec: CommitRecord) {
        if let Some(tag) = &rec.tag {
            if let Some(&idx) = self.exchange_index.get(&tag.token) {
                if self.exchanges[idx]
                    .outcomes
                    .iter()
                    .any(|(i, _)| *i == tag.index)
                {
                    return; // duplicate record
                }
            }
        }
        for w in &rec.writes {
            self.put_write(w);
        }
        self.seeds.enqueued += 1;
        self.seeds.dispatched += 1;
        self.seeds.faults += rec.faults;
        self.seeds.insns += rec.insns;
        self.seeds.latency.0[latency_bucket(rec.latency_ns)] += 1;
        *self.hooks.entry(rec.hook).or_insert(0) += 1;
        for &(tenant, insns) in &rec.charges {
            let slot = self.tenants.entry(tenant).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += insns;
        }
        if let Some(tag) = rec.tag {
            let idx = *self
                .exchange_index
                .entry(tag.token.clone())
                .or_insert_with(|| {
                    self.exchanges.push(RecoveredExchange {
                        token: tag.token.clone(),
                        hook: rec.hook,
                        kind: tag.kind,
                        total: tag.total,
                        outcomes: Vec::new(),
                    });
                    self.exchanges.len() - 1
                });
            self.exchanges[idx].outcomes.push((tag.index, rec.outcome));
        }
    }

    fn apply_deploy(&mut self, rec: DeployRecord) {
        // A byte-duplicated record re-presents the same committed
        // sequence for the same component: replay once.
        if self.deploys.iter().any(|d| {
            d.report.component == rec.report.component && d.report.sequence == rec.report.sequence
        }) {
            return;
        }
        if let Some(token) = &rec.token {
            if self.deploy_tokens.insert(token.clone()) {
                self.deploy_replies.push((token.clone(), rec.report));
            }
        }
        self.seeds.deploys += 1;
        self.deploys.push(rec);
    }

    fn apply_forget(&mut self, component: Uuid) {
        self.deploys.retain(|d| d.report.component != component);
    }

    fn finish(mut self) -> RecoveredState {
        let kv = self
            .kv
            .into_iter()
            .map(|((tag, container, tenant, key), value)| KvWrite {
                scope: scope_from(tag).expect("fold stores valid scope tags"),
                container,
                tenant,
                key,
                value,
            })
            .collect();
        let mut hooks: Vec<(Uuid, u64)> = self.hooks.into_iter().collect();
        hooks.sort_unstable_by_key(|(hook, _)| *hook);
        let mut tenants: Vec<(TenantId, u64, u64)> = self
            .tenants
            .into_iter()
            .map(|(t, (e, i))| (t, e, i))
            .collect();
        tenants.sort_unstable_by_key(|(t, _, _)| *t);
        self.seeds.hooks = hooks;
        self.seeds.tenants = tenants;
        RecoveredState {
            kv,
            deploys: self.deploys,
            exchanges: self.exchanges,
            deploy_replies: self.deploy_replies,
            seeds: self.seeds,
        }
    }
}

/// Replays one slot's bytes into a [`RecoveredState`]. Tolerates a
/// torn tail (keeps the durable prefix); fails closed on a complete
/// record that does not check out.
fn recover_bytes(bytes: &[u8]) -> Result<RecoveredState, JournalError> {
    if bytes.is_empty() {
        // A blank device is a fresh node.
        return Ok(RecoveredState::default());
    }
    if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(JournalError::BadHeader);
    }
    let mut fold = Fold::default();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            break; // torn tail: not even a full frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
            break; // absurd length: the append was interrupted
        };
        if end > bytes.len() {
            break; // torn tail: record extends past EOF
        }
        let body = &bytes[pos + 8..end];
        if crc32(body) != crc {
            return Err(JournalError::Corrupt { offset: pos });
        }
        let mut r = Reader::new(body);
        let decoded = (|| -> Result<(), WireError> {
            match r.u8()? {
                TAG_SNAPSHOT if pos == HEADER_LEN => {
                    let snap = decode_snapshot(&mut r)?;
                    fold.apply_snapshot(snap);
                }
                TAG_COMMIT => fold.apply_commit(decode_commit(&mut r)?),
                TAG_BARE_KV => {
                    let w = get_write(&mut r)?;
                    fold.put_write(&w);
                }
                TAG_DEPLOY => fold.apply_deploy(decode_deploy(&mut r)?),
                TAG_FORGET => fold.apply_forget(r.uuid()?),
                t => return Err(WireError::BadTag(t)),
            }
            r.done()
        })();
        if decoded.is_err() {
            // CRC passed but the body is not a legal record (or a
            // snapshot appears mid-file): fail closed.
            return Err(JournalError::Corrupt { offset: pos });
        }
        pos = end;
    }
    Ok(fold.finish())
}

// ------------------------------------------------------------ journal

/// Journal op counters, surfaced as host metrics
/// (`journal_appends` / `journal_bytes` / `journal_folds`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalOps {
    /// Records appended.
    pub appends: u64,
    /// Framed bytes written (headers excluded).
    pub bytes: u64,
    /// Snapshot folds completed.
    pub folds: u64,
}

/// The write-ahead journal one durable node owns. Shared (`Arc`)
/// between the host's shard workers (event commits), the update
/// service (deploy commits), and the store sink (bare writes); all
/// appends serialize on the media lock.
pub struct Journal {
    media: JournalMedia,
    config: DurabilityConfig,
    /// Quiet until armed: recovery replays state *through* the same
    /// host paths that normally journal, so the journal ignores
    /// appends until the restore is complete.
    armed: AtomicBool,
    since_fold: AtomicU64,
    appends: AtomicU64,
    bytes: AtomicU64,
    folds: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("len", &self.media.journal_len())
            .finish()
    }
}

impl Journal {
    fn with_armed(media: JournalMedia, config: DurabilityConfig, armed: bool) -> Arc<Journal> {
        Arc::new(Journal {
            media,
            config,
            armed: AtomicBool::new(armed),
            since_fold: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            folds: AtomicU64::new(0),
        })
    }

    /// Formats the media for a **fresh** node: wipes both slots,
    /// writes the header, and returns an armed journal.
    pub fn create(media: &JournalMedia, config: DurabilityConfig) -> Arc<Journal> {
        {
            let mut m = media.lock();
            m.slots = [Vec::new(), Vec::new()];
            m.active = 0;
            let mut slot = Vec::with_capacity(HEADER_LEN);
            slot.extend_from_slice(MAGIC);
            slot.push(VERSION);
            m.slots[0] = slot;
        }
        Journal::with_armed(media.clone(), config, true)
    }

    /// Boots from existing media (clearing any crash condition — the
    /// dead machine is gone, the disk is being read by a new one) and
    /// replays the active slot. The returned journal is **quiet**:
    /// call [`Journal::arm`] once the owner has finished applying the
    /// recovered state, or the replay itself would be re-journaled.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the slot is corrupt — fail closed, nothing
    /// applied. A torn tail is not an error: the durable prefix wins.
    pub fn recover(
        media: &JournalMedia,
        config: DurabilityConfig,
    ) -> Result<(Arc<Journal>, RecoveredState), JournalError> {
        let bytes = {
            let mut m = media.lock();
            m.crashed = false;
            m.plan = None;
            if m.slots[m.active].is_empty() {
                // Blank device: format it like `create` so appends
                // have a header to follow.
                let mut slot = Vec::with_capacity(HEADER_LEN);
                slot.extend_from_slice(MAGIC);
                slot.push(VERSION);
                let active = m.active;
                m.slots[active] = slot;
            }
            m.slots[m.active].clone()
        };
        let state = recover_bytes(&bytes)?;
        Ok((Journal::with_armed(media.clone(), config, false), state))
    }

    /// Opens the journal for appends (end of a restore).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Whether the node behind this journal is still powered: `false`
    /// once a [`CrashPlan`] fired. A dead node must not reply.
    pub fn alive(&self) -> bool {
        !self.media.crashed()
    }

    /// The media handle (what survives a crash).
    pub fn media(&self) -> JournalMedia {
        self.media.clone()
    }

    /// Op counters so far.
    pub fn ops(&self) -> JournalOps {
        JournalOps {
            appends: self.appends.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            folds: self.folds.load(Ordering::Relaxed),
        }
    }

    /// Journals one event commit. Returns `false` when the node is
    /// dead (crashed before or at this append) — the caller must then
    /// suppress the reply.
    pub(crate) fn commit(&self, rec: &CommitRecord) -> bool {
        self.append(encode_commit(rec), true)
    }

    /// Journals one accepted deploy (same liveness contract as
    /// [`Journal::commit`]).
    pub(crate) fn commit_deploy(&self, rec: &DeployRecord) -> bool {
        self.append(encode_deploy(rec), true)
    }

    /// Journals a component evacuation (rollback state forgotten).
    pub(crate) fn forget(&self, component: Uuid) -> bool {
        let mut body = Vec::with_capacity(17);
        put_u8(&mut body, TAG_FORGET);
        put_uuid(&mut body, component);
        self.append(body, false)
    }

    /// Journals a bare kv write (host-side seeding outside any event).
    pub(crate) fn bare_kv(&self, w: &KvWrite) -> bool {
        let mut body = Vec::with_capacity(22);
        put_u8(&mut body, TAG_BARE_KV);
        put_write(&mut body, w);
        self.append(body, false)
    }

    fn append(&self, body: Vec<u8>, is_commit: bool) -> bool {
        if !self.armed.load(Ordering::Acquire) {
            return true;
        }
        let mut framed = Vec::with_capacity(8 + body.len());
        put_u32(&mut framed, body.len() as u32);
        put_u32(&mut framed, crc32(&body));
        framed.extend_from_slice(&body);
        let mut m = self.media.lock();
        if m.crashed {
            return false;
        }
        if is_commit {
            if let Some(plan) = &mut m.plan {
                if plan.point != CrashPoint::MidSnapshot {
                    if plan.after == 0 {
                        let point = plan.point;
                        m.plan = None;
                        m.crashed = true;
                        let active = m.active;
                        match point {
                            CrashPoint::PreCommit => {}
                            CrashPoint::TornRecord => {
                                // A strict prefix: the frame header
                                // plus half the body.
                                m.slots[active].extend_from_slice(&framed[..8 + body.len() / 2]);
                            }
                            CrashPoint::PostCommitPreReply => {
                                m.slots[active].extend_from_slice(&framed);
                            }
                            CrashPoint::MidSnapshot => unreachable!("filtered above"),
                        }
                        return false;
                    }
                    plan.after -= 1;
                }
            }
        }
        let active = m.active;
        m.slots[active].extend_from_slice(&framed);
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(framed.len() as u64, Ordering::Relaxed);
        let since = self.since_fold.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.snapshot_threshold > 0 && since >= self.config.snapshot_threshold {
            self.since_fold.store(0, Ordering::Relaxed);
            if !self.fold_locked(&mut m) {
                return false;
            }
        }
        true
    }

    /// Folds the journal: recover the active slot, collapse to one
    /// snapshot record in the inactive slot, flip the active index.
    /// Returns `false` when a [`CrashPoint::MidSnapshot`] plan fired.
    fn fold_locked(&self, m: &mut MediaInner) -> bool {
        let Ok(mut state) = recover_bytes(&m.slots[m.active]) else {
            // Never fold over something recovery would reject; keep
            // appending to the existing slot instead.
            return true;
        };
        // Collapse deploys to the newest record per component (replay
        // order preserved) and cap the retained exchanges/replies.
        let mut newest: HashMap<Uuid, DeployRecord> = HashMap::new();
        let mut order = Vec::new();
        for d in state.deploys.drain(..) {
            if newest.insert(d.report.component, d.clone()).is_none() {
                order.push(d.report.component);
            }
        }
        state.deploys = order
            .into_iter()
            .map(|c| newest.remove(&c).expect("just inserted"))
            .collect();
        let retain = self.config.retain_exchanges;
        if state.exchanges.len() > retain {
            state.exchanges.drain(..state.exchanges.len() - retain);
        }
        if state.deploy_replies.len() > retain {
            state
                .deploy_replies
                .drain(..state.deploy_replies.len() - retain);
        }
        let body = encode_snapshot(&state);
        let mut slot = Vec::with_capacity(HEADER_LEN + 8 + body.len());
        slot.extend_from_slice(MAGIC);
        slot.push(VERSION);
        put_u32(&mut slot, body.len() as u32);
        put_u32(&mut slot, crc32(&body));
        slot.extend_from_slice(&body);
        if let Some(plan) = &mut m.plan {
            if plan.point == CrashPoint::MidSnapshot {
                if plan.after == 0 {
                    m.plan = None;
                    m.crashed = true;
                    // Half the fold reaches the inactive slot; the
                    // active index never flips.
                    let inactive = 1 - m.active;
                    m.slots[inactive] = slot[..slot.len() / 2].to_vec();
                    return false;
                }
                plan.after -= 1;
            }
        }
        let inactive = 1 - m.active;
        m.slots[inactive] = slot;
        m.active = inactive;
        self.folds.fetch_add(1, Ordering::Relaxed);
        true
    }
}

// --------------------------------------------------------- store sink

thread_local! {
    /// Per-thread kv write capture, active while a shard worker
    /// executes one event (see `shard::run_shard`).
    static CAPTURE: RefCell<Option<Vec<KvWrite>>> = const { RefCell::new(None) };
}

/// Starts capturing this thread's store writes into a buffer.
pub(crate) fn begin_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Ends the capture and returns the writes observed since
/// [`begin_capture`].
pub(crate) fn take_capture() -> Vec<KvWrite> {
    CAPTURE.with(|c| c.borrow_mut().take().unwrap_or_default())
}

/// The [`StoreSink`] a durable host installs on its sharded stores:
/// writes made inside an event capture into the worker's commit
/// record; writes made outside any event journal immediately as bare
/// kv records.
pub(crate) struct CaptureSink {
    journal: Arc<Journal>,
}

impl CaptureSink {
    pub(crate) fn new(journal: Arc<Journal>) -> Self {
        CaptureSink { journal }
    }
}

impl StoreSink for CaptureSink {
    fn on_store(
        &self,
        container: fc_kvstore::ContainerId,
        tenant: TenantId,
        scope: Scope,
        key: u32,
        value: i64,
    ) {
        let write = KvWrite {
            scope,
            container,
            tenant,
            key,
            value,
        };
        let captured = CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                buf.push(write);
                true
            } else {
                false
            }
        });
        if !captured {
            self.journal.bare_kv(&write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_core::engine::HookReport;

    fn report(combined: u64) -> HookReport {
        HookReport {
            executions: Vec::new(),
            combined: Some(combined),
            cycles: combined * 10,
        }
    }

    fn commit(hook: Uuid, token: u8, key: u32, value: i64) -> CommitRecord {
        CommitRecord {
            hook,
            tag: Some(DurableTag {
                token: vec![token],
                kind: TagKind::Dispatch,
                index: 0,
                total: 1,
            }),
            latency_ns: 1_000,
            insns: 7,
            faults: 0,
            charges: vec![(1, 7)],
            writes: vec![KvWrite {
                scope: Scope::Global,
                container: 0,
                tenant: 0,
                key,
                value,
            }],
            outcome: Ok(report(value as u64)),
        }
    }

    fn filled_journal(config: DurabilityConfig) -> (JournalMedia, Uuid) {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, config);
        let hook = Uuid::from_name("journal", "hook");
        for i in 0..4u8 {
            assert!(journal.commit(&commit(hook, i, u32::from(i), i64::from(i) + 10)));
        }
        (media, hook)
    }

    #[test]
    fn round_trips_commits_deploys_and_bare_writes() {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let hook = Uuid::from_name("journal", "rt");
        assert!(journal.commit(&commit(hook, 1, 5, 55)));
        assert!(journal.bare_kv(&KvWrite {
            scope: Scope::Tenant,
            container: 0,
            tenant: 3,
            key: 9,
            value: -1,
        }));
        let deploy = DeployRecord {
            tenant: 3,
            uri: "app-v1".into(),
            payload: vec![1, 2, 3, 4],
            token: Some(vec![9, 9]),
            report: DeployReport {
                container: 7,
                component: hook,
                shard: 1,
                sequence: 4,
                attached: true,
                replaced: None,
            },
        };
        assert!(journal.commit_deploy(&deploy));
        assert_eq!(journal.ops().appends, 3);

        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.kv.len(), 2);
        assert!(state.kv.contains(&KvWrite {
            scope: Scope::Global,
            container: 0,
            tenant: 0,
            key: 5,
            value: 55,
        }));
        assert_eq!(state.deploys, vec![deploy.clone()]);
        assert_eq!(state.deploy_replies, vec![(vec![9, 9], deploy.report)]);
        assert_eq!(state.seeds.dispatched, 1);
        assert_eq!(state.seeds.deploys, 1);
        assert_eq!(state.seeds.hooks, vec![(hook, 1)]);
        assert_eq!(state.seeds.tenants, vec![(1, 1, 7)]);
        assert_eq!(state.exchanges.len(), 1);
        assert_eq!(state.exchanges[0].token, vec![1]);
        assert_eq!(state.exchanges[0].outcomes[0].1, Ok(report(55)));
    }

    #[test]
    fn evacuation_forgets_a_component_durably() {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let component = Uuid::from_name("journal", "evac");
        let deploy = DeployRecord {
            tenant: 1,
            uri: "x".into(),
            payload: vec![0],
            token: None,
            report: DeployReport {
                container: 1,
                component,
                shard: 0,
                sequence: 1,
                attached: true,
                replaced: None,
            },
        };
        journal.commit_deploy(&deploy);
        journal.forget(component);
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert!(state.deploys.is_empty(), "evacuated component not replayed");
        assert_eq!(state.seeds.deploys, 1, "accepted count stays monotone");
    }

    // ------------------------------------------ corruption matrix

    #[test]
    fn truncated_tail_recovers_to_last_durable_prefix() {
        let (media, hook) = filled_journal(DurabilityConfig::default());
        let full = media.journal_len();
        // Sever the last record mid-body: exactly the shape a torn
        // append leaves behind.
        media.corrupt_active(|bytes| bytes.truncate(full - 10));
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 3, "prefix survives, tail dropped");
        assert_eq!(state.seeds.hooks, vec![(hook, 3)]);
        assert_eq!(state.kv.len(), 3);
    }

    #[test]
    fn flipped_crc_byte_fails_closed_with_offset() {
        let (media, _) = filled_journal(DurabilityConfig::default());
        // Flip one CRC byte of the second record (a *complete* record:
        // this is corruption, not a torn tail).
        let mut second = 0;
        media.corrupt_active(|bytes| {
            let first_len =
                u32::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 4].try_into().unwrap()) as usize;
            second = HEADER_LEN + 8 + first_len;
            bytes[second + 4] ^= 0xFF;
        });
        let err = Journal::recover(&media, DurabilityConfig::default()).unwrap_err();
        assert_eq!(err, JournalError::Corrupt { offset: second });
    }

    #[test]
    fn duplicated_record_replays_exactly_once() {
        let (media, hook) = filled_journal(DurabilityConfig::default());
        // Byte-duplicate the final framed record, as a replayed write
        // by a confused medium would.
        media.corrupt_active(|bytes| {
            let mut pos = HEADER_LEN;
            let mut last = pos;
            while pos < bytes.len() {
                last = pos;
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            let dup = bytes[last..].to_vec();
            bytes.extend_from_slice(&dup);
        });
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 4, "duplicate not double-counted");
        assert_eq!(state.seeds.hooks, vec![(hook, 4)]);
        assert_eq!(
            state
                .exchanges
                .iter()
                .map(|e| e.outcomes.len())
                .sum::<usize>(),
            4,
            "duplicate outcome not double-registered"
        );
    }

    #[test]
    fn zero_length_file_recovers_fresh() {
        let (media, _) = filled_journal(DurabilityConfig::default());
        media.corrupt_active(Vec::clear);
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(
            state,
            RecoveredState::default(),
            "blank device = fresh node"
        );
    }

    #[test]
    fn garbage_header_fails_closed() {
        let (media, _) = filled_journal(DurabilityConfig::default());
        media.corrupt_active(|bytes| bytes[0] = b'X');
        assert_eq!(
            Journal::recover(&media, DurabilityConfig::default()).unwrap_err(),
            JournalError::BadHeader
        );
    }

    // ------------------------------------------------ snapshot fold

    #[test]
    fn fold_collapses_the_journal_and_preserves_state() {
        let config = DurabilityConfig {
            snapshot_threshold: 3,
            ..DurabilityConfig::default()
        };
        let media = JournalMedia::new();
        let journal = Journal::create(&media, config);
        let hook = Uuid::from_name("journal", "fold");
        for i in 0..10u8 {
            journal.commit(&commit(hook, i, u32::from(i % 2), i64::from(i)));
        }
        assert!(journal.ops().folds >= 2, "threshold 3 folds repeatedly");
        let (_j, state) = Journal::recover(&media, config).unwrap();
        assert_eq!(state.seeds.dispatched, 10);
        assert_eq!(state.seeds.hooks, vec![(hook, 10)]);
        // kv folded to final absolute values.
        assert_eq!(state.kv.len(), 2);
        let last_even = state.kv.iter().find(|w| w.key == 0).unwrap();
        assert_eq!(last_even.value, 8);
        // All ten tagged exchanges retained (cap is 128).
        assert_eq!(state.exchanges.len(), 10);
    }

    #[test]
    fn fold_caps_retained_exchanges() {
        let config = DurabilityConfig {
            snapshot_threshold: 4,
            retain_exchanges: 2,
            ..DurabilityConfig::default()
        };
        let media = JournalMedia::new();
        let journal = Journal::create(&media, config);
        let hook = Uuid::from_name("journal", "cap");
        for i in 0..8u8 {
            journal.commit(&commit(hook, i, 0, i64::from(i)));
        }
        let (_j, state) = Journal::recover(&media, config).unwrap();
        assert!(state.exchanges.len() <= 2 + 3, "old exchanges fell out");
        assert_eq!(state.seeds.dispatched, 8, "seeds keep the full count");
    }

    // ---------------------------------------------- crash injection

    #[test]
    fn pre_commit_crash_loses_the_record_and_kills_the_node() {
        let (media, hook) = {
            let media = JournalMedia::new();
            let journal = Journal::create(&media, DurabilityConfig::default());
            let hook = Uuid::from_name("journal", "pre");
            journal.commit(&commit(hook, 0, 0, 1));
            media.set_crash_plan(CrashPlan {
                point: CrashPoint::PreCommit,
                after: 0,
            });
            assert!(!journal.commit(&commit(hook, 1, 1, 2)), "node died");
            assert!(!journal.alive());
            assert!(
                !journal.commit(&commit(hook, 2, 2, 3)),
                "dead node stays dead"
            );
            (media, hook)
        };
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 1, "uncommitted event invisible");
        assert_eq!(state.seeds.hooks, vec![(hook, 1)]);
    }

    #[test]
    fn torn_record_crash_recovers_to_durable_prefix() {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let hook = Uuid::from_name("journal", "torn");
        journal.commit(&commit(hook, 0, 0, 1));
        media.set_crash_plan(CrashPlan {
            point: CrashPoint::TornRecord,
            after: 0,
        });
        assert!(!journal.commit(&commit(hook, 1, 1, 2)));
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 1, "torn record tolerated");
        assert_eq!(state.kv.len(), 1);
    }

    #[test]
    fn post_commit_crash_keeps_the_record_but_silences_the_reply() {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let hook = Uuid::from_name("journal", "post");
        media.set_crash_plan(CrashPlan {
            point: CrashPoint::PostCommitPreReply,
            after: 1,
        });
        assert!(journal.commit(&commit(hook, 0, 0, 1)), "first one passes");
        assert!(!journal.commit(&commit(hook, 1, 1, 2)), "no reply leaves");
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 2, "the commit itself is durable");
        assert_eq!(
            state
                .exchanges
                .iter()
                .find(|e| e.token == vec![1])
                .map(|e| e.outcomes.len()),
            Some(1),
            "retransmission will answer from the journal"
        );
    }

    #[test]
    fn mid_snapshot_crash_never_loses_the_pre_fold_journal() {
        let config = DurabilityConfig {
            snapshot_threshold: 4,
            ..DurabilityConfig::default()
        };
        let media = JournalMedia::new();
        let journal = Journal::create(&media, config);
        let hook = Uuid::from_name("journal", "mid");
        media.set_crash_plan(CrashPlan {
            point: CrashPoint::MidSnapshot,
            after: 0,
        });
        let mut alive = true;
        for i in 0..6u8 {
            alive = journal.commit(&commit(hook, i, u32::from(i), i64::from(i)));
            if !alive {
                break;
            }
        }
        assert!(!alive, "the fold crash killed the node");
        assert_eq!(journal.ops().folds, 0, "no fold completed");
        let (_j, state) = Journal::recover(&media, config).unwrap();
        assert_eq!(
            state.seeds.dispatched, 4,
            "every record up to and including the fold trigger survives"
        );
    }

    #[test]
    fn capture_brackets_writes_per_event() {
        begin_capture();
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let sink = CaptureSink::new(Arc::clone(&journal));
        sink.on_store(1, 2, Scope::Local, 3, 4);
        let captured = take_capture();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].container, 1);
        assert_eq!(
            journal.ops().appends,
            0,
            "captured writes not yet journaled"
        );
        // Outside a capture the sink journals immediately.
        sink.on_store(0, 0, Scope::Global, 7, 8);
        assert_eq!(journal.ops().appends, 1);
        assert!(take_capture().is_empty());
    }

    #[test]
    fn quiet_journal_ignores_appends_until_armed() {
        let media = JournalMedia::new();
        let journal = Journal::create(&media, DurabilityConfig::default());
        let hook = Uuid::from_name("journal", "quiet");
        journal.commit(&commit(hook, 0, 0, 1));
        let (recovered, _state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert!(recovered.commit(&commit(hook, 9, 9, 9)), "quiet = no-op");
        assert_eq!(recovered.ops().appends, 0);
        recovered.arm();
        recovered.commit(&commit(hook, 1, 1, 2));
        assert_eq!(recovered.ops().appends, 1);
        let (_j, state) = Journal::recover(&media, DurabilityConfig::default()).unwrap();
        assert_eq!(state.seeds.dispatched, 2);
    }
}
