//! # fc-host — the concurrent multi-tenant hosting runtime
//!
//! The paper runs one hosting engine on one microcontroller. This crate
//! is the layer above for the repo's north star — serving heavy traffic
//! as fast as the hardware allows: a **work-queue executor over N
//! engine shards** that keeps every per-device semantic intact while
//! scaling event dispatch with worker threads.
//!
//! ```text
//!             producers (CoAP front-end, RTOS glue, tests)
//!                │ fire(hook, ctx, regions)
//!                ▼ routed by hook → owning shard
//!   ┌─ shard 0 ──────────────┐   ┌─ shard 1 ──────────────┐
//!   │ control lane (install, │   │                        │
//!   │   attach, …)           │   │          …             │
//!   │ per-hook bounded FIFOs │   │                        │
//!   │   (DRR over insn       │   │                        │
//!   │    budgets, shed       │   │                        │
//!   │    policies)           │   │                        │
//!   │        ▼ batch drain   │   │        ▼               │
//!   │ worker thread owning a │   │ worker thread owning a │
//!   │ HostingEngine          │   │ HostingEngine          │
//!   └───────────┬────────────┘   └──────────┬─────────────┘
//!               └────────────┬──────────────┘
//!                            ▼
//!          shared HostEnv (Arc): sharded kv-store locks,
//!          SAUL registry, console, virtual clock
//! ```
//!
//! What lives where:
//!
//! * **Shared** ([`fc_core::helpers_impl::HostEnv`]): the key-value
//!   stores (behind [`fc_kvstore::ShardedStores`]' sharded locks — the
//!   global scope is the sanctioned cross-container channel and must
//!   stay coherent across shards), the SAUL sensors, the console, and
//!   the virtual clock.
//! * **Per shard**: a whole [`fc_core::engine::HostingEngine`] — slots,
//!   decoded programs, helper registries, execution arenas. Nothing
//!   here is locked; the shard's worker thread owns it outright. The
//!   `Send` boundary that makes this legal is enforced in `fc-rbpf`
//!   (see its crate docs) and `fc-core`.
//!
//! Scheduling is deficit round-robin **in instruction units** over the
//! per-hook queues ([`queue`] module docs), so a tenant burning long
//! programs cannot starve its neighbours — the multi-tenant fairness
//! obligation the paper meets with per-execution budgets, carried up
//! to the queue layer. Full queues shed ([`ShedPolicy`]) instead of
//! growing without bound.
//!
//! The [`coap::CoapFront`] maps tenant resource paths onto
//! `CoapRequest` hooks, turning the host into a CoAP server shape: per
//! hook, events behave exactly like the paper's single device (the
//! differential suite proves per-event reports identical to
//! [`fc_core::engine::HostingEngine::fire_hook`]); across hooks, the
//! shards run concurrently.
//!
//! Two amortisation layers sit on top:
//!
//! * **Batched fires** ([`FcHost::fire_batch`],
//!   [`CoapFront::dispatch_batch`]): a vector of events rides one
//!   queue round-trip into the shard's inbox, which the worker drains
//!   batch-wise — per-event reports stay bit-identical to the
//!   single-event path.
//! * **Hot-shard rebalancing** ([`rebalance::Rebalancer`]): hooks are
//!   placed round-robin at registration, blind to event cost; the
//!   rebalancer watches per-shard simulated busy time and migrates hot
//!   hooks — queue, registration and containers
//!   ([`FcHost::migrate_hook`]) — onto underloaded shards, with
//!   hysteresis so it never thrashes. With
//!   [`HostConfig::rebalance_interval`] set, the host folds the
//!   rebalancer in and observes **in-band** every N dispatched events;
//!   no caller-driven `observe()` loop needed.
//!
//! And the paper's headline capability runs live on top of both:
//! **secure OTA deployment without quiescing**
//! ([`deploy::LiveUpdateService`]). SUIT payloads stage block-wise
//! over the CoAP front-end (`/suit/payload`, `/suit/manifest` —
//! [`CoapFront::dispatch_suit`]), the manifest is verified against the
//! tenant's provisioned key, and the install + attach + predecessor
//! swap ride the target shard's **control lane** as one command
//! between event drains ([`FcHost::deploy_verified`]), so every event
//! sees either the old container or the new one — never both, never
//! neither.
//!
//! Finally, the whole per-node surface — hook lifecycle, dispatch,
//! SUIT staging/deploy, stats — is captured by the transport-agnostic
//! [`service::NodeService`] trait ([`service::LocalNode`] is the
//! in-process adapter), which is what lets `fc-fleet` replicate this
//! host N times behind a consistent-hashing front tier and drive every
//! node over a lossy link without changing per-node semantics.
//!
//! See `ARCHITECTURE.md` at the repository root for the full design.

#![deny(missing_docs)]

pub mod coap;
pub mod deploy;
pub mod host;
pub mod journal;
pub mod queue;
pub mod rebalance;
pub mod service;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod wire;

pub use coap::{CoapFront, CoapReply};
pub use deploy::{DeployPoll, DeployReport, LiveDeployError, LiveUpdateService};
pub use fc_core::engine::ExecTier;
pub use host::{DeployOutcome, FcHost, HookEvent, HostConfig, HostError};
pub use journal::{
    crc32, CounterSeeds, CrashPlan, CrashPoint, DeployRecord, DurabilityConfig, DurableTag,
    Journal, JournalError, JournalMedia, JournalOps, KvWrite, RecoveredExchange, RecoveredState,
    TagKind,
};
pub use queue::{Accepted, BatchAccepted, ShedPolicy};
pub use rebalance::{HookMove, RebalanceConfig, RebalanceReport, Rebalancer};
pub use service::{
    LocalNode, NodeError, NodeReply, NodeService, NodeStats, Ticket, TransportStats, WindowedNode,
};
pub use shard::ShardReport;
pub use stats::{HostStats, LatencyHistogram, TenantStats};
pub use telemetry::{
    CounterId, GaugeId, HistogramSnapshot, HookMetrics, MetricsRegistry, MetricsSnapshot,
    ShardMetrics, SnapshotError, TelemetryConfig, TenantMetrics, TraceEvent, TraceKind, TraceRing,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fc_core::contract::{ContractOffer, ContractRequest};
    use fc_core::helpers_impl::standard_helper_ids;
    use fc_core::hooks::{Hook, HookKind, HookPolicy};
    use fc_rbpf::program::ProgramBuilder;
    use fc_rtos::platform::{Engine, Platform};
    use fc_suit::Uuid;

    fn host(workers: usize) -> FcHost {
        FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers,
                ..HostConfig::default()
            },
        )
    }

    fn image(src: &str) -> Vec<u8> {
        ProgramBuilder::new()
            .helpers(
                fc_core::helpers_impl::helper_name_table()
                    .iter()
                    .map(|(n, i)| (n.as_str(), *i)),
            )
            .asm(src)
            .unwrap()
            .build()
            .to_bytes()
    }

    fn custom_hook(name: &str, policy: HookPolicy) -> Hook {
        Hook::new(name, HookKind::Custom, policy)
    }

    #[test]
    fn install_attach_fire_roundtrip() {
        let mut h = host(2);
        let hook = custom_hook("sum", HookPolicy::Sum);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        let a = h
            .install(
                "a",
                1,
                &image("mov r0, 40\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let b = h
            .install(
                "b",
                2,
                &image("mov r0, 2\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(a, hook_id).unwrap();
        h.attach(b, hook_id).unwrap();
        let report = h.fire_sync(hook_id, &[], &[]).unwrap();
        assert_eq!(report.combined, Some(42));
        assert_eq!(report.executions.len(), 2);
        h.shutdown();
    }

    #[test]
    fn install_errors_propagate_from_the_shard() {
        let mut h = host(2);
        assert!(matches!(
            h.install("bad", 1, b"garbage", ContractRequest::default()),
            Err(HostError::Engine(fc_core::EngineError::Parse(_)))
        ));
        h.shutdown();
    }

    #[test]
    fn zero_quantum_config_cannot_livelock_the_scheduler() {
        let mut h = FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 1,
                quantum_insns: 0,
                ..HostConfig::default()
            },
        );
        let hook = custom_hook("zq", HookPolicy::First);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        let c = h
            .install(
                "c",
                1,
                &image("mov r0, 3\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(c, hook_id).unwrap();
        assert_eq!(h.fire_sync(hook_id, &[], &[]).unwrap().combined, Some(3));
        h.shutdown();
    }

    #[test]
    fn fire_unknown_hook_is_rejected() {
        let h = host(1);
        let ghost = Uuid::from_name("test", "ghost");
        assert_eq!(h.fire(ghost, &[], &[]), Err(HostError::UnknownHook(ghost)));
    }

    #[test]
    fn hooks_spread_round_robin_and_containers_follow() {
        let mut h = host(4);
        let mut shards = Vec::new();
        for i in 0..4 {
            let hook = custom_hook(&format!("h{i}"), HookPolicy::First);
            let hook_id = hook.id;
            h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
            let c = h
                .install(
                    &format!("c{i}"),
                    i,
                    &image("mov r0, 1\nexit"),
                    ContractRequest::default(),
                )
                .unwrap();
            h.attach(c, hook_id).unwrap();
            assert_eq!(
                h.shard_of(c),
                h.shard_of_hook(hook_id),
                "container follows hook"
            );
            shards.push(h.shard_of_hook(hook_id).unwrap());
        }
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1, 2, 3], "hooks cover all shards");
        h.shutdown();
    }

    #[test]
    fn container_on_two_hooks_gets_a_replica_with_shared_local_store() {
        let mut h = host(2);
        let h1 = custom_hook("first", HookPolicy::First);
        let h2 = custom_hook("second", HookPolicy::First);
        let (id1, id2) = (h1.id, h2.id);
        h.register_hook(h1, ContractOffer::helpers(standard_helper_ids()));
        h.register_hook(h2, ContractOffer::helpers(standard_helper_ids()));
        assert_ne!(h.shard_of_hook(id1), h.shard_of_hook(id2));
        // Bumps local key 1 and returns the new value.
        let src = "\
mov r1, 1
mov r2, r10
add r2, -8
call bpf_fetch_local
ldxw r6, [r10-8]
add r6, 1
mov r1, 1
mov r2, r6
call bpf_store_local
mov r0, r6
exit";
        let req = ContractRequest::helpers([
            fc_rbpf::helpers::ids::BPF_FETCH_LOCAL,
            fc_rbpf::helpers::ids::BPF_STORE_LOCAL,
        ]);
        let c = h.install("counter", 7, &image(src), req).unwrap();
        h.attach(c, id1).unwrap();
        h.attach(c, id2).unwrap();
        // Replicas on both shards share the container-local store.
        assert_eq!(h.fire_sync(id1, &[], &[]).unwrap().combined, Some(1));
        assert_eq!(h.fire_sync(id2, &[], &[]).unwrap().combined, Some(2));
        assert_eq!(h.fire_sync(id1, &[], &[]).unwrap().combined, Some(3));
        h.shutdown();
    }

    #[test]
    fn detach_and_remove_clean_up() {
        let mut h = host(2);
        let hook = custom_hook("x", HookPolicy::First);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        let c = h
            .install(
                "c",
                1,
                &image("mov r0, 5\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(c, hook_id).unwrap();
        h.detach(c, hook_id).unwrap();
        assert_eq!(h.fire_sync(hook_id, &[], &[]).unwrap().combined, None);
        assert!(h.remove(c));
        assert!(!h.remove(c));
        assert!(matches!(
            h.execute(c, &[], &[]),
            Err(HostError::UnknownContainer(_))
        ));
        h.shutdown();
    }

    #[test]
    fn backpressure_sheds_and_reports() {
        let mut h = FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 1,
                queue_capacity: 2,
                shed: ShedPolicy::DropNewest,
                ..HostConfig::default()
            },
        );
        // A hook that is slow enough to back the queue up: the gate
        // container spins through its whole (small) budget.
        let gate = custom_hook("gate", HookPolicy::First);
        let gate_id = gate.id;
        h.register_hook(gate, ContractOffer::helpers(standard_helper_ids()));
        h.set_exec_config(fc_rbpf::vm::ExecConfig::new(2_000_000, 1_000_000));
        let spin = "\
mov r0, 0
mov r1, 300000
loop: sub r1, 1
jne r1, 0, loop
exit";
        let c = h
            .install("spin", 1, &image(spin), ContractRequest::default())
            .unwrap();
        h.attach(c, gate_id).unwrap();
        let mut shed = 0u64;
        for _ in 0..200 {
            if h.fire(gate_id, &[], &[]) == Err(HostError::Shed) {
                shed += 1;
            }
        }
        assert!(shed > 0, "offered 200 events into a capacity-2 queue");
        assert!(h.stats().shed_rate() > 0.0);
        h.quiesce();
        let done = h
            .stats()
            .dispatched
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(done + shed, 200);
        h.shutdown();
    }

    #[test]
    fn fire_batch_delivers_every_event_with_one_round_trip() {
        let mut h = host(2);
        let hook = custom_hook("batch", HookPolicy::First);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        // Echoes the first context byte.
        let c = h
            .install(
                "echo",
                1,
                &image("ldxb r0, [r1]\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(c, hook_id).unwrap();
        let events: Vec<host::HookEvent> =
            (0..10u8).map(|i| host::HookEvent::new(&[i], &[])).collect();
        let receivers = h.fire_batch_with_reply(hook_id, events).unwrap();
        for (i, rx) in receivers.into_iter().enumerate() {
            let report = rx.recv().unwrap().unwrap();
            assert_eq!(report.combined, Some(i as u64), "per-event reply order");
        }
        assert_eq!(
            h.stats().batches.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "one queue round-trip for the whole batch"
        );
        // The no-reply flavour counts acceptance.
        let out = h
            .fire_batch(hook_id, vec![host::HookEvent::default(); 5])
            .unwrap();
        assert_eq!(out.accepted, 5);
        assert_eq!(out.rejected + out.displaced, 0);
        h.quiesce();
        h.shutdown();
    }

    #[test]
    fn fire_batch_sheds_per_event_at_capacity() {
        let mut h = FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 1,
                queue_capacity: 4,
                shed: ShedPolicy::DropNewest,
                ..HostConfig::default()
            },
        );
        let gate = custom_hook("gate", HookPolicy::First);
        let gate_id = gate.id;
        h.register_hook(gate, ContractOffer::helpers(standard_helper_ids()));
        h.set_exec_config(fc_rbpf::vm::ExecConfig::new(2_000_000, 1_000_000));
        let spin = "\
mov r0, 0
mov r1, 200000
loop: sub r1, 1
jne r1, 0, loop
exit";
        let c = h
            .install("spin", 1, &image(spin), ContractRequest::default())
            .unwrap();
        h.attach(c, gate_id).unwrap();
        let mut accepted = 0usize;
        let mut shed = 0usize;
        for _ in 0..20 {
            let out = h
                .fire_batch(gate_id, vec![host::HookEvent::default(); 10])
                .unwrap();
            accepted += out.accepted;
            shed += out.rejected + out.displaced;
        }
        assert!(shed > 0, "tiny queue must shed under batch pressure");
        h.quiesce();
        let stats = h.stats();
        let dispatched = stats.dispatched.load(std::sync::atomic::Ordering::Relaxed) as usize;
        assert_eq!(dispatched, accepted, "every accepted event executed");
        assert_eq!(
            stats.shed.load(std::sync::atomic::Ordering::Relaxed) as usize,
            shed
        );
        h.shutdown();
    }

    #[test]
    fn migrate_hook_moves_queue_containers_and_routing() {
        let mut h = host(2);
        let hook = custom_hook("mig", HookPolicy::Sum);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        let from = h.shard_of_hook(hook_id).unwrap();
        let to = (from + 1) % 2;
        let a = h
            .install(
                "a",
                1,
                &image("mov r0, 40\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        let b = h
            .install(
                "b",
                2,
                &image("mov r0, 2\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(a, hook_id).unwrap();
        h.attach(b, hook_id).unwrap();
        h.migrate_hook(hook_id, to).unwrap();
        assert_eq!(h.shard_of_hook(hook_id), Some(to), "routing flipped");
        assert_eq!(h.shard_of(a), Some(to), "containers followed");
        assert_eq!(h.shard_of(b), Some(to));
        let report = h.fire_sync(hook_id, &[], &[]).unwrap();
        assert_eq!(report.combined, Some(42), "attachment order preserved");
        assert_eq!(
            h.stats()
                .migrations
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Migrating to the same shard is a no-op; bad shard errors.
        h.migrate_hook(hook_id, to).unwrap();
        assert!(matches!(
            h.migrate_hook(hook_id, 9),
            Err(HostError::InvalidShard(9))
        ));
        // Lifecycle keeps working against the new shard.
        h.detach(a, hook_id).unwrap();
        assert_eq!(h.fire_sync(hook_id, &[], &[]).unwrap().combined, Some(2));
        h.shutdown();
    }

    #[test]
    fn migrate_hook_carries_pending_events_unshed() {
        let mut h = FcHost::new(
            Platform::CortexM4,
            Engine::FemtoContainer,
            HostConfig {
                workers: 2,
                queue_capacity: 512,
                ..HostConfig::default()
            },
        );
        let hook = custom_hook("pending", HookPolicy::First);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        // Slow container so events pile up behind the first.
        h.set_exec_config(fc_rbpf::vm::ExecConfig::new(2_000_000, 1_000_000));
        let spin = "\
mov r0, 7
mov r1, 100000
loop: sub r1, 1
jne r1, 0, loop
exit";
        let c = h
            .install("spin", 1, &image(spin), ContractRequest::default())
            .unwrap();
        h.attach(c, hook_id).unwrap();
        let receivers: Vec<_> = (0..40)
            .map(|_| h.fire_with_reply(hook_id, &[], &[]).unwrap())
            .collect();
        let to = (h.shard_of_hook(hook_id).unwrap() + 1) % 2;
        h.migrate_hook(hook_id, to).unwrap();
        // Every accepted event completes — none were shed by the move.
        for rx in receivers {
            assert_eq!(rx.recv().expect("not shed").unwrap().combined, Some(7));
        }
        h.quiesce();
        assert_eq!(
            h.stats()
                .dispatched
                .load(std::sync::atomic::Ordering::Relaxed),
            40
        );
        h.shutdown();
    }

    #[test]
    fn coap_front_serves_formatter_response() {
        let mut h = host(2);
        let hook = Hook::new("coap-t0", HookKind::CoapRequest, HookPolicy::First);
        let hook_id = hook.id;
        h.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
        // Seed the tenant store like the sensor pipeline would.
        h.env()
            .stores()
            .store(0, 2, fc_kvstore::Scope::Tenant, 1, 2155)
            .unwrap();
        let c = h
            .install(
                "fmt",
                2,
                &fc_core::apps::coap_formatter().to_bytes(),
                fc_core::apps::coap_formatter_request(),
            )
            .unwrap();
        h.attach(c, hook_id).unwrap();
        let mut front = CoapFront::new().with_pkt_len(64);
        front.add_route("t0/temp", hook_id);
        let mut req = fc_net::coap::Message::request(fc_net::coap::Code::Get, 7, b"t");
        req.set_path("t0/temp");
        let reply = front.dispatch_sync(&h, &req).unwrap();
        let msg = reply.message.expect("parses as CoAP");
        assert_eq!(msg.code, fc_net::coap::Code::Content);
        assert_eq!(msg.payload, b"2155");
        assert!(coap::is_content_response(&reply.pdu));
        h.shutdown();
    }

    #[test]
    fn stats_track_tenant_instruction_shares() {
        let mut h = host(2);
        let heavy = custom_hook("heavy", HookPolicy::First);
        let light = custom_hook("light", HookPolicy::First);
        let (heavy_id, light_id) = (heavy.id, light.id);
        h.register_hook(heavy, ContractOffer::helpers(standard_helper_ids()));
        h.register_hook(light, ContractOffer::helpers(standard_helper_ids()));
        let loop_src = "\
mov r0, 0
mov r1, 500
loop: sub r1, 1
jne r1, 0, loop
exit";
        let hc = h
            .install("heavy", 1, &image(loop_src), ContractRequest::default())
            .unwrap();
        let lc = h
            .install(
                "light",
                2,
                &image("mov r0, 1\nexit"),
                ContractRequest::default(),
            )
            .unwrap();
        h.attach(hc, heavy_id).unwrap();
        h.attach(lc, light_id).unwrap();
        for _ in 0..10 {
            h.fire(heavy_id, &[], &[]).unwrap();
            h.fire(light_id, &[], &[]).unwrap();
        }
        h.quiesce();
        let tenants = h.stats().tenants();
        assert_eq!(tenants.len(), 2);
        let (t1, t2) = (tenants[0].1, tenants[1].1);
        assert_eq!(t1.executions, 10);
        assert_eq!(t2.executions, 10);
        assert!(t1.insns > 50 * t2.insns, "heavy tenant's share is visible");
        assert!(h.stats().latency.count() >= 20);
        h.shutdown();
    }
}
