//! Per-hook bounded event queues with deficit-round-robin scheduling.
//!
//! Each shard owns one `Inbox`: a control lane for lifecycle commands
//! (drained with priority — this is the serialization point live SUIT
//! deploys ride: a `Deploy` command's install + attach + predecessor
//! swap lands between event drains) and one bounded FIFO per
//! registered hook. Producers enqueue under the inbox mutex and notify
//! the shard's condvar; the worker drains **batches** so one lock
//! acquisition pays for up to `drain_batch` events.
//!
//! ## Fair scheduling
//!
//! The worker picks events by deficit round-robin *in instruction
//! units*: every queue visited in a scheduling round earns a quantum of
//! deficit, spending it as its events execute (the charge is the actual
//! VM instruction count the event retired, post-paid via
//! `Inbox::charge`). A hook whose containers burn long programs
//! therefore gets fewer event slots per round than a hook running short
//! ones — per-tenant fairness falls out when tenants attach to their
//! own hooks, which is how the CoAP front-end routes resources. Debt is
//! clamped and forgiven when every backlogged queue is in debt, so the
//! shard never idles while work is pending.
//!
//! ## Backpressure
//!
//! A full queue sheds according to [`ShedPolicy`]: `DropNewest` rejects
//! the incoming event (the CoAP analogue: the request gets no
//! response and the client retries), `DropOldest` displaces the
//! stalest queued event in favour of the new one. A dropped event's
//! reply channel is simply dropped, which a synchronous caller
//! observes as [`crate::HostError::Shed`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::SyncSender;
use std::time::Instant;

use fc_core::engine::{EngineError, HookReport, HostRegion};
use fc_suit::Uuid;

use crate::journal::DurableTag;
use crate::shard::Command;

/// What to do when a hook queue is full (paper-scale devices must
/// bound queue memory; a hosting server must bound latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Reject the incoming event (tail drop).
    #[default]
    DropNewest,
    /// Displace the oldest queued event (head drop).
    DropOldest,
}

/// How an accepted event entered the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accepted {
    /// Appended normally.
    Queued,
    /// Appended after displacing the oldest queued event
    /// (`DropOldest` backpressure; the displaced event was shed).
    QueuedDroppedOldest,
}

/// Debt clamp, in quanta: a queue can owe at most this many rounds.
const MAX_DEBT_QUANTA: i64 = 8;

/// Accounting outcome of a batched enqueue (`Inbox::enqueue_batch`):
/// how many events entered the queue and how many were shed, in one
/// inbox lock acquisition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchAccepted {
    /// Events that entered the queue.
    pub accepted: usize,
    /// Events shed on arrival (`DropNewest` at capacity, or no queue).
    pub rejected: usize,
    /// Previously queued events displaced by this batch (`DropOldest`);
    /// these were counted as accepted when *they* arrived.
    pub displaced: usize,
}

/// One queued hook event.
#[derive(Debug)]
pub(crate) struct Event {
    pub hook: Uuid,
    pub ctx: Vec<u8>,
    pub extra: Vec<HostRegion>,
    pub enqueued_at: Instant,
    /// Present for synchronous fires; dropped replies signal shedding.
    pub reply: Option<SyncSender<Result<HookReport, EngineError>>>,
    /// Exactly-once identity of the client exchange behind this event,
    /// when the caller wants its commit journaled under a token.
    pub durable_tag: Option<DurableTag>,
}

/// A hook's FIFO plus its scheduling deficit (instruction units).
pub(crate) struct HookQueue {
    pub events: VecDeque<Event>,
    pub deficit: i64,
}

/// A shard's whole intake: control lane + per-hook event queues.
pub(crate) struct Inbox {
    pub control: VecDeque<Command>,
    pub queues: BTreeMap<Uuid, HookQueue>,
    /// DRR visiting order (hook registration order).
    order: Vec<Uuid>,
    cursor: usize,
    /// Total queued events across all hooks.
    pub pending: usize,
    /// Cleared on shutdown; the worker exits once drained.
    pub open: bool,
}

impl Inbox {
    pub fn new() -> Self {
        Inbox {
            control: VecDeque::new(),
            queues: BTreeMap::new(),
            order: Vec::new(),
            cursor: 0,
            pending: 0,
            open: true,
        }
    }

    /// Total queued events across all hooks — the per-shard queue
    /// depth a `/metrics` scrape reports.
    pub fn depth(&self) -> usize {
        self.pending
    }

    /// Creates the queue for a newly registered hook (idempotent).
    pub fn add_queue(&mut self, hook: Uuid) {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.queues.entry(hook) {
            slot.insert(HookQueue {
                events: VecDeque::new(),
                deficit: 0,
            });
            self.order.push(hook);
        }
    }

    /// Enqueues an event, applying backpressure at `capacity`.
    ///
    /// Returns `Err(event)` when the event was shed (`DropNewest` on a
    /// full queue, or the hook has no queue here); `Ok` carries how it
    /// entered plus any displaced event (already shed, returned so the
    /// caller can account it).
    #[allow(clippy::result_large_err)] // Err hands the shed event back by value for accounting
    pub fn enqueue(
        &mut self,
        event: Event,
        capacity: usize,
        shed: ShedPolicy,
    ) -> Result<(Accepted, Option<Event>), Event> {
        let Some(q) = self.queues.get_mut(&event.hook) else {
            return Err(event);
        };
        let mut displaced = None;
        let mut how = Accepted::Queued;
        if q.events.len() >= capacity {
            match shed {
                ShedPolicy::DropNewest => return Err(event),
                ShedPolicy::DropOldest => {
                    displaced = q.events.pop_front();
                    // Guard against a zero-capacity queue (the host
                    // clamps capacity to ≥ 1, but this type must not
                    // rely on its caller for counter integrity).
                    if displaced.is_some() {
                        self.pending -= 1;
                        how = Accepted::QueuedDroppedOldest;
                    }
                }
            }
        }
        q.events.push_back(event);
        self.pending += 1;
        Ok((how, displaced))
    }

    /// Enqueues a whole batch of events under one lock acquisition —
    /// the amortised half of the batched-fire path. Per-event semantics
    /// are exactly those of `Inbox::enqueue`, applied in order: shed
    /// and displaced events are dropped here (their reply senders drop
    /// with them, which synchronous callers observe as
    /// [`crate::HostError::Shed`]) and only the accounting comes back.
    pub fn enqueue_batch(
        &mut self,
        events: Vec<Event>,
        capacity: usize,
        shed: ShedPolicy,
    ) -> BatchAccepted {
        let mut outcome = BatchAccepted::default();
        for event in events {
            match self.enqueue(event, capacity, shed) {
                Ok((_, displaced)) => {
                    outcome.accepted += 1;
                    outcome.displaced += displaced.is_some() as usize;
                }
                Err(_rejected) => outcome.rejected += 1,
            }
        }
        outcome
    }

    /// Removes a hook's queue entirely, returning its pending events in
    /// FIFO order — the first half of migrating a hook to another
    /// shard. The DRR cursor is adjusted so the visiting order of the
    /// remaining queues is unchanged.
    pub fn remove_queue(&mut self, hook: Uuid) -> Vec<Event> {
        let Some(q) = self.queues.remove(&hook) else {
            return Vec::new();
        };
        if let Some(pos) = self.order.iter().position(|h| *h == hook) {
            self.order.remove(pos);
            if self.cursor > pos {
                self.cursor -= 1;
            }
        }
        self.pending -= q.events.len();
        q.events.into()
    }

    /// Appends events migrated from another shard onto a hook's queue
    /// (creating it if needed), preserving their order. The capacity
    /// bound is deliberately not applied: these events were already
    /// accepted once and must not be shed by the move itself.
    pub fn inject(&mut self, hook: Uuid, events: Vec<Event>) {
        self.add_queue(hook);
        let q = self.queues.get_mut(&hook).expect("queue just ensured");
        self.pending += events.len();
        q.events.extend(events);
    }

    /// Takes up to `max` events by deficit round-robin (see module
    /// docs). Returns an empty batch only when nothing is pending.
    pub fn take_batch(&mut self, quantum: i64, max: usize) -> Vec<Event> {
        let mut batch = Vec::new();
        if self.pending == 0 || self.order.is_empty() {
            return batch;
        }
        loop {
            let n = self.order.len();
            let mut idle_visits = 0;
            while batch.len() < max && idle_visits < n {
                let hook = self.order[self.cursor % n];
                self.cursor = (self.cursor + 1) % n;
                let q = self.queues.get_mut(&hook).expect("ordered queue exists");
                if q.events.is_empty() {
                    // Classic DRR: an idle queue carries no credit
                    // forward (debt from post-paid charges does
                    // persist), so idling never buys future exemption
                    // from instruction fairness.
                    q.deficit = q.deficit.min(0);
                    idle_visits += 1;
                    continue;
                }
                if q.deficit <= 0 {
                    q.deficit += quantum;
                }
                if q.deficit > 0 {
                    batch.push(q.events.pop_front().expect("non-empty"));
                    self.pending -= 1;
                    idle_visits = 0;
                } else {
                    idle_visits += 1;
                }
            }
            if !batch.is_empty() || self.pending == 0 || batch.len() >= max {
                return batch;
            }
            // Every backlogged queue is in debt: forgive one quantum
            // each (backlogged queues only, credit capped at one
            // quantum) rather than idling with work pending.
            for q in self.queues.values_mut() {
                if !q.events.is_empty() {
                    q.deficit = (q.deficit + quantum).min(quantum);
                }
            }
        }
    }

    /// Post-pays an executed event's actual instruction cost against
    /// its hook's deficit (debt clamped to [`MAX_DEBT_QUANTA`] rounds).
    pub fn charge(&mut self, hook: Uuid, insns: u64, quantum: i64) {
        if let Some(q) = self.queues.get_mut(&hook) {
            let floor = -MAX_DEBT_QUANTA * quantum.max(1);
            q.deficit = (q.deficit - insns.min(i64::MAX as u64) as i64).max(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(hook: Uuid) -> Event {
        Event {
            hook,
            ctx: Vec::new(),
            extra: Vec::new(),
            enqueued_at: Instant::now(),
            reply: None,
            durable_tag: None,
        }
    }

    fn hook(n: &str) -> Uuid {
        Uuid::from_name("test/hooks", n)
    }

    #[test]
    fn enqueue_to_unknown_hook_is_shed() {
        let mut inbox = Inbox::new();
        assert!(inbox
            .enqueue(ev(hook("h")), 4, ShedPolicy::DropNewest)
            .is_err());
    }

    #[test]
    fn drop_newest_sheds_incoming_at_capacity() {
        let mut inbox = Inbox::new();
        let h = hook("h");
        inbox.add_queue(h);
        for _ in 0..4 {
            inbox.enqueue(ev(h), 4, ShedPolicy::DropNewest).unwrap();
        }
        assert!(inbox.enqueue(ev(h), 4, ShedPolicy::DropNewest).is_err());
        assert_eq!(inbox.pending, 4);
    }

    #[test]
    fn drop_oldest_displaces_head() {
        let mut inbox = Inbox::new();
        let h = hook("h");
        inbox.add_queue(h);
        for i in 0..4u8 {
            let mut e = ev(h);
            e.ctx = vec![i];
            inbox.enqueue(e, 4, ShedPolicy::DropOldest).unwrap();
        }
        let mut newest = ev(h);
        newest.ctx = vec![9];
        let (how, displaced) = inbox.enqueue(newest, 4, ShedPolicy::DropOldest).unwrap();
        assert_eq!(how, Accepted::QueuedDroppedOldest);
        assert_eq!(displaced.unwrap().ctx, vec![0], "oldest goes");
        assert_eq!(inbox.pending, 4);
        let batch = inbox.take_batch(1024, 16);
        assert_eq!(batch.last().unwrap().ctx, vec![9]);
    }

    #[test]
    fn drr_alternates_between_equally_cheap_queues() {
        let mut inbox = Inbox::new();
        let (a, b) = (hook("a"), hook("b"));
        inbox.add_queue(a);
        inbox.add_queue(b);
        for _ in 0..3 {
            inbox.enqueue(ev(a), 16, ShedPolicy::DropNewest).unwrap();
            inbox.enqueue(ev(b), 16, ShedPolicy::DropNewest).unwrap();
        }
        let batch = inbox.take_batch(100, 6);
        let hooks: Vec<Uuid> = batch.iter().map(|e| e.hook).collect();
        assert_eq!(hooks, vec![a, b, a, b, a, b], "round-robin interleave");
    }

    #[test]
    fn expensive_queue_yields_slots_to_cheap_queue() {
        let mut inbox = Inbox::new();
        let (heavy, light) = (hook("heavy"), hook("light"));
        inbox.add_queue(heavy);
        inbox.add_queue(light);
        for _ in 0..8 {
            inbox
                .enqueue(ev(heavy), 16, ShedPolicy::DropNewest)
                .unwrap();
            inbox
                .enqueue(ev(light), 16, ShedPolicy::DropNewest)
                .unwrap();
        }
        // Round 1: both run one event; heavy costs 10 quanta, light 0.1.
        let quantum = 100;
        let batch = inbox.take_batch(quantum, 2);
        assert_eq!(batch.len(), 2);
        inbox.charge(heavy, 1000, quantum);
        inbox.charge(light, 10, quantum);
        // Heavy is now deep in debt: the next several slots go to light.
        let batch = inbox.take_batch(quantum, 4);
        let lights = batch.iter().filter(|e| e.hook == light).count();
        assert!(lights >= 3, "light got {lights}/4 slots");
    }

    #[test]
    fn idle_queues_accumulate_no_scheduling_credit() {
        let mut inbox = Inbox::new();
        let (busy, idle) = (hook("busy"), hook("idle"));
        inbox.add_queue(busy);
        inbox.add_queue(idle);
        let quantum = 10;
        for _ in 0..20 {
            inbox.enqueue(ev(busy), 64, ShedPolicy::DropNewest).unwrap();
        }
        // The busy queue stays pinned in debt, so many forgiveness
        // rounds run while the other queue sits idle.
        for _ in 0..20 {
            assert_eq!(inbox.take_batch(quantum, 1).len(), 1);
            inbox.charge(busy, 1_000, quantum);
        }
        let idle_deficit = inbox.queues.get(&idle).unwrap().deficit;
        assert!(
            idle_deficit <= quantum,
            "idle queue must not bank credit, has {idle_deficit}"
        );
    }

    #[test]
    fn zero_capacity_drop_oldest_does_not_corrupt_pending() {
        let mut inbox = Inbox::new();
        let h = hook("h");
        inbox.add_queue(h);
        // Degenerate capacity: nothing to displace, event still lands.
        let (how, displaced) = inbox.enqueue(ev(h), 0, ShedPolicy::DropOldest).unwrap();
        assert_eq!(how, Accepted::Queued);
        assert!(displaced.is_none());
        assert_eq!(inbox.pending, 1);
        assert_eq!(inbox.take_batch(10, 4).len(), 1);
        assert_eq!(inbox.pending, 0);
    }

    #[test]
    fn batch_enqueue_matches_per_event_semantics() {
        let mut inbox = Inbox::new();
        let h = hook("h");
        inbox.add_queue(h);
        // 6 events into a capacity-4 queue: 4 accepted, 2 tail-dropped.
        let events: Vec<Event> = (0..6u8)
            .map(|i| {
                let mut e = ev(h);
                e.ctx = vec![i];
                e
            })
            .collect();
        let out = inbox.enqueue_batch(events, 4, ShedPolicy::DropNewest);
        assert_eq!(
            out,
            BatchAccepted {
                accepted: 4,
                rejected: 2,
                displaced: 0
            }
        );
        assert_eq!(inbox.pending, 4);
        // Same offer under DropOldest: all 6 accepted, 2 old displaced,
        // and the queue holds the newest four in order.
        let events: Vec<Event> = (10..16u8)
            .map(|i| {
                let mut e = ev(h);
                e.ctx = vec![i];
                e
            })
            .collect();
        let out = inbox.enqueue_batch(events, 4, ShedPolicy::DropOldest);
        assert_eq!(out.accepted, 6);
        assert_eq!(out.displaced, 6, "four old + two of this batch");
        let drained = inbox.take_batch(1 << 20, 16);
        let ctxs: Vec<u8> = drained.iter().map(|e| e.ctx[0]).collect();
        assert_eq!(ctxs, vec![12, 13, 14, 15]);
    }

    #[test]
    fn remove_and_inject_migrate_a_queue_between_inboxes() {
        let mut a = Inbox::new();
        let mut b = Inbox::new();
        let (h, other) = (hook("h"), hook("other"));
        a.add_queue(h);
        a.add_queue(other);
        for i in 0..3u8 {
            let mut e = ev(h);
            e.ctx = vec![i];
            a.enqueue(e, 16, ShedPolicy::DropNewest).unwrap();
        }
        a.enqueue(ev(other), 16, ShedPolicy::DropNewest).unwrap();
        let moved = a.remove_queue(h);
        assert_eq!(moved.len(), 3);
        assert_eq!(a.pending, 1, "other hook's event stays");
        assert!(a.remove_queue(h).is_empty(), "second removal is empty");
        // Re-enqueueing to the removed queue sheds (no queue here).
        assert!(a.enqueue(ev(h), 16, ShedPolicy::DropNewest).is_err());
        b.inject(h, moved);
        assert_eq!(b.pending, 3);
        let drained = b.take_batch(1 << 20, 16);
        let ctxs: Vec<u8> = drained.iter().map(|e| e.ctx[0]).collect();
        assert_eq!(ctxs, vec![0, 1, 2], "FIFO order survives the move");
    }

    #[test]
    fn all_queues_in_debt_still_make_progress() {
        let mut inbox = Inbox::new();
        let h = hook("h");
        inbox.add_queue(h);
        inbox.enqueue(ev(h), 4, ShedPolicy::DropNewest).unwrap();
        inbox.charge(h, 1_000_000, 10); // way past the clamp
        let batch = inbox.take_batch(10, 1);
        assert_eq!(batch.len(), 1, "debt is forgiven rather than stalling");
    }
}
