//! Hot-shard rebalancing: watch per-shard simulated busy time, detect
//! sustained imbalance, migrate hot hooks onto underloaded shards.
//!
//! Hooks are placed round-robin at registration ([`crate::FcHost::
//! register_hook`]), which is blind to how much work each hook's
//! events turn out to cost. Under a skewed tenant mix (a few hot
//! resources, a long cold tail — the common CoAP shape) round-robin
//! can stack the hot hooks on one shard while its siblings idle,
//! capping the host's schedulable throughput at the hottest shard.
//!
//! The [`Rebalancer`] closes that loop using signals the shards
//! already export ([`crate::ShardReport`]): **simulated platform
//! cycles** per shard and per hook. Because the cycle model is
//! deterministic and preemption-free, the imbalance measure is immune
//! to how the host box time-slices worker threads — the same
//! methodology the capacity metric in `BENCH_host.json` is built on.
//!
//! ## Hysteresis
//!
//! Three guards keep the rebalancer from thrashing:
//!
//! * **windowed deltas** — decisions use the cycles accrued *since the
//!   previous observation*, not lifetime totals, so an old imbalance
//!   that has already been fixed cannot re-trigger;
//! * **sustain** — imbalance must persist for `sustain` consecutive
//!   observations before anything moves (a one-window burst is noise);
//! * **strict improvement + cooldown** — a hook moves only when the
//!   move strictly lowers the hottest shard's projected load
//!   (`cold + hook < hot`), and after any move the rebalancer sits out
//!   `cooldown` observations so the new placement can prove itself in
//!   fresh windows.
//!
//! The migration itself — queue, registration, containers — is
//! [`crate::FcHost::migrate_hook`], which preserves per-event
//! semantics exactly (see its docs and `tests/host_differential.rs`).

use std::collections::HashMap;

use fc_suit::Uuid;

use crate::host::{FcHost, HostError};

/// Tuning knobs for the [`Rebalancer`].
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Rebalance only while the window balance (mean/max of per-shard
    /// busy cycles) is below this. `1.0` would chase noise; the default
    /// `0.9` matches the placement quality round-robin achieves on a
    /// uniform mix.
    pub min_balance: f64,
    /// Consecutive imbalanced observations required before moving.
    pub sustain: u32,
    /// Observations to sit out after performing migrations.
    pub cooldown: u32,
    /// Maximum hook migrations per observation.
    pub max_moves: usize,
    /// Ignore windows with less total simulated work than this (cycle
    /// counts too small to be a real signal).
    pub min_window_cycles: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            min_balance: 0.9,
            sustain: 2,
            cooldown: 1,
            max_moves: 2,
            min_window_cycles: 10_000,
        }
    }
}

/// One hook migration the rebalancer performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookMove {
    /// The migrated hook.
    pub hook: Uuid,
    /// Shard it was on.
    pub from: usize,
    /// Shard it moved to.
    pub to: usize,
}

/// What one [`Rebalancer::observe`] call saw and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceReport {
    /// Simulated busy cycles per shard in the observation window.
    pub window_cycles: Vec<u64>,
    /// Window balance: mean over max of `window_cycles` (1.0 = even).
    pub balance: f64,
    /// Migrations performed this observation (empty when hysteresis
    /// held them back or the load is balanced).
    pub moves: Vec<HookMove>,
}

/// Watches a host's per-shard busy-time statistics and migrates hot
/// hooks off overloaded shards (module docs).
///
/// # Examples
///
/// ```
/// use fc_host::{FcHost, HostConfig, RebalanceConfig, Rebalancer};
/// use fc_rtos::platform::{Engine, Platform};
///
/// let mut host = FcHost::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
/// let mut rebalancer = Rebalancer::new(RebalanceConfig::default());
/// // ... register hooks, attach containers, fire events ...
/// let report = rebalancer.observe(&mut host).unwrap();
/// assert!(report.moves.is_empty(), "an idle host needs no moves");
/// host.shutdown();
/// ```
#[derive(Debug)]
pub struct Rebalancer {
    config: RebalanceConfig,
    /// Lifetime per-shard cycles at the last observation.
    last_shard_cycles: Vec<u64>,
    /// Lifetime per-hook cycles (summed over shards) at the last
    /// observation.
    last_hook_cycles: HashMap<Uuid, u64>,
    imbalanced_streak: u32,
    cooldown_left: u32,
}

impl Rebalancer {
    /// Creates a rebalancer; the first [`Rebalancer::observe`] call
    /// establishes the baseline window and never moves anything.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer {
            config,
            last_shard_cycles: Vec::new(),
            last_hook_cycles: HashMap::new(),
            imbalanced_streak: 0,
            cooldown_left: 0,
        }
    }

    /// Takes one observation: reads the shards' cycle counters,
    /// computes the window balance, and — when imbalance has persisted
    /// past the hysteresis guards — migrates hot hooks onto underloaded
    /// shards via [`FcHost::migrate_hook`].
    ///
    /// Call this periodically from whatever owns the host (a timer
    /// tick, every N dispatched events, between load rounds). Needs
    /// `&mut FcHost` because migration rewires lifecycle state; that
    /// exclusivity is also what makes the move race-free.
    ///
    /// # Errors
    ///
    /// Propagates [`FcHost::migrate_hook`] failures; observation itself
    /// cannot fail.
    pub fn observe(&mut self, host: &mut FcHost) -> Result<RebalanceReport, HostError> {
        let reports = host.shard_reports();
        let n = reports.len();
        let mut shard_total = vec![0u64; n];
        let mut hook_total: HashMap<Uuid, u64> = HashMap::new();
        for r in &reports {
            if r.shard < n {
                shard_total[r.shard] = r.sim_cycles;
            }
            for &(hook, cycles) in &r.hook_cycles {
                *hook_total.entry(hook).or_insert(0) += cycles;
            }
        }

        // The very first observation only establishes the baseline:
        // lifetime totals are not a window, and on a long-running host
        // they may describe an imbalance that is already gone.
        let first_observation = self.last_shard_cycles.is_empty();

        // Window deltas vs the previous observation.
        let window: Vec<u64> = shard_total
            .iter()
            .enumerate()
            .map(|(i, &now)| {
                now.saturating_sub(self.last_shard_cycles.get(i).copied().unwrap_or(0))
            })
            .collect();
        let hook_window: Vec<(Uuid, u64)> = hook_total
            .iter()
            .map(|(&hook, &now)| {
                (
                    hook,
                    now.saturating_sub(self.last_hook_cycles.get(&hook).copied().unwrap_or(0)),
                )
            })
            .collect();
        self.last_shard_cycles = shard_total;
        self.last_hook_cycles = hook_total;

        let total: u64 = window.iter().sum();
        let max = window.iter().copied().max().unwrap_or(0);
        let balance = if max == 0 {
            1.0
        } else {
            total as f64 / (max as f64 * n as f64)
        };
        let mut report = RebalanceReport {
            window_cycles: window.clone(),
            balance,
            moves: Vec::new(),
        };

        if first_observation {
            return Ok(report);
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Ok(report);
        }
        if total < self.config.min_window_cycles || balance >= self.config.min_balance {
            self.imbalanced_streak = 0;
            return Ok(report);
        }
        self.imbalanced_streak += 1;
        if self.imbalanced_streak < self.config.sustain {
            return Ok(report);
        }

        // Only hooks still owned by the shard they burned cycles on are
        // candidates (a hook that moved mid-window attributes cycles to
        // several shards; its current owner is authoritative).
        let candidates: Vec<(Uuid, usize, u64)> = hook_window
            .into_iter()
            .filter_map(|(hook, cycles)| host.shard_of_hook(hook).map(|s| (hook, s, cycles)))
            .collect();
        let planned = plan_moves(&window, &candidates, self.config.max_moves);
        for m in &planned {
            host.migrate_hook(m.hook, m.to)?;
        }
        if !planned.is_empty() {
            self.cooldown_left = self.config.cooldown;
            self.imbalanced_streak = 0;
        }
        report.moves = planned;
        Ok(report)
    }
}

/// Greedy migration planning over one observation window: repeatedly
/// take the hottest and coldest shards and move the largest hook off
/// the hot shard that **strictly improves** the pair
/// (`cold + hook < hot`). The projected max load is monotonically
/// non-increasing, so a plan can never oscillate.
///
/// Pure function of the window — the unit-testable heart of the
/// rebalancer.
pub fn plan_moves(window: &[u64], hooks: &[(Uuid, usize, u64)], max_moves: usize) -> Vec<HookMove> {
    let mut load: Vec<u64> = window.to_vec();
    let mut owner: HashMap<Uuid, usize> = hooks.iter().map(|&(h, s, _)| (h, s)).collect();
    let mut moves = Vec::new();
    for _ in 0..max_moves {
        let Some(hot) = (0..load.len()).max_by_key(|&i| load[i]) else {
            break;
        };
        let Some(cold) = (0..load.len()).min_by_key(|&i| load[i]) else {
            break;
        };
        if hot == cold {
            break;
        }
        // Largest hook on the hot shard whose move strictly lowers the
        // pair's max; ties break on the hook id for determinism.
        let pick = hooks
            .iter()
            .filter(|(h, _, cycles)| {
                owner.get(h) == Some(&hot)
                    && *cycles > 0
                    && load[cold].saturating_add(*cycles) < load[hot]
            })
            .max_by_key(|(h, _, cycles)| (*cycles, *h));
        let Some(&(hook, _, cycles)) = pick else {
            break;
        };
        load[hot] -= cycles;
        load[cold] += cycles;
        owner.insert(hook, cold);
        moves.push(HookMove {
            hook,
            from: hot,
            to: cold,
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hook(n: u32) -> Uuid {
        Uuid::from_name("test/rebalance", &n.to_string())
    }

    #[test]
    fn balanced_window_plans_nothing() {
        let window = [100, 100, 100, 100];
        let hooks: Vec<_> = (0..4).map(|i| (hook(i), i as usize, 100)).collect();
        assert!(plan_moves(&window, &hooks, 4).is_empty());
    }

    #[test]
    fn colliding_hot_hooks_spread_to_cold_shards() {
        // The bench shape: hot hooks 0 and 4 collide on shard 0, hot
        // hooks 1 and 5 on shard 1; shards 2 and 3 carry only cold
        // hooks.
        let window = [400, 400, 100, 100];
        let hooks = vec![
            (hook(0), 0, 200),
            (hook(4), 0, 200),
            (hook(1), 1, 200),
            (hook(5), 1, 200),
            (hook(2), 2, 50),
            (hook(6), 2, 50),
            (hook(3), 3, 50),
            (hook(7), 3, 50),
        ];
        let moves = plan_moves(&window, &hooks, 2);
        assert_eq!(moves.len(), 2);
        let mut froms: Vec<usize> = moves.iter().map(|m| m.from).collect();
        froms.sort_unstable();
        assert_eq!(froms, vec![0, 1], "one hook off each hot shard");
        assert!(moves.iter().all(|m| m.to >= 2), "moves land on cold shards");
        // Projected loads after the plan are strictly better.
        let mut load = window;
        for m in &moves {
            let cycles = hooks.iter().find(|(h, _, _)| *h == m.hook).unwrap().2;
            load[m.from] -= cycles;
            load[m.to] += cycles;
        }
        assert!(load.iter().max() < window.iter().max());
    }

    #[test]
    fn no_move_when_nothing_strictly_improves() {
        // One giant hook dominates its shard: moving it would just move
        // the hot spot (1000 to a 0-load shard stays max), and the rule
        // demands strict improvement.
        let window = [1000, 0];
        let hooks = vec![(hook(0), 0, 1000)];
        assert!(plan_moves(&window, &hooks, 4).is_empty());
        // But a splittable shard does improve.
        let hooks = vec![(hook(0), 0, 600), (hook(1), 0, 400)];
        let moves = plan_moves(&window, &hooks, 4);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].hook, hook(0), "largest improving hook moves");
    }

    #[test]
    fn plan_respects_max_moves() {
        let window = [900, 0, 0];
        let hooks = vec![(hook(0), 0, 300), (hook(1), 0, 300), (hook(2), 0, 300)];
        assert_eq!(plan_moves(&window, &hooks, 1).len(), 1);
        assert!(plan_moves(&window, &hooks, 3).len() >= 2);
    }
}
