//! Hot-shard rebalancing: watch per-shard simulated busy time, detect
//! sustained imbalance, migrate hot hooks onto underloaded shards.
//!
//! Hooks are placed round-robin at registration ([`crate::FcHost::
//! register_hook`]), which is blind to how much work each hook's
//! events turn out to cost. Under a skewed tenant mix (a few hot
//! resources, a long cold tail — the common CoAP shape) round-robin
//! can stack the hot hooks on one shard while its siblings idle,
//! capping the host's schedulable throughput at the hottest shard.
//!
//! The [`Rebalancer`] closes that loop using signals the shards
//! already export ([`crate::ShardReport`]): **simulated platform
//! cycles** per shard and per hook. Because the cycle model is
//! deterministic and preemption-free, the imbalance measure is immune
//! to how the host box time-slices worker threads — the same
//! methodology the capacity metric in `BENCH_host.json` is built on.
//!
//! ## Hysteresis
//!
//! Three guards keep the rebalancer from thrashing:
//!
//! * **windowed deltas** — decisions use the cycles accrued *since the
//!   previous observation*, not lifetime totals, so an old imbalance
//!   that has already been fixed cannot re-trigger;
//! * **sustain** — imbalance must persist for `sustain` consecutive
//!   observations before anything moves (a one-window burst is noise);
//! * **strict improvement + cooldown** — a hook moves only when the
//!   move strictly lowers the hottest shard's projected load
//!   (`cold + hook < hot`), and after any move the rebalancer sits out
//!   `cooldown` observations so the new placement can prove itself in
//!   fresh windows.
//!
//! The migration itself — queue, registration, containers — is
//! [`crate::FcHost::migrate_hook`], which preserves per-event
//! semantics exactly (see its docs and `tests/host_differential.rs`).

use std::collections::HashMap;

use fc_suit::Uuid;

use crate::host::{FcHost, HostError};
use crate::shard::ShardReport;
use crate::telemetry::TraceKind;

/// Tuning knobs for the [`Rebalancer`].
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Rebalance only while the window balance (mean/max of per-shard
    /// busy cycles) is below this. `1.0` would chase noise; the default
    /// `0.9` matches the placement quality round-robin achieves on a
    /// uniform mix.
    pub min_balance: f64,
    /// Consecutive imbalanced observations required before moving.
    pub sustain: u32,
    /// Observations to sit out after performing migrations.
    pub cooldown: u32,
    /// Maximum hook migrations per observation.
    pub max_moves: usize,
    /// Ignore windows with less total simulated work than this (cycle
    /// counts too small to be a real signal).
    pub min_window_cycles: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            min_balance: 0.9,
            sustain: 2,
            cooldown: 1,
            max_moves: 2,
            min_window_cycles: 10_000,
        }
    }
}

/// One hook migration the rebalancer performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookMove {
    /// The migrated hook.
    pub hook: Uuid,
    /// Shard it was on.
    pub from: usize,
    /// Shard it moved to.
    pub to: usize,
}

/// What one [`Rebalancer::observe`] call saw and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceReport {
    /// Simulated busy cycles per shard in the observation window.
    pub window_cycles: Vec<u64>,
    /// Window balance: mean over max of `window_cycles` (1.0 = even).
    pub balance: f64,
    /// Per-hook simulated cycles in the observation window (summed
    /// over shards, sorted by hook id).
    pub hook_window: Vec<(Uuid, u64)>,
    /// Migrations performed this observation (empty when hysteresis
    /// held them back or the load is balanced).
    pub moves: Vec<HookMove>,
}

/// Watches a host's per-shard busy-time statistics and migrates hot
/// hooks off overloaded shards (module docs).
///
/// # Examples
///
/// ```
/// use fc_host::{FcHost, HostConfig, RebalanceConfig, Rebalancer};
/// use fc_rtos::platform::{Engine, Platform};
///
/// let mut host = FcHost::new(Platform::CortexM4, Engine::FemtoContainer, HostConfig::default());
/// let mut rebalancer = Rebalancer::new(RebalanceConfig::default());
/// // ... register hooks, attach containers, fire events ...
/// let report = rebalancer.observe(&host).unwrap();
/// assert!(report.moves.is_empty(), "an idle host needs no moves");
/// host.shutdown();
/// ```
#[derive(Debug)]
pub struct Rebalancer {
    config: RebalanceConfig,
    /// Lifetime per-shard cycles at the last observation.
    last_shard_cycles: Vec<u64>,
    /// Lifetime per-hook cycles (summed over shards) at the last
    /// observation.
    last_hook_cycles: HashMap<Uuid, u64>,
    imbalanced_streak: u32,
    cooldown_left: u32,
}

impl Rebalancer {
    /// Creates a rebalancer; the first [`Rebalancer::observe`] call
    /// establishes the baseline window and never moves anything.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer {
            config,
            last_shard_cycles: Vec::new(),
            last_hook_cycles: HashMap::new(),
            imbalanced_streak: 0,
            cooldown_left: 0,
        }
    }

    /// Takes one observation: reads the shards' cycle counters,
    /// computes the window balance, and — when imbalance has persisted
    /// past the hysteresis guards — migrates hot hooks onto underloaded
    /// shards via [`FcHost::migrate_hook`].
    ///
    /// Call this periodically from whatever owns the host (between
    /// load rounds, on a timer tick) — or let the host call it itself:
    /// with [`crate::HostConfig::rebalance_interval`] set, the host
    /// folds a `Rebalancer` in and observes in-band every N dispatched
    /// events. Migration is race-free either way: the host's placement
    /// lock serializes the move against every concurrent fire and
    /// lifecycle operation.
    ///
    /// # Errors
    ///
    /// Propagates [`FcHost::migrate_hook`] failures; observation itself
    /// cannot fail.
    pub fn observe(&mut self, host: &FcHost) -> Result<RebalanceReport, HostError> {
        let reports = host.shard_reports();
        let (window, mut hook_window, first_observation) =
            self.take_window(&reports, host.shard_count());
        hook_window.sort_unstable_by_key(|&(hook, _)| hook);

        let total: u64 = window.iter().sum();
        let max = window.iter().copied().max().unwrap_or(0);
        let balance = if max == 0 {
            1.0
        } else {
            total as f64 / (max as f64 * window.len() as f64)
        };
        let mut report = RebalanceReport {
            window_cycles: window.clone(),
            balance,
            hook_window: hook_window.clone(),
            moves: Vec::new(),
        };

        if first_observation {
            return Ok(report);
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Ok(report);
        }
        if total < self.config.min_window_cycles || balance >= self.config.min_balance {
            self.imbalanced_streak = 0;
            return Ok(report);
        }
        self.imbalanced_streak += 1;
        if self.imbalanced_streak < self.config.sustain {
            return Ok(report);
        }

        // Only hooks still owned by the shard they burned cycles on are
        // candidates (a hook that moved mid-window attributes cycles to
        // several shards; its current owner is authoritative).
        let candidates: Vec<(Uuid, usize, u64)> = hook_window
            .into_iter()
            .filter_map(|(hook, cycles)| host.shard_of_hook(hook).map(|s| (hook, s, cycles)))
            .collect();
        let planned = plan_moves(&window, &candidates, self.config.max_moves);
        for m in &planned {
            host.telemetry().trace_hook(
                host.env().now_us(),
                TraceKind::Rebalance,
                &m.hook,
                ((m.from as u64) << 32) | m.to as u64,
            );
            host.migrate_hook(m.hook, m.to)?;
        }
        if !planned.is_empty() {
            self.cooldown_left = self.config.cooldown;
            self.imbalanced_streak = 0;
        }
        report.moves = planned;
        Ok(report)
    }

    /// Drops a hook's window baseline. Call when a hook is
    /// unregistered, so a later reuse of the same UUID starts from a
    /// fresh window instead of under-counting its first window against
    /// the departed registration's lifetime count. The host's own
    /// in-band rebalancer gets this automatically from
    /// [`FcHost::unregister_hook`]; caller-driven rebalancers should
    /// mirror that call.
    pub fn forget_hook(&mut self, hook: Uuid) {
        self.last_hook_cycles.remove(&hook);
    }

    /// Folds one round of shard reports into the baseline state and
    /// returns `(per-shard window, per-hook window, first_observation)`
    /// — the accounting heart of [`Rebalancer::observe`], split out so
    /// it is unit-testable against synthetic reports.
    ///
    /// Two rules guard the baselines:
    ///
    /// * **Sizing**: the shard vector is sized by the host's shard
    ///   count *and* the largest shard index actually reported, so a
    ///   report is never silently dropped (dropping one used to zero
    ///   that shard's baseline, and the next window re-counted the
    ///   shard's whole lifetime as fresh load — a spurious-migration
    ///   trigger).
    /// * **Missing reports preserve their baseline**: a shard that
    ///   failed to report contributes an empty window this round and
    ///   keeps its previous lifetime count, instead of being reset to
    ///   zero.
    ///
    /// Hook baselines are retained only for hooks present in the
    /// current reports: a removed hook's baseline dies with it (the
    /// shard workers prune their per-hook counters at unregistration),
    /// so a reused hook UUID starts from a clean window instead of
    /// under-counting against a stale count.
    fn take_window(
        &mut self,
        reports: &[ShardReport],
        num_shards: usize,
    ) -> (Vec<u64>, Vec<(Uuid, u64)>, bool) {
        let n = num_shards.max(reports.iter().map(|r| r.shard + 1).max().unwrap_or(0));
        let mut seen: Vec<Option<u64>> = vec![None; n];
        let mut hook_total: HashMap<Uuid, u64> = HashMap::new();
        for r in reports {
            seen[r.shard] = Some(r.sim_cycles);
            for &(hook, cycles) in &r.hook_cycles {
                *hook_total.entry(hook).or_insert(0) += cycles;
            }
        }

        // The very first observation only establishes the baseline:
        // lifetime totals are not a window, and on a long-running host
        // they may describe an imbalance that is already gone.
        let first_observation = self.last_shard_cycles.is_empty();

        let mut totals = vec![0u64; n];
        let mut window = vec![0u64; n];
        for i in 0..n {
            let prev = self.last_shard_cycles.get(i).copied().unwrap_or(0);
            match seen[i] {
                Some(now) => {
                    totals[i] = now;
                    window[i] = now.saturating_sub(prev);
                }
                // No report this round: empty window, baseline kept.
                None => totals[i] = prev,
            }
        }
        let hook_window: Vec<(Uuid, u64)> = hook_total
            .iter()
            .map(|(&hook, &now)| {
                (
                    hook,
                    now.saturating_sub(self.last_hook_cycles.get(&hook).copied().unwrap_or(0)),
                )
            })
            .collect();
        self.last_shard_cycles = totals;
        self.last_hook_cycles = hook_total;
        (window, hook_window, first_observation)
    }
}

/// Greedy migration planning over one observation window: repeatedly
/// take the hottest and coldest shards and move the largest hook off
/// the hot shard that **strictly improves** the pair
/// (`cold + hook < hot`). The projected max load is monotonically
/// non-increasing, so a plan can never oscillate.
///
/// Pure function of the window — the unit-testable heart of the
/// rebalancer.
pub fn plan_moves(window: &[u64], hooks: &[(Uuid, usize, u64)], max_moves: usize) -> Vec<HookMove> {
    let mut load: Vec<u64> = window.to_vec();
    let mut owner: HashMap<Uuid, usize> = hooks.iter().map(|&(h, s, _)| (h, s)).collect();
    let mut moves = Vec::new();
    for _ in 0..max_moves {
        let Some(hot) = (0..load.len()).max_by_key(|&i| load[i]) else {
            break;
        };
        let Some(cold) = (0..load.len()).min_by_key(|&i| load[i]) else {
            break;
        };
        if hot == cold {
            break;
        }
        // Largest hook on the hot shard whose move strictly lowers the
        // pair's max; ties break on the hook id for determinism.
        let pick = hooks
            .iter()
            .filter(|(h, _, cycles)| {
                owner.get(h) == Some(&hot)
                    && *cycles > 0
                    && load[cold].saturating_add(*cycles) < load[hot]
            })
            .max_by_key(|(h, _, cycles)| (*cycles, *h));
        let Some(&(hook, _, cycles)) = pick else {
            break;
        };
        load[hot] -= cycles;
        load[cold] += cycles;
        owner.insert(hook, cold);
        moves.push(HookMove {
            hook,
            from: hot,
            to: cold,
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hook(n: u32) -> Uuid {
        Uuid::from_name("test/rebalance", &n.to_string())
    }

    #[test]
    fn balanced_window_plans_nothing() {
        let window = [100, 100, 100, 100];
        let hooks: Vec<_> = (0..4).map(|i| (hook(i), i as usize, 100)).collect();
        assert!(plan_moves(&window, &hooks, 4).is_empty());
    }

    #[test]
    fn colliding_hot_hooks_spread_to_cold_shards() {
        // The bench shape: hot hooks 0 and 4 collide on shard 0, hot
        // hooks 1 and 5 on shard 1; shards 2 and 3 carry only cold
        // hooks.
        let window = [400, 400, 100, 100];
        let hooks = vec![
            (hook(0), 0, 200),
            (hook(4), 0, 200),
            (hook(1), 1, 200),
            (hook(5), 1, 200),
            (hook(2), 2, 50),
            (hook(6), 2, 50),
            (hook(3), 3, 50),
            (hook(7), 3, 50),
        ];
        let moves = plan_moves(&window, &hooks, 2);
        assert_eq!(moves.len(), 2);
        let mut froms: Vec<usize> = moves.iter().map(|m| m.from).collect();
        froms.sort_unstable();
        assert_eq!(froms, vec![0, 1], "one hook off each hot shard");
        assert!(moves.iter().all(|m| m.to >= 2), "moves land on cold shards");
        // Projected loads after the plan are strictly better.
        let mut load = window;
        for m in &moves {
            let cycles = hooks.iter().find(|(h, _, _)| *h == m.hook).unwrap().2;
            load[m.from] -= cycles;
            load[m.to] += cycles;
        }
        assert!(load.iter().max() < window.iter().max());
    }

    #[test]
    fn no_move_when_nothing_strictly_improves() {
        // One giant hook dominates its shard: moving it would just move
        // the hot spot (1000 to a 0-load shard stays max), and the rule
        // demands strict improvement.
        let window = [1000, 0];
        let hooks = vec![(hook(0), 0, 1000)];
        assert!(plan_moves(&window, &hooks, 4).is_empty());
        // But a splittable shard does improve.
        let hooks = vec![(hook(0), 0, 600), (hook(1), 0, 400)];
        let moves = plan_moves(&window, &hooks, 4);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].hook, hook(0), "largest improving hook moves");
    }

    #[test]
    fn plan_respects_max_moves() {
        let window = [900, 0, 0];
        let hooks = vec![(hook(0), 0, 300), (hook(1), 0, 300), (hook(2), 0, 300)];
        assert_eq!(plan_moves(&window, &hooks, 1).len(), 1);
        assert!(plan_moves(&window, &hooks, 3).len() >= 2);
    }

    fn shard_report(shard: usize, sim_cycles: u64) -> ShardReport {
        ShardReport {
            shard,
            sim_cycles,
            ..ShardReport::default()
        }
    }

    /// Bugfix: a shard that fails to report must keep its previous
    /// baseline. Zeroing it made the *next* window re-count the
    /// shard's entire lifetime cycles as fresh load — a spurious
    /// imbalance out of thin air.
    #[test]
    fn missing_report_preserves_shard_baseline() {
        let mut r = Rebalancer::new(RebalanceConfig::default());
        let (w, _, first) = r.take_window(&[shard_report(0, 1000), shard_report(1, 800)], 2);
        assert!(first);
        assert_eq!(w, vec![1000, 800]);
        // Shard 1's report goes missing: empty window, baseline kept.
        let (w, _, first) = r.take_window(&[shard_report(0, 1500)], 2);
        assert!(!first);
        assert_eq!(w, vec![500, 0]);
        // It reports again: only the genuinely new cycles count.
        let (w, _, _) = r.take_window(&[shard_report(0, 1500), shard_report(1, 900)], 2);
        assert_eq!(
            w,
            vec![0, 100],
            "no lifetime re-count after a missing report"
        );
    }

    /// Bugfix: the shard vector used to be sized by the number of
    /// reports received, so a report whose `shard` index was ≥ that
    /// count was silently dropped (and its baseline zeroed).
    #[test]
    fn high_shard_index_report_is_not_dropped() {
        let mut r = Rebalancer::new(RebalanceConfig::default());
        let (w, _, _) = r.take_window(&[shard_report(3, 700)], 4);
        assert_eq!(w, vec![0, 0, 0, 700], "shard 3's report survives alone");
        let (w, _, _) = r.take_window(
            &[
                shard_report(0, 10),
                shard_report(1, 10),
                shard_report(2, 10),
                shard_report(3, 800),
            ],
            4,
        );
        assert_eq!(
            w,
            vec![10, 10, 10, 100],
            "baseline was established, not zeroed"
        );
    }

    /// A hook absent from the current reports loses its baseline: a
    /// departed hook must not be tracked forever, and a later reuse of
    /// the UUID starts a fresh window.
    #[test]
    fn departed_hook_baseline_dies_with_the_reports() {
        let mut r = Rebalancer::new(RebalanceConfig::default());
        let h = hook(1);
        let rep = |cycles: u64, hooks: Vec<(Uuid, u64)>| ShardReport {
            shard: 0,
            sim_cycles: cycles,
            hook_cycles: hooks,
            ..ShardReport::default()
        };
        r.take_window(&[rep(1000, vec![(h, 1000)])], 1);
        // The hook is unregistered; the worker pruned its entry.
        let (_, hw, _) = r.take_window(&[rep(1000, vec![])], 1);
        assert!(hw.is_empty());
        assert!(
            r.last_hook_cycles.is_empty(),
            "baseline pruned with the hook"
        );
        // The UUID is reused: its first window is the fresh count.
        let (_, hw, _) = r.take_window(&[rep(1050, vec![(h, 50)])], 1);
        assert_eq!(hw, vec![(h, 50)]);
    }

    #[test]
    fn forget_hook_drops_the_baseline_immediately() {
        let mut r = Rebalancer::new(RebalanceConfig::default());
        let h = hook(2);
        let rep = |cycles: u64, hooks: Vec<(Uuid, u64)>| ShardReport {
            shard: 0,
            sim_cycles: cycles,
            hook_cycles: hooks,
            ..ShardReport::default()
        };
        r.take_window(&[rep(1000, vec![(h, 1000)])], 1);
        // Remove-then-reinstall *between* two observations: without the
        // forget, the reused UUID's fresh 50 cycles would under-count
        // against the stale 1000-cycle baseline and report a 0 window.
        r.forget_hook(h);
        let (_, hw, _) = r.take_window(&[rep(1050, vec![(h, 50)])], 1);
        assert_eq!(
            hw,
            vec![(h, 50)],
            "fresh window, not 50.saturating_sub(1000)"
        );
    }

    mod host_level {
        use super::*;
        use crate::host::{FcHost, HostConfig};
        use fc_core::contract::{ContractOffer, ContractRequest};
        use fc_core::helpers_impl::standard_helper_ids;
        use fc_core::hooks::{Hook, HookKind, HookPolicy};
        use fc_rbpf::program::ProgramBuilder;
        use fc_rtos::platform::{Engine, Platform};

        fn image() -> Vec<u8> {
            ProgramBuilder::new()
                .asm("mov r0, 1\nexit")
                .unwrap()
                .build()
                .to_bytes()
        }

        fn hook_cycles_of(host: &FcHost, hook: Uuid) -> Vec<(usize, u64)> {
            host.shard_reports()
                .iter()
                .flat_map(|r| {
                    r.hook_cycles
                        .iter()
                        .filter(|(h, _)| *h == hook)
                        .map(|(_, c)| (r.shard, *c))
                        .collect::<Vec<_>>()
                })
                .collect()
        }

        /// Bugfix (the leak): a migrated hook's cycle entry must leave
        /// the old shard's accounting — it used to stay forever, so
        /// every migration grew every report until each shard listed
        /// every hook that ever touched it.
        #[test]
        fn migration_prunes_old_shard_and_carries_cycles() {
            let mut host = FcHost::new(
                Platform::CortexM4,
                Engine::FemtoContainer,
                HostConfig {
                    workers: 2,
                    ..HostConfig::default()
                },
            );
            let hook = Hook::new("rb-acct", HookKind::Custom, HookPolicy::First);
            let hook_id = hook.id;
            host.register_hook(hook, ContractOffer::helpers(standard_helper_ids()));
            let c = host
                .install("c", 1, &image(), ContractRequest::default())
                .unwrap();
            host.attach(c, hook_id).unwrap();
            for _ in 0..5 {
                host.fire_sync(hook_id, &[], &[]).unwrap();
            }
            let from = host.shard_of_hook(hook_id).unwrap();
            let before: u64 = hook_cycles_of(&host, hook_id).iter().map(|(_, c)| c).sum();
            assert!(before > 0);
            host.migrate_hook(hook_id, 1 - from).unwrap();
            host.fire_sync(hook_id, &[], &[]).unwrap();
            let entries = hook_cycles_of(&host, hook_id);
            assert!(
                entries.iter().all(|(shard, _)| *shard == 1 - from),
                "old shard's entry pruned: {entries:?}"
            );
            let after: u64 = entries.iter().map(|(_, c)| c).sum();
            assert!(
                after > before,
                "cycles travelled with the hook and kept growing: {before} -> {after}"
            );
            host.shutdown();
        }

        /// The remove-then-reinstall case end to end: a hook is
        /// unregistered and its UUID reused; the reused hook's first
        /// observed window must count its fresh cycles (the stale
        /// baseline would have under-counted it to zero).
        #[test]
        fn remove_then_reinstall_counts_fresh_window() {
            let mut host = FcHost::new(
                Platform::CortexM4,
                Engine::FemtoContainer,
                HostConfig {
                    workers: 1,
                    ..HostConfig::default()
                },
            );
            let mk = || Hook::new("rb-reuse", HookKind::Custom, HookPolicy::First);
            let hook_id = mk().id;
            let offer = ContractOffer::helpers(standard_helper_ids());
            host.register_hook(mk(), offer.clone());
            let c = host
                .install("c", 1, &image(), ContractRequest::default())
                .unwrap();
            host.attach(c, hook_id).unwrap();
            let mut rb = Rebalancer::new(RebalanceConfig::default());
            for _ in 0..5 {
                host.fire_sync(hook_id, &[], &[]).unwrap();
            }
            host.quiesce();
            rb.observe(&host).unwrap(); // baseline over the 5 events

            let attached = host.unregister_hook(hook_id).unwrap();
            assert_eq!(attached, vec![c]);
            assert!(
                hook_cycles_of(&host, hook_id).is_empty(),
                "unregistration prunes the shard's accounting entry"
            );
            rb.forget_hook(hook_id); // caller-driven mirror of the host's in-band forget

            host.register_hook(mk(), offer);
            host.attach(c, hook_id).unwrap();
            host.fire_sync(hook_id, &[], &[]).unwrap();
            host.quiesce();
            let report = rb.observe(&host).unwrap();
            let window = report
                .hook_window
                .iter()
                .find(|(h, _)| *h == hook_id)
                .map(|(_, w)| *w)
                .unwrap_or(0);
            assert!(
                window > 0,
                "reused hook's first window counts its fresh cycles"
            );
            host.shutdown();
        }
    }
}
